"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that environments without the ``wheel`` package (offline machines where
PEP 660 editable installs cannot build) can still do
``pip install -e . --no-build-isolation`` or ``python setup.py develop``.
"""

from setuptools import setup

setup()
