"""Performance-regression gate over the committed BENCH_*.json files (stdlib only).

Two benchmark families feed this gate:

- ``BENCH_kernels.json`` (``benchmarks/test_bench_kernels.py``): each optimized
  hot path measured against its pre-optimization baseline.  A gated kernel's
  recorded speedup dropping under 1.0x on the NumPy backend can only happen
  through a structural regression (an extra GEMM, a lost cache hit, a per-call
  host copy), not through benchmark noise: the ratios sit at 1.5x-2.4x with
  best-of-N timing on both sides.  The ``fused_path_op_budget`` entry is a
  deterministic backend-operation *count* ratio (TracingBackend), completely
  immune to runner noise.

- ``BENCH_process_engine.json`` (``benchmarks/test_bench_process_engine.py``):
  measured wall-clock of real worker OS processes at 1/2/4/8 workers.  Only
  entries recorded with ``gated: true`` — i.e. on a host with at least as many
  usable cores as workers — are enforced at >= 1.0x; single-core runners
  record the (necessarily < 1.0x) ratios for the trajectory without failing
  the build, with the reason stored in the entry.

- ``BENCH_serving.json`` (``benchmarks/test_bench_serving.py``): closed-loop
  serving load.  The gate enforces the headline ratio (best micro-batched
  rps / per-request rps) >= 1.0x — batching amortizes per-request dispatch
  overhead, so this holds even on one core — and that the hot-swap-under-load
  entry lost zero in-flight requests and produced zero torn results.

Usage (what the CI benchmarks job runs)::

    python scripts/check_bench.py              # checks both committed files
    python scripts/check_bench.py FILE [...]   # checks the named files

Exit code 0 when every gated speedup is >= its threshold, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

#: kernels whose recorded speedup must stay at or above 1.0x
GATED_KERNELS = (
    "fused_value_and_gradient",
    "cached_hvp",
    "block_cg",
    "batched_hvp",
    "fused_path_op_budget",
)

THRESHOLD = 1.0

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FILES = (
    _REPO_ROOT / "BENCH_kernels.json",
    _REPO_ROOT / "BENCH_process_engine.json",
    _REPO_ROOT / "BENCH_serving.json",
    _REPO_ROOT / "BENCH_analysis.json",
)


def _check_kernels(path: Path, kernels: dict) -> int:
    failures = 0
    for name in GATED_KERNELS:
        entry = kernels.get(name)
        if entry is None:
            print(f"check_bench: gated kernel {name!r} missing from {path}",
                  file=sys.stderr)
            failures += 1
            continue
        speedup = float(entry["speedup"])
        status = "OK" if speedup >= THRESHOLD else "REGRESSED"
        print(f"check_bench: {name}: {speedup:.3f}x [{status}]")
        if speedup < THRESHOLD:
            print(
                f"check_bench: {name} regressed below {THRESHOLD:.1f}x — the "
                f"optimized path ({entry.get('optimized', '?')}) is now slower "
                f"than its baseline ({entry.get('baseline', '?')})",
                file=sys.stderr,
            )
            failures += 1
    if not failures:
        print(f"check_bench: OK ({len(GATED_KERNELS)} gated kernel(s))")
    return failures


def _check_process_engine(path: Path, entries: dict) -> int:
    failures = 0
    gated = 0
    for name in sorted(entries):
        entry = entries[name]
        speedup = float(entry["speedup"])
        if not entry.get("gated", False):
            reason = entry.get("ungated_reason", "recorded ungated")
            print(f"check_bench: {name}: {speedup:.3f}x [ungated: {reason}]")
            continue
        gated += 1
        status = "OK" if speedup >= THRESHOLD else "REGRESSED"
        print(f"check_bench: {name}: {speedup:.3f}x [{status}]")
        if speedup < THRESHOLD:
            print(
                f"check_bench: {name} — {entry.get('n_workers', '?')} real "
                f"worker processes ran slower than one on a host with "
                f"{entry.get('cpu_count', '?')} usable cores",
                file=sys.stderr,
            )
            failures += 1
    if not failures:
        if gated:
            print(f"check_bench: OK ({gated} gated speedup entr(y/ies))")
        else:
            print(
                "check_bench: OK (no entries gated on the recording host — "
                "measured ratios kept for the trajectory only)"
            )
    return failures


def _check_serving(path: Path, serving: dict) -> int:
    failures = 0
    headline = serving.get("headline")
    if headline is None:
        print(f"check_bench: 'headline' entry missing from {path}", file=sys.stderr)
        failures += 1
    else:
        speedup = float(headline["speedup"])
        if headline.get("gated", False):
            status = "OK" if speedup >= THRESHOLD else "REGRESSED"
            print(
                f"check_bench: serving_headline: {speedup:.3f}x "
                f"(batched {headline.get('batched_rps', 0):.0f} rps vs "
                f"per-request {headline.get('direct_rps', 0):.0f} rps) [{status}]"
            )
            if speedup < THRESHOLD:
                print(
                    f"check_bench: micro-batched throughput fell below the "
                    f"per-request baseline at concurrency "
                    f"{headline.get('concurrency', '?')}",
                    file=sys.stderr,
                )
                failures += 1
        else:
            reason = headline.get("ungated_reason", "recorded ungated")
            print(f"check_bench: serving_headline: {speedup:.3f}x [ungated: {reason}]")
    hot_swap = serving.get("hot_swap")
    if hot_swap is None:
        print(f"check_bench: 'hot_swap' entry missing from {path}", file=sys.stderr)
        failures += 1
    elif hot_swap.get("gated", False):
        lost = int(hot_swap.get("lost", -1))
        torn = int(hot_swap.get("torn", -1))
        status = "OK" if (lost == 0 and torn == 0) else "REGRESSED"
        print(
            f"check_bench: serving_hot_swap: {hot_swap.get('swaps', '?')} swaps, "
            f"{lost} lost, {torn} torn of {hot_swap.get('issued', '?')} "
            f"in-flight requests [{status}]"
        )
        if status != "OK":
            print(
                "check_bench: hot swap under load lost or tore in-flight "
                "requests — the atomic-swap invariant is broken",
                file=sys.stderr,
            )
            failures += 1
    if not failures:
        print("check_bench: OK (serving headline + hot-swap gates)")
    return failures


def _check_analysis(path: Path, entries: dict) -> int:
    failures = 0
    gated = 0
    for name in sorted(entries):
        entry = entries[name]
        speedup = float(entry["speedup"])
        if not entry.get("identical_proposals", False):
            print(
                f"check_bench: {name} — static verification reached different "
                "proposals than trial execution; the static verifier is wrong",
                file=sys.stderr,
            )
            failures += 1
            continue
        if not entry.get("gated", False):
            reason = entry.get("ungated_reason", "recorded ungated")
            print(f"check_bench: {name}: {speedup:.3f}x [ungated: {reason}]")
            continue
        gated += 1
        status = "OK" if speedup >= THRESHOLD else "REGRESSED"
        print(
            f"check_bench: {name}: {speedup:.3f}x "
            f"({entry.get('candidates', '?')} candidate(s)) [{status}]"
        )
        if speedup < THRESHOLD:
            print(
                f"check_bench: {name} — static plan verification ran slower "
                "than trial execution on a plan with overlap candidates",
                file=sys.stderr,
            )
            failures += 1
    if not failures:
        print(f"check_bench: OK ({gated} gated static-verify entr(y/ies))")
    return failures


def check_file(path: Path) -> int:
    if not path.exists():
        print(f"check_bench: {path} not found — run "
              "'PYTHONPATH=src python -m pytest benchmarks/' to generate it",
              file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        print(f"check_bench: {path} is not valid JSON ({exc})", file=sys.stderr)
        return 1
    if "kernels" in payload:
        return _check_kernels(path, payload["kernels"])
    if "entries" in payload:
        return _check_process_engine(path, payload["entries"])
    if "serving" in payload:
        return _check_serving(path, payload["serving"])
    if "analysis" in payload:
        return _check_analysis(path, payload["analysis"])
    print(f"check_bench: {path} has no 'kernels', 'entries', 'serving', or "
          "'analysis' key", file=sys.stderr)
    return 1


def main(argv: List[str]) -> int:
    paths = [Path(a) for a in argv] if argv else list(DEFAULT_FILES)
    failures = sum(check_file(p) for p in paths)
    if failures:
        print(f"check_bench: {failures} gated entr(y/ies) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
