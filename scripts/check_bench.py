"""Performance-regression gate over ``BENCH_kernels.json`` (stdlib only).

The kernel benchmark suite (``benchmarks/test_bench_kernels.py``) measures
each optimized hot path against its pre-optimization baseline and records the
speedup ratios in ``BENCH_kernels.json``.  This script fails CI when a gated
kernel's optimized path has regressed below its baseline — i.e. when a
recorded speedup drops under 1.0x on the NumPy backend, which can only happen
through a structural regression (an extra GEMM, a lost cache hit, a per-call
host copy), not through benchmark noise: the ratios sit at 1.5x-2.4x with
best-of-N timing on both sides.

The ``fused_path_op_budget`` entry is gated too, but it is a deterministic
backend-operation *count* ratio (TracingBackend), so it is completely immune
to runner noise.

Usage (what the CI benchmarks job runs)::

    python scripts/check_bench.py [BENCH_kernels.json]

Exit code 0 when every gated speedup is >= the threshold, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

#: kernels whose recorded speedup must stay at or above 1.0x
GATED_KERNELS = (
    "fused_value_and_gradient",
    "cached_hvp",
    "block_cg",
    "batched_hvp",
    "fused_path_op_budget",
)

THRESHOLD = 1.0


def main(argv: List[str]) -> int:
    path = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    if not path.exists():
        print(f"check_bench: {path} not found — run "
              "'PYTHONPATH=src python -m pytest benchmarks/test_bench_kernels.py' "
              "to generate it", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        kernels = payload["kernels"]
    except (ValueError, KeyError) as exc:
        print(f"check_bench: {path} is not a valid benchmark file ({exc})",
              file=sys.stderr)
        return 1

    failures = 0
    for name in GATED_KERNELS:
        entry = kernels.get(name)
        if entry is None:
            print(f"check_bench: gated kernel {name!r} missing from {path}",
                  file=sys.stderr)
            failures += 1
            continue
        speedup = float(entry["speedup"])
        status = "OK" if speedup >= THRESHOLD else "REGRESSED"
        print(f"check_bench: {name}: {speedup:.3f}x [{status}]")
        if speedup < THRESHOLD:
            print(
                f"check_bench: {name} regressed below {THRESHOLD:.1f}x — the "
                f"optimized path ({entry.get('optimized', '?')}) is now slower "
                f"than its baseline ({entry.get('baseline', '?')})",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        print(f"check_bench: {failures} gated kernel(s) failed", file=sys.stderr)
        return 1
    print(f"check_bench: OK ({len(GATED_KERNELS)} gated kernel(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
