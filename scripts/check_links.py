"""Markdown link checker for the repository's guides (stdlib only).

Walks the given markdown files/directories, extracts inline links and
images, and verifies that every *relative* target resolves to an existing
file (anchors are checked against the target's headings).  External links
(http/https/mailto) are skipped — CI must not depend on the network.

Usage (what the CI docs job runs)::

    python scripts/check_links.py README.md docs

Exit code 0 when every link resolves, 1 otherwise (with a report of the
broken ones).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: inline markdown links/images: [text](target) / ![alt](target)
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: fenced code blocks are stripped before link extraction
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, spaces to dashes, drop punct."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r"\s+", "-", text).strip("-")


def _anchors_of(path: Path) -> set:
    try:
        content = path.read_text(encoding="utf-8")
    except OSError:
        return set()
    return {_slugify(h) for h in _HEADING_RE.findall(_FENCE_RE.sub("", content))}


def iter_markdown_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {raw}")
    return files


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Return (target, problem) pairs for every broken link in ``path``."""
    problems: List[Tuple[str, str]] = []
    content = _FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for target in _LINK_RE.findall(content):
        if target.startswith(_SKIP_PREFIXES):
            continue
        base, _, anchor = target.partition("#")
        if not base:  # same-file anchor
            if anchor and _slugify(anchor) not in _anchors_of(path):
                problems.append((target, "missing anchor"))
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append((target, "missing file"))
            continue
        if anchor and resolved.suffix == ".md":
            if _slugify(anchor) not in _anchors_of(resolved):
                problems.append((target, f"missing anchor in {base}"))
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        argv = ["README.md", "docs"]
    files = iter_markdown_files(argv)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    broken = 0
    for path in files:
        for target, problem in check_file(path):
            print(f"{path}: broken link {target!r} ({problem})", file=sys.stderr)
            broken += 1
    checked = len(files)
    if broken:
        print(f"check_links: {broken} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"check_links: OK ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
