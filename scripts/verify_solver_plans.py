#!/usr/bin/env python
"""Statically verify every registered solver's epoch plan (CI gate).

For each solver in ``SOLVER_REGISTRY`` this builds one epoch's
:class:`~repro.distributed.schedule.RoundPlan` against a small simulated
cluster and runs :func:`repro.analysis.verify_plan` over it — no execution.
Any error-severity finding (race, unjoined overlap, round-count mismatch,
unsatisfiable quorum) fails the sweep; warnings are printed but pass.

Solvers whose epochs are not plan-driven (they raise ``NotImplementedError``
from ``_plan_epoch``) are reported as skipped.

Usage::

    PYTHONPATH=src python scripts/verify_solver_plans.py
"""

from __future__ import annotations

import sys

from repro.analysis import verify_plan
from repro.datasets.synthetic import make_binary_margin, make_multiclass_gaussian
from repro.distributed.cluster import SimulatedCluster
from repro.harness.runner import SOLVER_REGISTRY


def main() -> int:
    multiclass = make_multiclass_gaussian(
        160, 6, 3, class_separation=2.0, random_state=0
    )
    binary = make_binary_margin(150, 8, margin=1.5, random_state=1)

    failures = 0
    skipped = []
    for name in sorted(SOLVER_REGISTRY):
        solver_cls = SOLVER_REGISTRY[name]
        data = binary if name == "cocoa" else multiclass
        cluster = SimulatedCluster(data, 4, engine="event", random_state=0)
        solver = solver_cls(max_epochs=1)
        solver.fit(cluster)
        try:
            plan = solver._plan_epoch(cluster, 0)
        except NotImplementedError:
            skipped.append(name)
            continue
        report = verify_plan(plan)
        inexact = sum(1 for entry in report.step_effects if not entry["exact"])
        status = "ok" if report.ok else "FAIL"
        print(
            f"{name:20s} {status:4s} rounds={report.rounds} "
            f"errors={len(report.errors)} warnings={len(report.warnings)} "
            f"inexact_steps={inexact}"
        )
        for finding in report.findings:
            print(f"    {finding.rule} [{finding.severity}] {finding.message}")
        if not report.ok:
            failures += 1
    for name in skipped:
        print(f"{name:20s} skip (epoch is not plan-driven)")
    if failures:
        print(f"{failures} solver plan(s) failed static verification")
        return 1
    print(f"{len(SOLVER_REGISTRY) - len(skipped)} solver plan(s) verified clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
