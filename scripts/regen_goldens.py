"""Regenerate ``tests/golden/*.json`` and classify what changed.

Replaces ad-hoc reruns of the per-fixture generator scripts: this walks every
golden fixture (currently ``schedule_equivalence.json``, via the CASES table
in ``tests/golden/generate_schedule_goldens.py``), recomputes it, and prints
a per-solver change summary before touching anything:

- ``bit-identical``      — nothing changed; the file is not rewritten.
- ``modelled-time-only`` — iterates and objectives match bit-for-bit but the
  modelled clock moved (a cost-model change, e.g. new network constants);
  safe for convergence claims, flag it in the PR.
- ``iterate drift``      — ``final_w`` or the objective path changed: a
  *numerical* change.  Only regenerate when the PR intends one, and say so.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/regen_goldens.py          # summary + write
    PYTHONPATH=src python scripts/regen_goldens.py --check  # summary only,
                                                            # exit 1 on drift
    PYTHONPATH=src python scripts/regen_goldens.py --dry-run  # summary only

See docs/schedule-ir.md ("Regenerating the golden traces") for when each
class of change is acceptable.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: float-list keys whose drift means the *math* changed
ITERATE_KEYS = ("final_w", "objectives")
#: keys whose drift means only the cost model changed
TIME_KEYS = ("modelled_times", "comm_times")


def _load_generator():
    """Import the fixture generator without needing tests/ on sys.path."""
    path = GOLDEN_DIR / "generate_schedule_goldens.py"
    spec = importlib.util.spec_from_file_location("generate_schedule_goldens", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def classify(old: dict, new: dict) -> str:
    if old == new:
        return "bit-identical"
    for key in ITERATE_KEYS:
        if old.get(key) != new.get(key):
            return "iterate drift"
    # Communication *structure* counts as math too: a solver that suddenly
    # runs a different number of rounds is not a cost-model tweak.
    for key in ("comm_rounds", "n_collectives", "bytes_transferred", "dataset"):
        if old.get(key) != new.get(key):
            return "iterate drift"
    if any(old.get(key) != new.get(key) for key in TIME_KEYS):
        return "modelled-time-only"
    return "iterate drift"  # an unknown key moved; treat as the loud case


def _first_delta(old: dict, new: dict) -> str:
    for key in sorted(set(old) | set(new)):
        if old.get(key) != new.get(key):
            return key
    return ""


def regen_schedule_equivalence(*, write: bool) -> dict:
    generator = _load_generator()
    golden_path = generator.GOLDEN_PATH
    old = json.loads(golden_path.read_text()) if golden_path.exists() else {}
    new = {name: generator.run_case(name) for name in generator.CASES}

    summary = {}
    for name in sorted(set(old) | set(new)):
        if name not in old:
            summary[name] = "new solver"
        elif name not in new:
            summary[name] = "removed solver"
        else:
            summary[name] = classify(old[name], new[name])

    changed = any(v != "bit-identical" for v in summary.values())
    if write and changed:
        golden_path.write_text(json.dumps(new, indent=1, sort_keys=True) + "\n")
    return {
        "fixture": str(golden_path.relative_to(REPO_ROOT)),
        "summary": summary,
        "changed": changed,
        "written": write and changed,
        "details": {
            name: _first_delta(old.get(name, {}), new.get(name, {}))
            for name, verdict in summary.items()
            if verdict not in ("bit-identical", "new solver", "removed solver")
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="regen_goldens"
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--dry-run",
        action="store_true",
        help="print the change summary without rewriting any fixture",
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="like --dry-run, but exit 1 if anything is not bit-identical "
        "(CI guard against stale goldens)",
    )
    args = parser.parse_args(argv)
    write = not (args.dry_run or args.check)

    report = regen_schedule_equivalence(write=write)
    print(f"fixture: {report['fixture']}")
    width = max(len(name) for name in report["summary"])
    for name, verdict in sorted(report["summary"].items()):
        note = report["details"].get(name)
        print(f"  {name:<{width}}  {verdict}" + (f" (first delta: {note})" if note else ""))
    if not report["changed"]:
        print("all solvers bit-identical; nothing to write")
    elif report["written"]:
        print("fixture rewritten — classify the change in your PR description")
    else:
        print("changes detected (fixture NOT rewritten)")
    if args.check and report["changed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
