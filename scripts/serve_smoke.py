"""End-to-end smoke of the serving stack (CI's serving job runs this).

Starts the HTTP app on a free port (FastAPI when installed, else the stdlib
fallback — same routes either way), then drives the full lifecycle over real
HTTP: publish a model, batched + per-request predicts (checked against each
other), structured client errors, submit a training job and poll it to
completion, serve the published result, and cancel a long job mid-run.
Prints ``serve_smoke: OK`` and exits 0 on success; any failure raises.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import sys
import tempfile
import time

import numpy as np

from repro.harness.serialization import encode_array
from repro.serving.app import build_api, fastapi_available
from repro.serving.http_fallback import FallbackServer

P, C = 6, 4


class Client:
    def __init__(self, host: str, port: int):
        self.host, self.port = host, port

    def request(self, method: str, path: str, payload=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=60)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()


def expect(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(f"serve_smoke: {message}")


def main() -> int:
    print(
        "serve_smoke: fastapi "
        + ("installed (serve extra)" if fastapi_available() else "not installed; "
           "exercising the stdlib fallback frontend")
    )
    with tempfile.TemporaryDirectory() as root:
        api = build_api(f"{root}/registry", window_s=0.001)
        server = FallbackServer(api).start_background()
        client = Client(server.host, server.port)
        try:
            status, body = client.request("GET", "/api/v1/health")
            expect(status == 200 and body["status"] == "ok", f"health: {body}")

            # publish a model with a known dtype, bit-exactly
            weights = np.random.default_rng(0).standard_normal(P * (C - 1))
            status, body = client.request(
                "POST",
                "/api/v1/models/smoke",
                {"weights": encode_array(weights), "n_classes": C},
            )
            expect(status == 201, f"publish: {status} {body}")

            # batched and per-request predicts agree
            rows = [[0.1 * i] * P for i in range(4)]
            status, batched = client.request(
                "POST", "/api/v1/models/smoke/predict_proba", {"rows": rows}
            )
            expect(status == 200, f"batched predict: {status} {batched}")
            status, direct = client.request(
                "POST",
                "/api/v1/models/smoke/predict_proba",
                {"rows": rows, "mode": "direct"},
            )
            expect(status == 200, f"direct predict: {status} {direct}")
            expect(
                batched["probabilities"] == direct["probabilities"],
                "batched and direct probabilities diverged",
            )

            # structured errors, not tracebacks
            status, body = client.request(
                "POST", "/api/v1/models/smoke/predict", {"rows": [[1.0, 2.0]]}
            )
            expect(
                status == 422 and body["error"]["type"] == "inference_error",
                f"feature mismatch: {status} {body}",
            )
            status, body = client.request(
                "POST", "/api/v1/models/ghost/predict", {"rows": rows}
            )
            expect(status == 404, f"unknown model: {status} {body}")

            # train a tiny model through the job API and serve the result
            status, body = client.request(
                "POST",
                "/api/v1/jobs",
                {
                    "solver": {"name": "newton_admm", "max_epochs": 2},
                    "cluster": {
                        "dataset": "mnist_like",
                        "n_workers": 2,
                        "n_train": 240,
                        "n_test": 60,
                    },
                    "publish_as": "trained",
                },
            )
            expect(status == 201, f"submit job: {status} {body}")
            job_id = body["id"]
            deadline = time.time() + 180
            while True:
                status, body = client.request("GET", f"/api/v1/jobs/{job_id}")
                if body["status"] in ("succeeded", "failed", "cancelled"):
                    break
                expect(time.time() < deadline, f"job timed out: {body}")
                time.sleep(0.2)
            expect(body["status"] == "succeeded", f"job: {body['status']} {body}")
            expect(body["published"]["name"] == "trained", f"publish: {body}")
            n_features = api.registry.load("trained").n_features
            status, body = client.request(
                "POST",
                "/api/v1/models/trained/predict",
                {"rows": [[0.0] * n_features]},
            )
            expect(status == 200, f"serve trained model: {status} {body}")

            # cancel a long job mid-run
            status, body = client.request(
                "POST",
                "/api/v1/jobs",
                {
                    "solver": {"name": "newton_admm", "max_epochs": 500},
                    "cluster": {
                        "dataset": "mnist_like",
                        "n_workers": 2,
                        "n_train": 240,
                        "n_test": 60,
                    },
                },
            )
            expect(status == 201, f"submit long job: {status} {body}")
            long_id = body["id"]
            deadline = time.time() + 60
            while client.request("GET", f"/api/v1/jobs/{long_id}")[1]["epochs_done"] < 1:
                expect(time.time() < deadline, "long job produced no records")
                time.sleep(0.05)
            status, body = client.request("POST", f"/api/v1/jobs/{long_id}/cancel")
            expect(status == 200, f"cancel: {status} {body}")
            done = api.jobs.wait(long_id, timeout=120.0)
            expect(
                done["status"] == "cancelled" and done["epochs_done"] < 500,
                f"cancelled job: {done['status']} after {done['epochs_done']} epochs",
            )

            status, body = client.request("GET", "/api/v1/stats")
            expect(status == 200, f"stats: {status}")
            expect(
                set(body["engine"]["models"]) >= {"smoke", "trained"},
                f"stats models: {body}",
            )
        finally:
            server.shutdown()
    print("serve_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
