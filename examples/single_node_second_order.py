"""Single-node second-order solver tour on the HIGGS-like binary problem.

The distributed Newton-ADMM driver delegates every local subproblem to a
single-node solver; this example compares the solvers the library ships for
that role — inexact Newton-CG (the paper's Algorithm 1), trust-region Newton,
sub-sampled Newton and Newton-Sketch — plus L-BFGS as the quasi-Newton
reference, on an L2-regularized logistic regression.

Run with:  python examples/single_node_second_order.py
(`--smoke` shrinks the workload to CI size; the docs CI job runs it.)
"""

import sys

import numpy as np

from repro import load_dataset
from repro.metrics import format_table
from repro.objectives import BinaryLogistic, L2Regularizer, RegularizedObjective
from repro.solvers import (
    LBFGS,
    NewtonCG,
    NewtonSketch,
    SubsampledNewton,
    TrustRegionNewton,
)

SMOKE = "--smoke" in sys.argv[1:]


def main() -> None:
    n_train, n_test = (1500, 400) if SMOKE else (8000, 2000)
    iters = 8 if SMOKE else 30
    train, test = load_dataset("higgs_like", n_train=n_train, n_test=n_test, random_state=0)
    loss = BinaryLogistic(train.X, train.y)
    objective = RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-4))

    solvers = {
        "newton_cg": NewtonCG(max_iterations=iters, cg_max_iter=20, cg_tol=1e-6),
        "trust_region": TrustRegionNewton(max_iterations=iters, cg_max_iter=30),
        "subsampled_newton": SubsampledNewton(
            hessian_sample_fraction=0.1, max_iterations=iters, cg_max_iter=20, random_state=0
        ),
        "newton_sketch": NewtonSketch(
            sketch_size=400, sketch_kind="count", max_iterations=iters, random_state=0
        ),
        "lbfgs": LBFGS(max_iterations=25 if SMOKE else 100),
    }

    rows = []
    for name, solver in solvers.items():
        result = solver.minimize(objective)
        test_accuracy = float(np.mean(loss.predict(result.w, test.X) == test.y))
        rows.append(
            {
                "solver": name,
                "iterations": result.n_iterations,
                "final_objective": result.objective,
                "grad_norm": result.grad_norm,
                "test_accuracy": test_accuracy,
                "wall_time_s": result.info.get("wall_time", float("nan")),
            }
        )
    print(
        format_table(
            rows,
            title="Single-node solvers on the HIGGS-like logistic problem (lambda=1e-4)",
        )
    )


if __name__ == "__main__":
    main()
