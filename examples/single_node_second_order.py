"""Single-node second-order solver tour on the HIGGS-like binary problem.

The distributed Newton-ADMM driver delegates every local subproblem to a
single-node solver; this example compares the solvers the library ships for
that role — inexact Newton-CG (the paper's Algorithm 1), trust-region Newton,
sub-sampled Newton and Newton-Sketch — plus L-BFGS as the quasi-Newton
reference, on an L2-regularized logistic regression.

Run with:  python examples/single_node_second_order.py
"""

import numpy as np

from repro import load_dataset
from repro.metrics import format_table
from repro.objectives import BinaryLogistic, L2Regularizer, RegularizedObjective
from repro.solvers import (
    LBFGS,
    NewtonCG,
    NewtonSketch,
    SubsampledNewton,
    TrustRegionNewton,
)


def main() -> None:
    train, test = load_dataset("higgs_like", n_train=8000, n_test=2000, random_state=0)
    loss = BinaryLogistic(train.X, train.y)
    objective = RegularizedObjective(loss, L2Regularizer(loss.dim, 1e-4))

    solvers = {
        "newton_cg": NewtonCG(max_iterations=30, cg_max_iter=20, cg_tol=1e-6),
        "trust_region": TrustRegionNewton(max_iterations=30, cg_max_iter=30),
        "subsampled_newton": SubsampledNewton(
            hessian_sample_fraction=0.1, max_iterations=30, cg_max_iter=20, random_state=0
        ),
        "newton_sketch": NewtonSketch(
            sketch_size=400, sketch_kind="count", max_iterations=30, random_state=0
        ),
        "lbfgs": LBFGS(max_iterations=100),
    }

    rows = []
    for name, solver in solvers.items():
        result = solver.minimize(objective)
        test_accuracy = float(np.mean(loss.predict(result.w, test.X) == test.y))
        rows.append(
            {
                "solver": name,
                "iterations": result.n_iterations,
                "final_objective": result.objective,
                "grad_norm": result.grad_norm,
                "test_accuracy": test_accuracy,
                "wall_time_s": result.info.get("wall_time", float("nan")),
            }
        )
    print(
        format_table(
            rows,
            title="Single-node solvers on the HIGGS-like logistic problem (lambda=1e-4)",
        )
    )


if __name__ == "__main__":
    main()
