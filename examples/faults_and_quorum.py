"""Fault injection: a worker crashes mid-training and the quorum rides through.

The paper's single-consensus-round schedule (and the quorum/bounded-staleness
variant built on the event engine) is only robust if it survives losing a
worker, not just a slow one.  This example injects exactly that with a
:class:`repro.distributed.faults.FailureModel`: worker 0 crashes a third of
the way through training and comes back later.

* Strict-sync Newton-ADMM under the default ``on_failure="raise"`` policy
  aborts with a structured ``WorkerLostError`` — the barrier cannot form.
* The same solver with ``on_failure="stall"`` completes with *identical*
  iterates, paying the whole downtime as modelled stall time (watch the
  ``x`` downtime fill and ``X``/``^`` crash/restart markers in the Gantt).
* Quorum async Newton-ADMM (quorum N-1) keeps firing z-updates off the
  survivors, reweights the consensus over the live membership, and folds the
  worker back in on restart — no barrier ever has to form, so on realistic
  cluster sizes it reaches the sync target well before the stalled run.

Run with:  python examples/faults_and_quorum.py            (full demo)
           python examples/faults_and_quorum.py --smoke    (CI-sized)
"""

import sys

from repro import (
    AsyncNewtonADMM,
    FailureModel,
    NewtonADMM,
    SimulatedCluster,
    WorkerLostError,
    load_dataset,
)
from repro.harness.plotting import plot_gantt
from repro.metrics.traces import time_to_objective

SMOKE = "--smoke" in sys.argv[1:]


def main() -> None:
    n_train, n_test = (600, 100) if SMOKE else (4000, 800)
    sync_epochs = 4 if SMOKE else 8
    train, test = load_dataset(
        "mnist_like", n_train=n_train, n_test=n_test, random_state=0
    )

    def cluster(faults=None):
        return SimulatedCluster(
            train, n_workers=4, faults=faults, engine="event", random_state=0
        )

    # --- calibrate the crash against a fault-free run -----------------------
    clean = NewtonADMM(lam=1e-5, max_epochs=sync_epochs, record_accuracy=False).fit(
        cluster(), test=test
    )
    total = clean.final.modelled_time
    faults = lambda: FailureModel(  # noqa: E731 - one-line factory
        crash_at_time={0: total / 3}, restart_after=total / 2
    )
    print(
        f"fault schedule: worker 0 crashes at t={total / 3:.3g}s, "
        f"restarts after {total / 2:.3g}s (no-fault total: {total:.3g}s)\n"
    )

    # --- strict sync, default policy: the barrier cannot form ----------------
    try:
        NewtonADMM(lam=1e-5, max_epochs=sync_epochs, record_accuracy=False).fit(
            cluster(faults()), test=test
        )
        raise SystemExit("unexpected: sync run survived the crash")
    except WorkerLostError as exc:
        print(f"sync Newton-ADMM (on_failure='raise'): {exc}\n")

    # --- strict sync, stall policy: completes, pays the downtime -------------
    stalled = NewtonADMM(
        lam=1e-5, max_epochs=sync_epochs, record_accuracy=False,
        on_failure="stall",
    ).fit(cluster(faults()), test=test)
    print(
        "sync Newton-ADMM (on_failure='stall') completed: "
        f"{stalled.final.modelled_time:.3g}s modelled "
        f"(+{stalled.final.modelled_time - total:.3g}s vs no-fault), "
        f"identical objective {stalled.final.objective:.6g}"
    )
    print(plot_gantt(stalled, width=64, title="stalled sync schedule"))
    print()

    # --- quorum async: rides through -----------------------------------------
    asyn = AsyncNewtonADMM(
        lam=1e-5, max_epochs=4 * sync_epochs, quorum=3, max_staleness=10,
        record_accuracy=False,
    ).fit(cluster(faults()), test=test)
    reached = time_to_objective(asyn, clean.final.objective)
    print(plot_gantt(asyn, width=64, title="quorum async schedule"))
    print(
        f"\nquorum async rides through: reaches the sync target in "
        f"{reached:.3g}s modelled vs {stalled.final.modelled_time:.3g}s for "
        f"the stalled sync run"
    )
    events = asyn.info["faults"]["events"]
    print(f"recorded fault events: {[(e['kind'], round(e['time'], 6)) for e in events]}")


if __name__ == "__main__":
    main()
