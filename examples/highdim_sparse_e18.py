"""Hessian-free training on a very wide, sparse problem (the E18-like workload).

The E18 single-cell dataset has ~280k features; a dense Hessian would need
~(19 * 280k)^2 * 8 bytes — utterly infeasible.  Newton-ADMM never forms it:
every worker only applies Hessian-vector products to its sparse shard.  This
example runs the E18 stand-in at 5% of the paper's width (configurable), on a
16-worker cluster, at the two regularization strengths of the paper's
Figure 5, and also reports how the penalty policy ablation behaves on this
workload.

Run with:  python examples/highdim_sparse_e18.py
(`--smoke` shrinks the workload to CI size; the docs CI job runs it.)
"""

import sys

from repro import GIANT, NewtonADMM, SimulatedCluster, load_dataset
from repro.metrics import format_table
from repro.metrics.traces import average_epoch_time

SMOKE = "--smoke" in sys.argv[1:]

FEATURE_SCALE = 0.01 if SMOKE else 0.05  # fraction of E18's 279,998 features
N_WORKERS = 16
EPOCHS = 3 if SMOKE else 20
N_TRAIN = 600 if SMOKE else 4000
N_TEST = 150 if SMOKE else 800


def main() -> None:
    rows = []
    for lam in (1e-3, 1e-5):
        train, test = load_dataset(
            "e18_like",
            n_train=N_TRAIN,
            n_test=N_TEST,
            feature_scale=FEATURE_SCALE,
            random_state=0,
        )
        cluster = SimulatedCluster(train, N_WORKERS, random_state=0)
        for name, solver in (
            ("newton_admm", NewtonADMM(lam=lam, max_epochs=EPOCHS)),
            ("giant", GIANT(lam=lam, max_epochs=EPOCHS)),
        ):
            trace = solver.fit(cluster, test=test)
            rows.append(
                {
                    "lambda": lam,
                    "method": name,
                    "features": train.n_features,
                    "dim": train.dim,
                    "avg_epoch_time_ms": 1e3 * average_epoch_time(trace),
                    "final_objective": trace.final.objective,
                    "test_accuracy": trace.final.test_accuracy,
                }
            )
    print(
        format_table(
            rows,
            title=(
                f"E18-like weak-scaling style run, {N_WORKERS} workers, "
                f"{FEATURE_SCALE:.0%} of the paper's feature width"
            ),
        )
    )

    # Penalty-policy ablation on the same workload (lambda = 1e-5).
    train, test = load_dataset(
        "e18_like", n_train=N_TRAIN, n_test=N_TEST, feature_scale=FEATURE_SCALE,
        random_state=0,
    )
    cluster = SimulatedCluster(train, N_WORKERS, random_state=0)
    ablation_rows = []
    for penalty in ("spectral", "residual_balancing", "fixed"):
        trace = NewtonADMM(lam=1e-5, max_epochs=EPOCHS, penalty=penalty).fit(
            cluster, test=test
        )
        ablation_rows.append(
            {
                "penalty": penalty,
                "final_objective": trace.final.objective,
                "test_accuracy": trace.final.test_accuracy,
                "final_primal_residual": trace.final.extras["primal_residual"],
            }
        )
    print()
    print(format_table(ablation_rows, title="ADMM penalty policies on E18-like"))


if __name__ == "__main__":
    main()
