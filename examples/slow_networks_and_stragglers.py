"""Systems sensitivity study: slow interconnects, stragglers, and asynchrony.

The paper argues that Newton-ADMM's single communication round per iteration
"significantly improves performance, particularly in environments with higher
communication costs".  This example runs Newton-ADMM and GIANT on the same
8-worker cluster under three interconnects (100 Gb/s InfiniBand, 10 GbE, and a
slow WAN link) and then again with one persistently slow worker, printing the
modelled epoch-time breakdown for each configuration.  It closes with the
event engine's view of the straggler problem: a per-worker Gantt chart of the
synchronous schedule (everyone waits for worker 0) and the asynchronous
quorum-based Newton-ADMM that does not.

Run with:  python examples/slow_networks_and_stragglers.py
(`--smoke` shrinks the workload to CI size; the docs CI job runs it.)
"""

import sys

from repro import (
    GIANT,
    AsyncNewtonADMM,
    NewtonADMM,
    SimulatedCluster,
    StragglerModel,
    ethernet_10g,
    infiniband_100g,
    load_dataset,
)
from repro.distributed.network import wan_slow
from repro.harness.plotting import plot_gantt
from repro.metrics import format_table
from repro.metrics.traces import average_epoch_time, time_to_objective

SMOKE = "--smoke" in sys.argv[1:]


def run(method_name, train, test, *, network, straggler=None):
    cluster = SimulatedCluster(
        train, n_workers=8, network=network, straggler=straggler, random_state=0
    )
    solver_cls = {"newton_admm": NewtonADMM, "giant": GIANT}[method_name]
    solver = solver_cls(
        lam=1e-5, max_epochs=3 if SMOKE else 5, cg_max_iter=10,
        record_accuracy=False,
    )
    trace = solver.fit(cluster, test=test)
    return {
        "method": method_name,
        "epoch_time_ms": 1e3 * average_epoch_time(trace),
        "compute_ms": 1e3 * trace.final.compute_time / trace.n_epochs,
        "comm_ms": 1e3 * trace.final.comm_time / trace.n_epochs,
        "comm_rounds_per_epoch": trace.final.comm_rounds / trace.n_epochs,
    }


def main() -> None:
    n_train, n_test = (600, 120) if SMOKE else (4000, 800)
    train, test = load_dataset("mnist_like", n_train=n_train, n_test=n_test, random_state=0)

    # --- interconnect sweep ---------------------------------------------------
    for network in (infiniband_100g(), ethernet_10g(), wan_slow()):
        rows = [
            run(method, train, test, network=network)
            for method in ("newton_admm", "giant")
        ]
        print(format_table(rows, title=f"Interconnect: {network.name}"))
        ratio = rows[1]["epoch_time_ms"] / rows[0]["epoch_time_ms"]
        print(f"GIANT / Newton-ADMM epoch-time ratio: {ratio:.2f}\n")

    # --- straggler sweep --------------------------------------------------------
    for slowdown in (1.0, 8.0):
        straggler = (
            None
            if slowdown == 1.0
            else StragglerModel(slowdown=slowdown, persistent_stragglers=[0])
        )
        rows = [
            run(method, train, test, network=infiniband_100g(), straggler=straggler)
            for method in ("newton_admm", "giant")
        ]
        print(
            format_table(
                rows, title=f"Persistent straggler on worker 0, slowdown x{slowdown:g}"
            )
        )
        print()

    # --- the event engine's view: sync barrier vs async quorum ----------------
    def straggling_cluster(engine="lockstep"):
        return SimulatedCluster(
            train,
            n_workers=4,
            straggler=StragglerModel(slowdown=8.0, persistent_stragglers=[0]),
            engine=engine,
            random_state=0,
        )

    sync = NewtonADMM(lam=1e-5, max_epochs=4, record_accuracy=False).fit(
        straggling_cluster(engine="event")
    )
    print(
        plot_gantt(
            sync.info["timelines"],
            width=64,
            title="Synchronous Newton-ADMM, straggler x8 on worker 0",
        )
    )
    print()

    asyn_solver = AsyncNewtonADMM(
        lam=1e-5, max_epochs=16, quorum=3, max_staleness=10, record_accuracy=False
    )
    asyn = asyn_solver.fit(straggling_cluster())
    print(
        plot_gantt(
            asyn.info["timelines"],
            width=64,
            title="Async (quorum-3) Newton-ADMM on the same cluster",
        )
    )
    reached = time_to_objective(asyn, sync.final.objective)
    print(
        f"\nasync reaches the sync final objective in {reached:.3g}s modelled "
        f"vs {sync.final.modelled_time:.3g}s for sync "
        f"(final staleness record: {asyn_solver.staleness_log[-1]})"
    )


if __name__ == "__main__":
    main()
