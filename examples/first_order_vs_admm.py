"""Newton-ADMM vs synchronous SGD on a well-conditioned binary problem.

Reproduces the flavour of the paper's Figure 4 on the HIGGS-like workload:
both methods run for a fixed wall of outer epochs; the script reports test
accuracy and training objective against *modelled cluster time*, and the
factor by which Newton-ADMM is faster to reach SGD's final objective
(the paper's headline on HIGGS is 22.5x).

Run with:  python examples/first_order_vs_admm.py
(`--smoke` shrinks the workload to CI size; the docs CI job runs it.)
"""

import sys

from repro import NewtonADMM, SimulatedCluster, SynchronousSGD, load_dataset
from repro.metrics import format_table
from repro.metrics.traces import time_to_objective

SMOKE = "--smoke" in sys.argv[1:]


def main() -> None:
    n_train, n_test = (3000, 600) if SMOKE else (20000, 4000)
    epochs = 4 if SMOKE else 20
    train, test = load_dataset("higgs_like", n_train=n_train, n_test=n_test, random_state=0)
    cluster = SimulatedCluster(train, n_workers=8, random_state=0)
    lam = 1e-5

    admm = NewtonADMM(lam=lam, max_epochs=epochs, cg_max_iter=10, cg_tol=1e-10).fit(
        cluster, test=test
    )

    # Sweep the SGD step size (the paper sweeps 1e-8..1e8 and keeps the best).
    best_sgd = None
    for step in (0.01, 0.1, 1.0):
        trace = SynchronousSGD(
            lam=lam, max_epochs=epochs, step_size=step, batch_size=128, random_state=0
        ).fit(cluster, test=test)
        if best_sgd is None or trace.final.objective < best_sgd.final.objective:
            best_sgd = trace

    rows = []
    for name, trace in (("newton_admm", admm), ("sync_sgd", best_sgd)):
        rows.append(
            {
                "method": name,
                "final_objective": trace.final.objective,
                "test_accuracy": trace.final.test_accuracy,
                "modelled_time_s": trace.total_time(),
                "comm_rounds": trace.final.comm_rounds,
            }
        )
    print(format_table(rows, title="HIGGS-like, 8 workers, lambda=1e-5"))

    t_admm = time_to_objective(admm, best_sgd.final.objective)
    speedup = best_sgd.total_time() / t_admm if t_admm > 0 else float("inf")
    print(
        f"\nNewton-ADMM reaches synchronous SGD's final objective "
        f"({best_sgd.final.objective:.4f}) in {t_admm:.4f} s of modelled time "
        f"vs {best_sgd.total_time():.4f} s for SGD -> {speedup:.1f}x faster."
    )


if __name__ == "__main__":
    main()
