"""Strong/weak scaling study of Newton-ADMM vs GIANT (the paper's Figure 2/3).

For each worker count this script measures the average modelled epoch time
under strong scaling (fixed dataset) and weak scaling (fixed per-worker data),
and the speed-up ratio of Newton-ADMM over GIANT to a relative objective
target of theta = 0.05, using a high-precision single-node Newton solve as
the reference optimum.

Run with:  python examples/scaling_study.py
(`--smoke` shrinks the workload to CI size; the docs CI job runs it.)
"""

import sys

from repro import GIANT, NewtonADMM, SimulatedCluster, load_dataset
from repro.harness.runner import reference_optimum
from repro.metrics import format_table
from repro.metrics.traces import average_epoch_time, speedup_ratio

SMOKE = "--smoke" in sys.argv[1:]

DATASET = "mnist_like"
LAM = 1e-5
WORKER_COUNTS = (1, 2) if SMOKE else (1, 2, 4, 8)
STRONG_TOTAL = 800 if SMOKE else 4000
PER_WORKER = 200 if SMOKE else 500
EPOCHS = 5 if SMOKE else 30


def run_pair(train, n_workers):
    """Run Newton-ADMM and GIANT on the same cluster and return both traces."""
    cluster = SimulatedCluster(train, n_workers, random_state=0)
    shared = dict(lam=LAM, max_epochs=EPOCHS, cg_max_iter=10, cg_tol=1e-4,
                  record_accuracy=False)
    admm = NewtonADMM(**shared).fit(cluster)
    giant = GIANT(**shared).fit(cluster)
    return admm, giant


def main() -> None:
    rows = []
    f_star_cache = {}
    for mode in ("strong", "weak"):
        for n_workers in WORKER_COUNTS:
            n_train = STRONG_TOTAL if mode == "strong" else PER_WORKER * n_workers
            train, _ = load_dataset(DATASET, n_train=n_train, n_test=500, random_state=0)
            if n_train not in f_star_cache:
                _, f_star_cache[n_train] = reference_optimum(
                    train, LAM, max_iterations=60, cg_max_iter=60
                )
            f_star = f_star_cache[n_train]
            admm, giant = run_pair(train, n_workers)
            rows.append(
                {
                    "scaling": mode,
                    "workers": n_workers,
                    "n_train": n_train,
                    "admm_epoch_ms": 1e3 * average_epoch_time(admm),
                    "giant_epoch_ms": 1e3 * average_epoch_time(giant),
                    "speedup_admm_over_giant": speedup_ratio(giant, admm, f_star),
                }
            )
    print(
        format_table(
            rows,
            title=(
                f"Newton-ADMM vs GIANT on {DATASET} (lambda={LAM:g}, "
                f"{EPOCHS} epochs, theta=0.05)"
            ),
        )
    )


if __name__ == "__main__":
    main()
