"""Quickstart: train a multiclass classifier with Newton-ADMM.

Builds the MNIST-like workload, shards it over a 4-worker simulated cluster,
runs Newton-ADMM for 30 outer iterations and prints the per-epoch trace plus
the final test accuracy.

Run with:  python examples/quickstart.py
(`--smoke` shrinks the workload to CI size; the docs CI job runs it.)
"""

import sys

from repro import NewtonADMM, SimulatedCluster, load_dataset
from repro.metrics import format_series

SMOKE = "--smoke" in sys.argv[1:]


def main() -> None:
    # 1. Data: the MNIST stand-in at a laptop-friendly scale.
    n_train, n_test = (600, 150) if SMOKE else (4000, 1000)
    train, test = load_dataset("mnist_like", n_train=n_train, n_test=n_test, random_state=0)
    print(f"train: {train!r}")
    print(f"test:  {test!r}")

    # 2. A simulated 4-node cluster (P100-like devices, 100 Gb/s InfiniBand).
    cluster = SimulatedCluster(train, n_workers=4, random_state=0)
    print(f"cluster: {cluster!r}\n")

    # 3. Newton-ADMM with the paper's Figure-1 hyper-parameters:
    #    lambda = 1e-5, 10 CG iterations at 1e-4, 10 line-search halvings.
    solver = NewtonADMM(
        lam=1e-5,
        max_epochs=5 if SMOKE else 30,
        cg_max_iter=10,
        cg_tol=1e-4,
        line_search_max_iter=10,
    )
    trace = solver.fit(cluster, test=test)

    # 4. Results.
    times, objectives = trace.series("objective")
    print(
        format_series(
            times,
            objectives,
            x_label="modelled time (s)",
            y_label="training objective",
            title="Newton-ADMM training objective vs. modelled cluster time",
        )
    )
    final = trace.final
    print(f"\nfinal objective      : {final.objective:.4f}")
    print(f"final test accuracy  : {final.test_accuracy:.3f}")
    print(f"communication rounds : {final.comm_rounds} (one per ADMM iteration)")
    print(f"modelled cluster time: {final.modelled_time * 1e3:.2f} ms")
    print(f"measured wall time   : {final.wall_time:.2f} s")


if __name__ == "__main__":
    main()
