"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. offline environments where editable installs cannot build wheels), and
arms a hung-worker watchdog around every test marked ``process_engine``: a
deadlocked or orphaned worker process would otherwise hang the whole suite at
a pipe ``recv``, and CI kills the job with no useful traceback.
"""

import os
import signal
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: hard per-test ceiling for process-engine tests (seconds); generous next to
#: the transport's own REPRO_PROCESS_TIMEOUT watchdog, which should fire first
_PROCESS_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "180"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if item.get_closest_marker("process_engine") is None or not hasattr(
        signal, "SIGALRM"
    ):
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"process-engine test exceeded {_PROCESS_TEST_TIMEOUT:.0f}s "
            "(REPRO_TEST_TIMEOUT) — worker processes are likely hung"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, _PROCESS_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
