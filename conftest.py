"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. offline environments where editable installs cannot build wheels).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
