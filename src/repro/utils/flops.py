"""Floating-point-operation estimates for the kernels used by the solvers.

The distributed runtime converts these counts into modelled compute time via
:class:`repro.distributed.device.DeviceModel`.  Counts follow the usual
convention: a fused multiply-add is two FLOPs, and we ignore lower-order terms
(exponential/log evaluation is charged a configurable constant per element).
"""

from __future__ import annotations

# Cost (in FLOP-equivalents) charged per transcendental evaluation (exp/log).
TRANSCENDENTAL_COST = 10.0


def dot_flops(n: int) -> float:
    """FLOPs for an ``n``-element dot product."""
    return 2.0 * n


def axpy_flops(n: int) -> float:
    """FLOPs for ``y += a * x`` over ``n`` elements."""
    return 2.0 * n


def gemv_flops(n_rows: int, n_cols: int) -> float:
    """FLOPs for a dense matrix-vector product of an ``n_rows x n_cols`` matrix."""
    return 2.0 * n_rows * n_cols


def gemm_flops(m: int, k: int, n: int) -> float:
    """FLOPs for a dense ``(m x k) @ (k x n)`` matrix product."""
    return 2.0 * m * k * n


def softmax_objective_flops(n_samples: int, n_features: int, n_classes: int) -> float:
    """FLOPs for one evaluation of the multiclass cross-entropy objective.

    Dominated by the logits GEMM ``X @ W`` with W of shape (p, C-1), plus the
    per-sample log-sum-exp reduction.
    """
    c = max(n_classes - 1, 1)
    gemm = gemm_flops(n_samples, n_features, c)
    lse = n_samples * (c + 1) * TRANSCENDENTAL_COST
    return gemm + lse


def softmax_gradient_flops(n_samples: int, n_features: int, n_classes: int) -> float:
    """FLOPs for one gradient of the multiclass cross-entropy objective.

    Logits GEMM, probability normalization, and the backward GEMM
    ``X^T @ (P - Y)``.
    """
    c = max(n_classes - 1, 1)
    forward = softmax_objective_flops(n_samples, n_features, n_classes)
    backward = gemm_flops(n_features, n_samples, c)
    return forward + backward + 3.0 * n_samples * c


def softmax_value_and_gradient_flops(
    n_samples: int, n_features: int, n_classes: int
) -> float:
    """FLOPs for one *fused* value+gradient of the cross-entropy objective.

    The forward pass (logits GEMM + log-sum-exp) is shared between the value
    and the gradient — the per-iterate cache computes it once — so the fused
    cost is the gradient's cost plus only the value's private reduction
    ``sum(lse - logits * Y)`` (three elementwise passes over ``n x (C-1)``),
    not a second forward pass.
    """
    c = max(n_classes - 1, 1)
    gradient = softmax_gradient_flops(n_samples, n_features, n_classes)
    value_private = 3.0 * n_samples * c
    return gradient + value_private


def softmax_hvp_flops(n_samples: int, n_features: int, n_classes: int) -> float:
    """FLOPs for one Hessian-vector product of the cross-entropy objective.

    Two GEMMs of the same shape as the gradient GEMMs plus elementwise work on
    the ``n_samples x (C-1)`` intermediate (Gauss-Newton-like structure of the
    softmax Hessian).
    """
    c = max(n_classes - 1, 1)
    forward = gemm_flops(n_samples, n_features, c)
    backward = gemm_flops(n_features, n_samples, c)
    elementwise = 6.0 * n_samples * c
    return forward + backward + elementwise
