"""Shared low-level utilities used throughout the Newton-ADMM reproduction.

This package deliberately has no dependencies on the rest of :mod:`repro`,
so that every other subpackage may import it freely.
"""

from repro.utils.rng import check_random_state, spawn_rngs
from repro.utils.timer import Stopwatch, SimulatedClock
from repro.utils.validation import (
    check_array,
    check_labels,
    check_positive,
    check_probability,
    check_in_range,
)
from repro.utils.flops import (
    gemv_flops,
    gemm_flops,
    axpy_flops,
    dot_flops,
    softmax_objective_flops,
    softmax_gradient_flops,
    softmax_hvp_flops,
)

__all__ = [
    "check_random_state",
    "spawn_rngs",
    "Stopwatch",
    "SimulatedClock",
    "check_array",
    "check_labels",
    "check_positive",
    "check_probability",
    "check_in_range",
    "gemv_flops",
    "gemm_flops",
    "axpy_flops",
    "dot_flops",
    "softmax_objective_flops",
    "softmax_gradient_flops",
    "softmax_hvp_flops",
]
