"""Input validation helpers shared across the library.

These mirror the defensive checks a production numerical library performs at
its public API boundary; internal hot loops assume validated inputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


def check_array(
    X,
    *,
    name: str = "X",
    ndim: int = 2,
    dtype=np.float64,
    allow_sparse: bool = False,
    ensure_finite: bool = True,
):
    """Validate and coerce an array-like input.

    Parameters
    ----------
    X:
        Array-like (or scipy sparse matrix when ``allow_sparse``).
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions for dense inputs.
    dtype:
        Target floating dtype.
    allow_sparse:
        Accept CSR/CSC matrices (converted to CSR).
    ensure_finite:
        Reject NaN/Inf entries.

    Returns
    -------
    numpy.ndarray or scipy.sparse.csr_matrix
    """
    if sp.issparse(X):
        if not allow_sparse:
            raise TypeError(f"{name} must be a dense array, got a sparse matrix")
        X = X.tocsr().astype(dtype, copy=False)
        if ensure_finite and not np.all(np.isfinite(X.data)):
            raise ValueError(f"{name} contains NaN or Inf values")
        return X
    X = np.asarray(X, dtype=dtype)
    if X.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got ndim={X.ndim}")
    if ensure_finite and not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains NaN or Inf values")
    return X


def check_labels(
    y, *, n_samples: Optional[int] = None, n_classes: Optional[int] = None
) -> Tuple[np.ndarray, int]:
    """Validate integer class labels in ``{0, ..., C-1}``.

    Returns
    -------
    (labels, n_classes):
        Labels as an ``int64`` vector and the (possibly inferred) class count.
    """
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"labels must be a 1-D array, got ndim={y.ndim}")
    if y.size == 0:
        raise ValueError("labels must be non-empty")
    if not np.issubdtype(y.dtype, np.integer):
        y_int = y.astype(np.int64)
        if not np.allclose(y, y_int):
            raise ValueError("labels must be integers")
        y = y_int
    else:
        y = y.astype(np.int64)
    if n_samples is not None and y.shape[0] != n_samples:
        raise ValueError(
            f"labels length {y.shape[0]} does not match number of samples {n_samples}"
        )
    y_min = int(y.min())
    y_max = int(y.max())
    if y_min < 0:
        raise ValueError(f"labels must be non-negative, found {y_min}")
    inferred = y_max + 1
    if n_classes is None:
        n_classes = max(inferred, 2)
    elif y_max >= n_classes:
        raise ValueError(
            f"label {y_max} out of range for n_classes={n_classes}"
        )
    return y, int(n_classes)


def check_positive(value, *, name: str, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite scalar."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value, *, name: str, inclusive: bool = False) -> float:
    """Validate a scalar in (0, 1), or [0, 1] when ``inclusive``."""
    value = float(value)
    lo_ok = value >= 0 if inclusive else value > 0
    hi_ok = value <= 1 if inclusive else value < 1
    if not (lo_ok and hi_ok):
        interval = "[0, 1]" if inclusive else "(0, 1)"
        raise ValueError(f"{name} must lie in {interval}, got {value}")
    return value


def check_in_range(
    value, *, name: str, low: float, high: float, inclusive: bool = True
) -> float:
    """Validate that a scalar lies in ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value
