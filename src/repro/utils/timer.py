"""Wall-clock and simulated-clock helpers.

Distributed experiments in this reproduction report two notions of time:

* *measured* time — real wall-clock of the (serial, in-process) simulation,
  recorded with :class:`Stopwatch`;
* *modelled* time — the time the same computation would have taken on the
  paper's cluster, accumulated on a :class:`SimulatedClock` from FLOP counts
  (via :class:`repro.distributed.device.DeviceModel`) and message sizes (via
  :class:`repro.distributed.network.NetworkModel`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Stopwatch:
    """A simple cumulative wall-clock stopwatch.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        delta = time.perf_counter() - self._started_at
        self._elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        self._elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Cumulative elapsed seconds (including the in-flight lap, if any)."""
        extra = 0.0
        if self._started_at is not None:
            extra = time.perf_counter() - self._started_at
        return self._elapsed + extra

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


@dataclass
class SimulatedClock:
    """Accumulates modelled time, broken down by named category.

    The clock is advanced explicitly by the distributed runtime; categories
    such as ``"compute"`` and ``"communication"`` allow experiments to report
    the compute/communication split.
    """

    time: float = 0.0
    by_category: Dict[str, float] = field(default_factory=dict)
    _marks: List[float] = field(default_factory=list)

    def advance(self, seconds: float, category: str = "compute") -> float:
        """Advance the clock by ``seconds`` attributed to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds!r}")
        self.time += seconds
        self.by_category[category] = self.by_category.get(category, 0.0) + seconds
        return self.time

    def mark(self) -> float:
        """Record and return the current time (useful for per-epoch deltas)."""
        self._marks.append(self.time)
        return self.time

    @property
    def marks(self) -> List[float]:
        return list(self._marks)

    def category(self, name: str) -> float:
        return self.by_category.get(name, 0.0)

    def reset(self) -> None:
        self.time = 0.0
        self.by_category.clear()
        self._marks.clear()

    def snapshot(self) -> Dict[str, float]:
        """Return a copy of the per-category totals plus the overall time."""
        snap = dict(self.by_category)
        snap["total"] = self.time
        return snap
