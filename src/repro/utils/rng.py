"""Random-number-generator plumbing.

Every stochastic component of the library accepts a ``random_state`` argument
that is normalized through :func:`check_random_state`.  Distributed components
give each simulated worker an *independent* child generator via
:func:`spawn_rngs`, so results are identical whether workers run serially,
in a thread pool, or in separate processes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

RandomStateLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def check_random_state(random_state: RandomStateLike = None) -> np.random.Generator:
    """Normalize ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (fresh nondeterministic generator), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (returned
        unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    raise TypeError(
        f"random_state must be None, an int, a SeedSequence or a Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(
    random_state: RandomStateLike, n: int, *, salt: Optional[Sequence[int]] = None
) -> List[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    The children are derived with :class:`numpy.random.SeedSequence` spawning
    so that they do not overlap regardless of how many draws each consumer
    makes.  Passing an existing :class:`numpy.random.Generator` uses a seed
    drawn from it, which keeps the overall run reproducible.

    Parameters
    ----------
    random_state:
        Parent seed material (see :func:`check_random_state`).
    n:
        Number of child generators.
    salt:
        Optional extra entropy words mixed into the seed sequence; useful to
        decorrelate otherwise identically-seeded subsystems.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(random_state, np.random.SeedSequence):
        ss = random_state
    elif isinstance(random_state, np.random.Generator):
        ss = np.random.SeedSequence(int(random_state.integers(0, 2**63 - 1)))
    else:
        ss = np.random.SeedSequence(random_state)
    if salt is not None:
        ss = np.random.SeedSequence(
            entropy=ss.entropy, spawn_key=tuple(int(s) for s in salt)
        )
    return [np.random.default_rng(child) for child in ss.spawn(n)]
