"""Synthetic dataset generators with controllable conditioning.

The reproduction replaces the paper's proprietary / large datasets with
synthetic stand-ins.  The key property the paper's analysis relies on is the
*conditioning* of the resulting classification problem (HIGGS: well
conditioned; CIFAR-10: ill conditioned), which we control through the spread
of feature scales and inter-feature correlation.
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from repro.datasets.base import ClassificationDataset
from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive


def _feature_scales(n_features: int, condition_number: float, rng) -> np.ndarray:
    """Per-feature standard deviations spanning ``sqrt(condition_number)``.

    The data covariance eigenvalue spread is roughly ``condition_number``, so
    the Gauss-Newton Hessian of the softmax loss inherits a comparable
    conditioning.
    """
    condition_number = check_positive(condition_number, name="condition_number")
    if condition_number < 1.0:
        raise ValueError(
            f"condition_number must be >= 1, got {condition_number}"
        )
    exponents = np.linspace(0.0, 1.0, n_features)
    scales = condition_number ** (-0.5 * exponents)
    return rng.permutation(scales)


def make_multiclass_gaussian(
    n_samples: int,
    n_features: int,
    n_classes: int,
    *,
    condition_number: float = 10.0,
    class_separation: float = 2.0,
    label_noise: float = 0.02,
    correlation: float = 0.0,
    name: str = "synthetic",
    random_state=None,
) -> ClassificationDataset:
    """Gaussian-mixture multiclass dataset.

    Each class ``c`` has a mean drawn on a sphere of radius
    ``class_separation``; features are scaled to realize approximately the
    requested ``condition_number`` of the data covariance, and an optional
    AR(1)-style mixing introduces inter-feature ``correlation`` (which further
    degrades conditioning, mimicking natural-image statistics).

    Parameters
    ----------
    label_noise:
        Fraction of labels flipped uniformly at random (keeps the Bayes error
        non-zero so accuracy curves resemble the paper's).
    """
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError(f"label_noise must be in [0, 1), got {label_noise}")
    if not 0.0 <= correlation < 1.0:
        raise ValueError(f"correlation must be in [0, 1), got {correlation}")
    rng = check_random_state(random_state)

    scales = _feature_scales(n_features, condition_number, rng)
    means = rng.standard_normal((n_classes, n_features))
    means /= np.linalg.norm(means, axis=1, keepdims=True) + 1e-12
    means *= class_separation

    y = rng.integers(0, n_classes, size=n_samples)
    X = rng.standard_normal((n_samples, n_features))
    X += means[y]
    X *= scales[None, :]

    if correlation > 0.0:
        # Mix neighbouring features: X <- X @ M with M = (1-c) I + c S where S
        # shifts columns, producing banded correlation without a dense p x p
        # covariance factorization (important for large p).
        shifted = np.empty_like(X)
        shifted[:, 1:] = X[:, :-1]
        shifted[:, 0] = X[:, -1]
        X = (1.0 - correlation) * X + correlation * shifted

    if label_noise > 0.0:
        flip = rng.random(n_samples) < label_noise
        y = np.where(flip, rng.integers(0, n_classes, size=n_samples), y)

    return ClassificationDataset(
        X=X,
        y=y,
        n_classes=n_classes,
        name=name,
        metadata={
            "generator": "make_multiclass_gaussian",
            "condition_number": float(condition_number),
            "class_separation": float(class_separation),
            "label_noise": float(label_noise),
            "correlation": float(correlation),
        },
    )


def make_binary_margin(
    n_samples: int,
    n_features: int,
    *,
    margin: float = 1.0,
    condition_number: float = 2.0,
    label_noise: float = 0.05,
    name: str = "binary",
    random_state=None,
) -> ClassificationDataset:
    """Binary dataset with a planted linear separator and a soft margin.

    Used as the HIGGS stand-in: low dimensional, close to linearly separable,
    and well conditioned, so that second-order methods converge in a handful
    of iterations (as the paper observes for HIGGS).
    """
    rng = check_random_state(random_state)
    scales = _feature_scales(n_features, condition_number, rng)
    w_true = rng.standard_normal(n_features)
    w_true /= np.linalg.norm(w_true) + 1e-12

    X = rng.standard_normal((n_samples, n_features)) * scales[None, :]
    logits = X @ w_true * margin
    prob = 1.0 / (1.0 + np.exp(-logits))
    y = (rng.random(n_samples) < prob).astype(np.int64)

    if label_noise > 0.0:
        flip = rng.random(n_samples) < label_noise
        y = np.where(flip, 1 - y, y)

    return ClassificationDataset(
        X=X,
        y=y,
        n_classes=2,
        name=name,
        metadata={
            "generator": "make_binary_margin",
            "margin": float(margin),
            "condition_number": float(condition_number),
            "label_noise": float(label_noise),
        },
    )


def make_sparse_multiclass(
    n_samples: int,
    n_features: int,
    n_classes: int,
    *,
    density: float = 0.01,
    nonzero_scale: float = 1.0,
    informative_fraction: float = 0.05,
    label_noise: float = 0.02,
    name: str = "sparse",
    random_state=None,
) -> ClassificationDataset:
    """High-dimensional sparse multiclass dataset (E18 stand-in).

    Single-cell count matrices like E18 are extremely wide and sparse; the
    experiments only ever touch the design matrix through ``X @ V`` and
    ``X.T @ U`` products, so a CSR matrix with matching shape/density
    exercises the same code paths and communication volumes.

    Only ``informative_fraction`` of the features carry class signal; the rest
    are noise, which keeps the problem ill-posed enough that regularization
    matters (the paper sweeps lambda on E18 in Figure 5).
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = check_random_state(random_state)

    n_informative = max(int(informative_fraction * n_features), n_classes)
    n_informative = min(n_informative, n_features)
    informative_idx = rng.choice(n_features, size=n_informative, replace=False)

    # Class "signatures" over the informative features.
    signatures = rng.standard_normal((n_classes, n_informative)) * nonzero_scale
    y = rng.integers(0, n_classes, size=n_samples)

    nnz_per_row = max(int(density * n_features), 1)
    rows = np.repeat(np.arange(n_samples), nnz_per_row)
    cols = np.empty(n_samples * nnz_per_row, dtype=np.int64)
    data = np.empty(n_samples * nnz_per_row, dtype=np.float64)

    # Half of each row's non-zeros land on informative features (carrying the
    # class signature plus noise), half on random background features; rows
    # can never ask for more informative columns than exist.
    n_info_per_row = min(max(nnz_per_row // 2, 1), n_informative)
    n_bg_per_row = nnz_per_row - n_info_per_row
    for i in range(n_samples):
        start = i * nnz_per_row
        info_cols = rng.choice(informative_idx, size=n_info_per_row, replace=False)
        # Map chosen informative columns back to signature positions.
        sig_pos = np.searchsorted(np.sort(informative_idx), info_cols)
        sig_vals = signatures[y[i], sig_pos % n_informative]
        cols[start : start + n_info_per_row] = info_cols
        data[start : start + n_info_per_row] = sig_vals + 0.3 * rng.standard_normal(
            n_info_per_row
        )
        if n_bg_per_row > 0:
            bg_cols = rng.integers(0, n_features, size=n_bg_per_row)
            cols[start + n_info_per_row : start + nnz_per_row] = bg_cols
            data[start + n_info_per_row : start + nnz_per_row] = rng.standard_normal(
                n_bg_per_row
            )

    X = sp.coo_matrix(
        (data, (rows, cols)), shape=(n_samples, n_features), dtype=np.float64
    ).tocsr()
    X.sum_duplicates()

    if label_noise > 0.0:
        flip = rng.random(n_samples) < label_noise
        y = np.where(flip, rng.integers(0, n_classes, size=n_samples), y)

    return ClassificationDataset(
        X=X,
        y=y,
        n_classes=n_classes,
        name=name,
        metadata={
            "generator": "make_sparse_multiclass",
            "density": float(density),
            "informative_fraction": float(informative_fraction),
            "label_noise": float(label_noise),
        },
    )
