"""Feature preprocessing used before training.

The paper standardizes inputs (standard practice for the logistic /
cross-entropy models it trains); these helpers keep dense and sparse paths
consistent and fit-on-train / apply-on-test semantics explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.datasets.base import ClassificationDataset


@dataclass
class Standardizer:
    """Per-feature affine transform ``(x - mean) / scale`` fit on training data.

    For sparse matrices only the scale is applied (centering would destroy
    sparsity), matching common practice for wide sparse problems like E18.
    """

    mean_: Optional[np.ndarray] = None
    scale_: Optional[np.ndarray] = None
    with_mean: bool = True

    def fit(self, X) -> "Standardizer":
        if sp.issparse(X):
            self.with_mean = False
            mean = np.zeros(X.shape[1])
            # E[x^2] per column for CSR without densifying.
            sq = X.multiply(X).mean(axis=0)
            var = np.asarray(sq).ravel()
        else:
            mean = X.mean(axis=0)
            var = X.var(axis=0)
        scale = np.sqrt(var)
        scale[scale < 1e-12] = 1.0
        self.mean_ = mean if self.with_mean else np.zeros(X.shape[1])
        self.scale_ = scale
        return self

    def transform(self, X):
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("Standardizer must be fit before transform")
        if sp.issparse(X):
            inv = sp.diags(1.0 / self.scale_)
            return (X @ inv).tocsr()
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X):
        return self.fit(X).transform(X)


def standardize(
    train: ClassificationDataset, test: Optional[ClassificationDataset] = None
):
    """Standardize a train (and optionally test) dataset with train statistics.

    Returns the transformed dataset(s) — new objects, inputs are not mutated.
    """
    scaler = Standardizer()
    X_train = scaler.fit_transform(train.X)
    new_train = ClassificationDataset(
        X=X_train, y=train.y, n_classes=train.n_classes, name=train.name,
        metadata={**train.metadata, "standardized": True},
    )
    if test is None:
        return new_train
    X_test = scaler.transform(test.X)
    new_test = ClassificationDataset(
        X=X_test, y=test.y, n_classes=test.n_classes, name=test.name,
        metadata={**test.metadata, "standardized": True},
    )
    return new_train, new_test


def add_bias_column(dataset: ClassificationDataset) -> ClassificationDataset:
    """Append a constant ``1`` feature so the linear model learns an intercept."""
    if dataset.is_sparse:
        ones = sp.csr_matrix(np.ones((dataset.n_samples, 1)))
        X = sp.hstack([dataset.X, ones], format="csr")
    else:
        X = np.hstack([dataset.X, np.ones((dataset.n_samples, 1))])
    return ClassificationDataset(
        X=X,
        y=dataset.y,
        n_classes=dataset.n_classes,
        name=dataset.name,
        metadata={**dataset.metadata, "bias_column": True},
    )


def normalize_rows(dataset: ClassificationDataset) -> ClassificationDataset:
    """Scale every sample to unit L2 norm (common for sparse count data)."""
    if dataset.is_sparse:
        norms = np.sqrt(np.asarray(dataset.X.multiply(dataset.X).sum(axis=1)).ravel())
        norms[norms < 1e-12] = 1.0
        inv = sp.diags(1.0 / norms)
        X = (inv @ dataset.X).tocsr()
    else:
        norms = np.linalg.norm(dataset.X, axis=1)
        norms[norms < 1e-12] = 1.0
        X = dataset.X / norms[:, None]
    return ClassificationDataset(
        X=X,
        y=dataset.y,
        n_classes=dataset.n_classes,
        name=dataset.name,
        metadata={**dataset.metadata, "row_normalized": True},
    )
