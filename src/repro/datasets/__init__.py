"""Dataset substrate for the Newton-ADMM reproduction.

The paper evaluates on HIGGS, MNIST, CIFAR-10 and the E18 single-cell
dataset.  None of those are redistributable/available offline, so this package
provides *synthetic stand-ins* whose statistically relevant properties (number
of classes, feature dimension, conditioning of the resulting classification
problem, sparsity) are matched and controllable — see DESIGN.md §2.

Users who do have the real data can load it through :mod:`repro.datasets.io`
(LIBSVM/SVMlight text and labelled CSV readers) and feed the resulting
:class:`ClassificationDataset` to the same cluster / solver APIs.
"""

from repro.datasets.base import ClassificationDataset, train_test_split
from repro.datasets.synthetic import (
    make_multiclass_gaussian,
    make_binary_margin,
    make_sparse_multiclass,
)
from repro.datasets.registry import (
    DATASET_REGISTRY,
    DatasetSpec,
    load_dataset,
    higgs_like,
    mnist_like,
    cifar_like,
    e18_like,
)
from repro.datasets.sharding import (
    shard_contiguous,
    shard_round_robin,
    shard_stratified,
    shard_dataset,
)
from repro.datasets.preprocessing import (
    standardize,
    add_bias_column,
    normalize_rows,
    Standardizer,
)
from repro.datasets.io import load_csv, load_libsvm, save_csv, save_libsvm

__all__ = [
    "load_libsvm",
    "save_libsvm",
    "load_csv",
    "save_csv",
    "ClassificationDataset",
    "train_test_split",
    "make_multiclass_gaussian",
    "make_binary_margin",
    "make_sparse_multiclass",
    "DATASET_REGISTRY",
    "DatasetSpec",
    "load_dataset",
    "higgs_like",
    "mnist_like",
    "cifar_like",
    "e18_like",
    "shard_contiguous",
    "shard_round_robin",
    "shard_stratified",
    "shard_dataset",
    "standardize",
    "add_bias_column",
    "normalize_rows",
    "Standardizer",
]
