"""Dataset file I/O: LIBSVM/SVMlight text format and labelled CSV.

The evaluation datasets of the paper (HIGGS, MNIST, CIFAR-10, E18) are all
distributed in one of two de-facto formats — LIBSVM sparse text or dense
CSV — so a downstream user who wants to run this library on the *real* data
rather than the synthetic stand-ins only needs these two readers.  Both return
the same :class:`~repro.datasets.base.ClassificationDataset` the rest of the
library consumes, and both have matching writers so fixtures and preprocessed
subsets can be round-tripped.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.datasets.base import ClassificationDataset

PathLike = Union[str, Path]


def _remap_labels(raw_labels, n_classes: Optional[int]) -> tuple:
    """Map arbitrary numeric labels (e.g. {-1, +1} or {1..C}) to ``{0..C-1}``."""
    raw = np.asarray(raw_labels, dtype=np.float64)
    unique = np.unique(raw)
    mapping: Dict[float, int] = {value: idx for idx, value in enumerate(unique)}
    y = np.array([mapping[v] for v in raw], dtype=np.int64)
    inferred = len(unique)
    if n_classes is not None and n_classes < inferred:
        raise ValueError(
            f"n_classes={n_classes} but the file contains {inferred} distinct labels"
        )
    return y, (n_classes or max(inferred, 2)), {int(v) if v.is_integer() else v: i
                                                for v, i in mapping.items()}


def load_libsvm(
    path: PathLike,
    *,
    n_features: Optional[int] = None,
    n_classes: Optional[int] = None,
    zero_based: bool = False,
    name: Optional[str] = None,
) -> ClassificationDataset:
    """Read a LIBSVM/SVMlight text file into a sparse classification dataset.

    Each line is ``<label> <index>:<value> <index>:<value> ...``; ``#``
    comments are stripped.  Labels are remapped to ``{0, ..., C-1}`` in sorted
    order of their original values (so ``{-1, +1}`` becomes ``{0, 1}``); the
    original-label mapping is stored in ``dataset.metadata["label_mapping"]``.

    Parameters
    ----------
    n_features:
        Force the feature dimension (otherwise the maximum index seen is used).
    zero_based:
        Set when the file's feature indices start at 0 (LIBSVM convention is
        1-based).
    """
    path = Path(path)
    labels = []
    rows, cols, vals = [], [], []
    max_index = -1
    with path.open() as handle:
        for line_number, line in enumerate(handle):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                labels.append(float(parts[0]))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number + 1}: invalid label {parts[0]!r}"
                ) from exc
            row = len(labels) - 1
            for token in parts[1:]:
                try:
                    index_text, value_text = token.split(":", 1)
                    index = int(index_text)
                    value = float(value_text)
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{line_number + 1}: invalid feature token {token!r}"
                    ) from exc
                if not zero_based:
                    index -= 1
                if index < 0:
                    raise ValueError(
                        f"{path}:{line_number + 1}: negative feature index {token!r}"
                    )
                rows.append(row)
                cols.append(index)
                vals.append(value)
                max_index = max(max_index, index)
    if not labels:
        raise ValueError(f"{path} contains no samples")
    width = n_features if n_features is not None else max_index + 1
    if width <= 0:
        raise ValueError(f"{path} contains no features; pass n_features explicitly")
    if max_index >= width:
        raise ValueError(
            f"{path} has feature index {max_index} >= n_features={width}"
        )
    X = sp.csr_matrix(
        (vals, (rows, cols)), shape=(len(labels), width), dtype=np.float64
    )
    y, n_classes, mapping = _remap_labels(labels, n_classes)
    return ClassificationDataset(
        X=X,
        y=y,
        n_classes=n_classes,
        name=name or path.stem,
        metadata={"source": str(path), "format": "libsvm", "label_mapping": mapping},
    )


def save_libsvm(dataset: ClassificationDataset, path: PathLike, *, zero_based: bool = False) -> Path:
    """Write a dataset in LIBSVM text format (omitting explicit zeros)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    X = dataset.X.tocsr() if dataset.is_sparse else sp.csr_matrix(dataset.X)
    offset = 0 if zero_based else 1
    with path.open("w") as handle:
        for i in range(dataset.n_samples):
            start, end = X.indptr[i], X.indptr[i + 1]
            features = " ".join(
                f"{int(j) + offset}:{v:.17g}"
                for j, v in zip(X.indices[start:end], X.data[start:end])
            )
            handle.write(f"{int(dataset.y[i])} {features}".rstrip() + "\n")
    return path


def load_csv(
    path: PathLike,
    *,
    label_column: int = 0,
    delimiter: str = ",",
    skip_header: int = 0,
    n_classes: Optional[int] = None,
    name: Optional[str] = None,
) -> ClassificationDataset:
    """Read a dense labelled CSV (one sample per row, one column of labels).

    Parameters
    ----------
    label_column:
        Which column holds the class label (0 = first, -1 = last, HIGGS-style
        files put it first).
    skip_header:
        Number of leading lines to skip (column headers).
    """
    path = Path(path)
    data = np.loadtxt(path, delimiter=delimiter, skiprows=skip_header, ndmin=2)
    if data.size == 0:
        raise ValueError(f"{path} contains no samples")
    n_columns = data.shape[1]
    if n_columns < 2:
        raise ValueError(f"{path} must have at least two columns (label + features)")
    label_index = label_column % n_columns
    raw_labels = data[:, label_index]
    X = np.delete(data, label_index, axis=1)
    y, n_classes, mapping = _remap_labels(raw_labels, n_classes)
    return ClassificationDataset(
        X=X,
        y=y,
        n_classes=n_classes,
        name=name or path.stem,
        metadata={"source": str(path), "format": "csv", "label_mapping": mapping},
    )


def save_csv(
    dataset: ClassificationDataset, path: PathLike, *, delimiter: str = ","
) -> Path:
    """Write a dense labelled CSV with the label in the first column."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    X = np.asarray(dataset.X.todense()) if dataset.is_sparse else dataset.X
    table = np.column_stack([dataset.y.astype(np.float64), X])
    np.savetxt(path, table, delimiter=delimiter, fmt="%.17g")
    return path
