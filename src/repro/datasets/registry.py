"""Registry of the paper's four evaluation workloads (Table 1 stand-ins).

Each entry reproduces the *role* of the corresponding dataset in the paper's
evaluation at a reproduction-friendly scale (`scale` multiplies the sample
count; feature counts are kept at the paper's values except for E18, whose
280k features are scaled down by default but can be restored via
``feature_scale=1.0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.datasets.base import ClassificationDataset, train_test_split
from repro.datasets.synthetic import (
    make_binary_margin,
    make_multiclass_gaussian,
    make_sparse_multiclass,
)

#: Paper's Table 1, used for reporting and for scaling the synthetic stand-ins.
PAPER_TABLE1 = {  # repro-lint: ignore[RPR003] filled once below, read-only after import
    "higgs": {"n_classes": 2, "n_samples": 11_000_000, "test_size": 1_000_000, "n_features": 28},
    "mnist": {"n_classes": 10, "n_samples": 70_000, "test_size": 10_000, "n_features": 784},
    "cifar10": {"n_classes": 10, "n_samples": 60_000, "test_size": 10_000, "n_features": 3_072},
    "e18": {"n_classes": 20, "n_samples": 1_306_128, "test_size": 6_000, "n_features": 279_998},
}


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a registered workload.

    Attributes
    ----------
    name:
        Registry key.
    paper_name:
        Name of the dataset this entry stands in for.
    n_classes, n_features:
        Problem shape (post feature scaling for E18).
    default_train, default_test:
        Default sample counts at reproduction scale.
    conditioning:
        Qualitative conditioning note used in reports.
    factory:
        Callable ``(n_train, n_test, random_state) -> (train, test)``.
    """

    name: str
    paper_name: str
    n_classes: int
    n_features: int
    default_train: int
    default_test: int
    conditioning: str
    factory: Callable[[int, int, Optional[int]], Tuple[ClassificationDataset, ClassificationDataset]]
    notes: str = ""
    extra: dict = field(default_factory=dict)


def _split(dataset: ClassificationDataset, n_test: int, random_state):
    return train_test_split(dataset, test_size=n_test, random_state=random_state)


def higgs_like(
    n_train: int = 20_000,
    n_test: int = 4_000,
    *,
    random_state=0,
) -> Tuple[ClassificationDataset, ClassificationDataset]:
    """HIGGS stand-in: binary, 28 features, well conditioned."""
    ds = make_binary_margin(
        n_samples=n_train + n_test,
        n_features=28,
        margin=1.5,
        condition_number=2.0,
        label_noise=0.08,
        name="higgs_like",
        random_state=random_state,
    )
    return _split(ds, n_test, random_state)


def mnist_like(
    n_train: int = 10_000,
    n_test: int = 2_000,
    *,
    random_state=0,
) -> Tuple[ClassificationDataset, ClassificationDataset]:
    """MNIST stand-in: 10 classes, 784 features, moderately conditioned."""
    ds = make_multiclass_gaussian(
        n_samples=n_train + n_test,
        n_features=784,
        n_classes=10,
        condition_number=50.0,
        class_separation=6.0,
        label_noise=0.02,
        correlation=0.2,
        name="mnist_like",
        random_state=random_state,
    )
    return _split(ds, n_test, random_state)


def cifar_like(
    n_train: int = 6_000,
    n_test: int = 1_200,
    *,
    random_state=0,
) -> Tuple[ClassificationDataset, ClassificationDataset]:
    """CIFAR-10 stand-in: 10 classes, 3072 features, ill conditioned.

    The large condition number and strong feature correlation reproduce the
    behaviour the paper attributes to CIFAR-10 (GIANT's iteration counts blow
    up relative to Newton-ADMM as workers are added).
    """
    ds = make_multiclass_gaussian(
        n_samples=n_train + n_test,
        n_features=3_072,
        n_classes=10,
        condition_number=1e4,
        class_separation=1.5,
        label_noise=0.05,
        correlation=0.6,
        name="cifar_like",
        random_state=random_state,
    )
    return _split(ds, n_test, random_state)


def e18_like(
    n_train: int = 4_000,
    n_test: int = 800,
    *,
    feature_scale: float = 0.05,
    random_state=0,
) -> Tuple[ClassificationDataset, ClassificationDataset]:
    """E18 stand-in: 20 classes, very wide sparse design matrix.

    ``feature_scale`` multiplies the paper's 279,998 features (default 5%,
    i.e. ~14k features) so that the reproduction runs on a laptop; pass 1.0 to
    restore the full width.
    """
    n_features = max(int(PAPER_TABLE1["e18"]["n_features"] * feature_scale), 100)
    ds = make_sparse_multiclass(
        n_samples=n_train + n_test,
        n_features=n_features,
        n_classes=20,
        density=0.01,
        informative_fraction=0.05,
        label_noise=0.02,
        name="e18_like",
        random_state=random_state,
    )
    return _split(ds, n_test, random_state)


DATASET_REGISTRY: Dict[str, DatasetSpec] = {  # repro-lint: ignore[RPR003] filled once below, read-only after import
    "higgs_like": DatasetSpec(
        name="higgs_like",
        paper_name="HIGGS",
        n_classes=2,
        n_features=28,
        default_train=20_000,
        default_test=4_000,
        conditioning="well-conditioned",
        factory=higgs_like,
        notes="binary, near-separable; both solvers converge in ~1 outer iteration",
    ),
    "mnist_like": DatasetSpec(
        name="mnist_like",
        paper_name="MNIST",
        n_classes=10,
        n_features=784,
        default_train=10_000,
        default_test=2_000,
        conditioning="moderate",
        factory=mnist_like,
    ),
    "cifar_like": DatasetSpec(
        name="cifar_like",
        paper_name="CIFAR-10",
        n_classes=10,
        n_features=3_072,
        default_train=6_000,
        default_test=1_200,
        conditioning="ill-conditioned",
        factory=cifar_like,
    ),
    "e18_like": DatasetSpec(
        name="e18_like",
        paper_name="E18",
        n_classes=20,
        n_features=int(PAPER_TABLE1["e18"]["n_features"] * 0.05),
        default_train=4_000,
        default_test=800,
        conditioning="high-dimensional, sparse",
        factory=e18_like,
        notes="Hessian never materialized; exercises the Hessian-free path",
    ),
}


def load_dataset(
    name: str,
    *,
    n_train: Optional[int] = None,
    n_test: Optional[int] = None,
    random_state=0,
    **kwargs,
) -> Tuple[ClassificationDataset, ClassificationDataset]:
    """Load a registered workload by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_REGISTRY` keys (``higgs_like``, ``mnist_like``,
        ``cifar_like``, ``e18_like``).
    n_train, n_test:
        Override the default reproduction-scale sample counts.
    kwargs:
        Passed to the underlying factory (e.g. ``feature_scale`` for E18).
    """
    if name not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        )
    spec = DATASET_REGISTRY[name]
    n_train = spec.default_train if n_train is None else int(n_train)
    n_test = spec.default_test if n_test is None else int(n_test)
    return spec.factory(n_train, n_test, random_state=random_state, **kwargs)
