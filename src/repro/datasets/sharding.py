"""Partitioning datasets across simulated workers.

The consensus formulation (paper eq. 5) splits the dataset ``D`` into
``D_1 ∪ ... ∪ D_N``.  Three strategies are provided; the paper's experiments
correspond to contiguous/by-sample splits, but stratified sharding is the
robust default for classification (a worker that never sees a class has a
degenerate local subproblem).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datasets.base import ClassificationDataset
from repro.utils.rng import check_random_state


def shard_contiguous(dataset: ClassificationDataset, n_shards: int) -> List[ClassificationDataset]:
    """Split rows into ``n_shards`` contiguous, nearly equal-sized blocks."""
    _validate_n_shards(dataset, n_shards)
    bounds = np.linspace(0, dataset.n_samples, n_shards + 1).astype(int)
    shards = []
    for i in range(n_shards):
        idx = np.arange(bounds[i], bounds[i + 1])
        shards.append(dataset.subset(idx, name=f"{dataset.name}[shard {i}]"))
    return shards


def shard_round_robin(dataset: ClassificationDataset, n_shards: int) -> List[ClassificationDataset]:
    """Deal rows to shards in round-robin order (shard ``i`` gets rows ``i, i+N, ...``)."""
    _validate_n_shards(dataset, n_shards)
    shards = []
    for i in range(n_shards):
        idx = np.arange(i, dataset.n_samples, n_shards)
        shards.append(dataset.subset(idx, name=f"{dataset.name}[shard {i}]"))
    return shards


def shard_stratified(
    dataset: ClassificationDataset, n_shards: int, *, random_state=None
) -> List[ClassificationDataset]:
    """Split rows so every shard gets (approximately) every class.

    Rows of each class are shuffled and dealt round-robin to the shards, so
    shard sizes differ by at most ``n_classes`` and class proportions match
    the global dataset.
    """
    _validate_n_shards(dataset, n_shards)
    rng = check_random_state(random_state)
    assignment = np.empty(dataset.n_samples, dtype=np.int64)
    offset = 0
    for c in range(dataset.n_classes):
        class_idx = np.flatnonzero(dataset.y == c)
        rng.shuffle(class_idx)
        # Continue the round-robin counter across classes to balance sizes.
        positions = (np.arange(class_idx.size) + offset) % n_shards
        assignment[class_idx] = positions
        offset += class_idx.size
    shards = []
    for i in range(n_shards):
        idx = np.flatnonzero(assignment == i)
        shards.append(dataset.subset(idx, name=f"{dataset.name}[shard {i}]"))
    return shards


def shard_dataset(
    dataset: ClassificationDataset,
    n_shards: int,
    *,
    strategy: str = "stratified",
    random_state=None,
) -> List[ClassificationDataset]:
    """Shard a dataset with the named strategy.

    Parameters
    ----------
    strategy:
        ``"contiguous"``, ``"round_robin"`` or ``"stratified"``.
    """
    if strategy == "contiguous":
        return shard_contiguous(dataset, n_shards)
    if strategy == "round_robin":
        return shard_round_robin(dataset, n_shards)
    if strategy == "stratified":
        return shard_stratified(dataset, n_shards, random_state=random_state)
    raise ValueError(
        f"unknown sharding strategy {strategy!r}; "
        "expected 'contiguous', 'round_robin' or 'stratified'"
    )


def _validate_n_shards(dataset: ClassificationDataset, n_shards: int) -> None:
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > dataset.n_samples:
        raise ValueError(
            f"cannot split {dataset.n_samples} samples into {n_shards} shards"
        )
