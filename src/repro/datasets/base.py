"""Core dataset container and train/test splitting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_labels


@dataclass
class ClassificationDataset:
    """A labelled classification dataset (dense or sparse design matrix).

    Attributes
    ----------
    X:
        Design matrix of shape ``(n_samples, n_features)``; dense ndarray or
        CSR matrix.
    y:
        Integer labels in ``{0, ..., n_classes - 1}``.
    n_classes:
        Number of classes (``C`` in the paper).
    name:
        Human-readable name used in reports.
    """

    X: np.ndarray
    y: np.ndarray
    n_classes: int
    name: str = "dataset"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X = check_array(self.X, name="X", allow_sparse=True)
        self.y, self.n_classes = check_labels(
            self.y, n_samples=self.X.shape[0], n_classes=self.n_classes
        )

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.X)

    @property
    def dim(self) -> int:
        """Dimension of the optimization variable: ``(C - 1) * p``."""
        return (self.n_classes - 1) * self.n_features

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the design matrix in bytes."""
        if self.is_sparse:
            return int(
                self.X.data.nbytes + self.X.indices.nbytes + self.X.indptr.nbytes
            )
        return int(self.X.nbytes)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, length ``n_classes``."""
        return np.bincount(self.y, minlength=self.n_classes)

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "ClassificationDataset":
        """Return a new dataset restricted to ``indices`` (rows)."""
        indices = np.asarray(indices, dtype=np.int64)
        X_sub = self.X[indices]
        return ClassificationDataset(
            X=X_sub,
            y=self.y[indices],
            n_classes=self.n_classes,
            name=name or self.name,
            metadata=dict(self.metadata),
        )

    def subsample(
        self, n_samples: int, *, random_state=None, stratified: bool = True
    ) -> "ClassificationDataset":
        """Randomly subsample ``n_samples`` rows (optionally class-stratified).

        This mirrors the paper's procedure of sampling 60,000 / 480,000
        instances from E18 to fit the training set on the GPU.
        """
        if n_samples > self.n_samples:
            raise ValueError(
                f"cannot subsample {n_samples} rows from a dataset with "
                f"{self.n_samples} rows"
            )
        rng = check_random_state(random_state)
        if not stratified:
            idx = rng.choice(self.n_samples, size=n_samples, replace=False)
            return self.subset(np.sort(idx))
        # Stratified: allocate samples proportionally per class, fixing
        # rounding by topping up from the largest classes.
        counts = self.class_counts()
        fractions = counts / counts.sum()
        alloc = np.floor(fractions * n_samples).astype(int)
        deficit = n_samples - alloc.sum()
        order = np.argsort(-counts)
        for k in range(deficit):
            alloc[order[k % len(order)]] += 1
        chosen = []
        for c in range(self.n_classes):
            class_idx = np.flatnonzero(self.y == c)
            take = min(alloc[c], class_idx.size)
            if take > 0:
                chosen.append(rng.choice(class_idx, size=take, replace=False))
        idx = np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
        # If stratification under-filled (tiny classes), top up uniformly.
        if idx.size < n_samples:
            remaining = np.setdiff1d(np.arange(self.n_samples), idx)
            extra = rng.choice(remaining, size=n_samples - idx.size, replace=False)
            idx = np.concatenate([idx, extra])
        return self.subset(np.sort(idx))

    def describe(self) -> dict:
        """Summary statistics matching the columns of the paper's Table 1."""
        return {
            "name": self.name,
            "n_classes": self.n_classes,
            "n_samples": self.n_samples,
            "n_features": self.n_features,
            "dim": self.dim,
            "sparse": self.is_sparse,
            "nbytes": self.nbytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sparse" if self.is_sparse else "dense"
        return (
            f"ClassificationDataset(name={self.name!r}, n={self.n_samples}, "
            f"p={self.n_features}, C={self.n_classes}, {kind})"
        )


def train_test_split(
    dataset: ClassificationDataset,
    *,
    test_size: float | int = 0.2,
    random_state=None,
    stratified: bool = True,
) -> Tuple[ClassificationDataset, ClassificationDataset]:
    """Split a dataset into train and test partitions.

    Parameters
    ----------
    test_size:
        Either a fraction in (0, 1) or an absolute number of test samples.
    stratified:
        Preserve class proportions in both splits.
    """
    n = dataset.n_samples
    if isinstance(test_size, float):
        if not 0.0 < test_size < 1.0:
            raise ValueError(f"fractional test_size must be in (0, 1), got {test_size}")
        n_test = int(round(test_size * n))
    else:
        n_test = int(test_size)
    if not 0 < n_test < n:
        raise ValueError(f"test_size {n_test} must be in (0, {n})")

    rng = check_random_state(random_state)
    if stratified:
        test_idx_parts = []
        counts = dataset.class_counts()
        fractions = counts / counts.sum()
        alloc = np.floor(fractions * n_test).astype(int)
        deficit = n_test - alloc.sum()
        order = np.argsort(-counts)
        for k in range(deficit):
            alloc[order[k % len(order)]] += 1
        for c in range(dataset.n_classes):
            class_idx = np.flatnonzero(dataset.y == c)
            take = min(alloc[c], max(class_idx.size - 1, 0))
            if take > 0:
                test_idx_parts.append(rng.choice(class_idx, size=take, replace=False))
        test_idx = (
            np.concatenate(test_idx_parts) if test_idx_parts else np.empty(0, np.int64)
        )
        if test_idx.size < n_test:
            remaining = np.setdiff1d(np.arange(n), test_idx)
            extra = rng.choice(remaining, size=n_test - test_idx.size, replace=False)
            test_idx = np.concatenate([test_idx, extra])
    else:
        test_idx = rng.choice(n, size=n_test, replace=False)

    test_mask = np.zeros(n, dtype=bool)
    test_mask[test_idx] = True
    train = dataset.subset(np.flatnonzero(~test_mask), name=f"{dataset.name}-train")
    test = dataset.subset(np.flatnonzero(test_mask), name=f"{dataset.name}-test")
    return train, test
