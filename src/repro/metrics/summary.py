"""Plain-text report formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal (no plotting dependencies are assumed).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Union

Number = Union[int, float]


def _format_cell(value, *, precision: int = 4) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1e5 or (abs(value) < 1e-3 and value != 0.0):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [
        [_format_cell(row.get(c, ""), precision=precision) for c in columns]
        for row in rows
    ]
    widths = [
        max(len(header[j]), *(len(r[j]) for r in body)) for j in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(header)))
    lines.append("  ".join("-" * widths[j] for j in range(len(columns))))
    for r in body:
        lines.append("  ".join(r[j].ljust(widths[j]) for j in range(len(columns))))
    return "\n".join(lines)


def format_series(
    x: Iterable[Number],
    y: Iterable[Number],
    *,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
    max_points: int = 25,
    precision: int = 4,
) -> str:
    """Render an (x, y) series as rows, downsampling long series evenly."""
    xs = list(x)
    ys = list(y)
    if len(xs) != len(ys):
        raise ValueError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n > max_points:
        step = max(n // max_points, 1)
        keep = list(range(0, n, step))
        if keep[-1] != n - 1:
            keep.append(n - 1)
        xs = [xs[i] for i in keep]
        ys = [ys[i] for i in keep]
    rows = [{x_label: xv, y_label: yv} for xv, yv in zip(xs, ys)]
    return format_table(rows, columns=[x_label, y_label], title=title, precision=precision)


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|`` with a guarded denominator."""
    denom = max(abs(reference), 1e-300)
    return abs(measured - reference) / denom
