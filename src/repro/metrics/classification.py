"""Classification quality metrics."""

from __future__ import annotations

import numpy as np


def accuracy(y_true, y_pred) -> float:
    """Fraction of correctly classified samples, in percent-free [0, 1]."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


def error_rate(y_true, y_pred) -> float:
    """``1 - accuracy``."""
    return 1.0 - accuracy(y_true, y_pred)


def top_k_accuracy(y_true, scores, k: int = 5) -> float:
    """Fraction of samples whose true class is among the ``k`` highest scores.

    Parameters
    ----------
    y_true:
        Integer labels, shape ``(n,)``.
    scores:
        Per-class scores or probabilities, shape ``(n, n_classes)``.
    """
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[0] != y_true.shape[0]:
        raise ValueError(
            f"scores must have shape (n, n_classes); got {scores.shape} for "
            f"{y_true.shape[0]} labels"
        )
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k must lie in [1, {scores.shape[1]}], got {k}")
    top_k = np.argsort(-scores, axis=1)[:, :k]
    return float(np.mean(np.any(top_k == y_true[:, None], axis=1)))


def precision_recall_f1(
    y_true, y_pred, n_classes: int, *, average: str = "macro"
) -> dict:
    """Per-class or averaged precision / recall / F1.

    Parameters
    ----------
    average:
        ``"macro"`` (unweighted mean over classes, default), ``"micro"``
        (global counts), or ``"none"`` (arrays of per-class values).
    """
    M = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(M).astype(np.float64)
    predicted = M.sum(axis=0).astype(np.float64)
    actual = M.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        f1 = np.where(
            precision + recall > 0, 2 * precision * recall / (precision + recall), 0.0
        )
    if average == "none":
        return {"precision": precision, "recall": recall, "f1": f1}
    if average == "macro":
        return {
            "precision": float(precision.mean()),
            "recall": float(recall.mean()),
            "f1": float(f1.mean()),
        }
    if average == "micro":
        total_tp = float(tp.sum())
        total = float(M.sum())
        p = total_tp / total if total > 0 else 0.0
        return {"precision": p, "recall": p, "f1": p}
    raise ValueError(f"average must be 'macro', 'micro' or 'none', got {average!r}")


def roc_auc(y_true, scores) -> float:
    """Area under the ROC curve for binary labels via the rank statistic.

    ``scores`` are scores/probabilities for the positive class (label 1).
    Equivalent to the Mann-Whitney U statistic normalized by the number of
    positive/negative pairs; ties receive half credit.
    """
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs scores {scores.shape}"
        )
    positives = scores[y_true == 1]
    negatives = scores[y_true == 0]
    if positives.size == 0 or negatives.size == 0:
        raise ValueError("roc_auc requires at least one positive and one negative sample")
    # Rank-based computation (average ranks handle ties).
    order = np.argsort(np.concatenate([negatives, positives]), kind="mergesort")
    ranks = np.empty(order.size, dtype=np.float64)
    sorted_scores = np.concatenate([negatives, positives])[order]
    ranks[order] = np.arange(1, order.size + 1)
    # Average the ranks of tied groups.
    unique, inverse, counts = np.unique(
        sorted_scores, return_inverse=True, return_counts=True
    )
    cumulative = np.cumsum(counts)
    average_rank = cumulative - (counts - 1) / 2.0
    ranks[order] = average_rank[inverse]
    positive_ranks = ranks[negatives.size:]
    n_pos, n_neg = positives.size, negatives.size
    u = positive_ranks.sum() - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def confusion_matrix(y_true, y_pred, n_classes: int) -> np.ndarray:
    """Counts matrix ``M[i, j]`` = samples of true class ``i`` predicted ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.int64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if y_true.min(initial=0) < 0 or y_pred.min(initial=0) < 0:
        raise ValueError("labels must be non-negative")
    if y_true.max(initial=0) >= n_classes or y_pred.max(initial=0) >= n_classes:
        raise ValueError("labels out of range for n_classes")
    M = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(M, (y_true, y_pred), 1)
    return M
