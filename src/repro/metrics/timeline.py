"""Per-worker timelines: busy / wait / comm segments of a modelled schedule.

The discrete-event engine (:mod:`repro.distributed.engine`) gives every
simulated worker its own clock; this module holds the record of what each
worker was doing and when.  A timeline is an append-only list of
:class:`TimelineSegment` (busy compute, barrier/straggler wait, communication)
plus an optional ``background`` lane for transfers that overlap compute.

These records are what the Gantt export
(:func:`repro.harness.plotting.plot_gantt`) renders and what the
straggler/async analyses aggregate: synchronous methods show growing ``wait``
bars on the fast workers as stragglers slow a round down, while asynchronous
schedules show staggered ``busy`` bars and per-worker progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

#: segment kinds in display order (``down`` = crashed, waiting for restart;
#: ``unreachable`` = up and computing, but behind a network partition)
SEGMENT_KINDS = ("busy", "wait", "comm", "down", "unreachable")


@dataclass(frozen=True)
class TimelineSegment:
    """One contiguous activity interval on a worker's clock."""

    start: float
    end: float
    kind: str
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"segment ends before it starts: [{self.start}, {self.end}]"
            )
        if self.kind not in SEGMENT_KINDS:
            raise ValueError(
                f"unknown segment kind {self.kind!r}; expected one of {SEGMENT_KINDS}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "start": float(self.start),
            "end": float(self.end),
            "kind": self.kind,
            "label": self.label,
        }


@dataclass
class WorkerTimeline:
    """Append-only activity record of one worker, with its local clock ``t``.

    The engine advances ``t`` through :meth:`advance` (busy/comm work) and
    :meth:`wait_until` (barrier or idle waits); zero-length intervals are not
    recorded.  ``background`` holds transfers posted with overlap — they do
    not advance the worker's clock (the NIC moves the bytes while the worker
    computes) but are kept for the Gantt export.
    """

    worker_id: int
    t: float = 0.0
    segments: List[TimelineSegment] = field(default_factory=list)
    background: List[TimelineSegment] = field(default_factory=list)

    def advance(self, seconds: float, kind: str = "busy", label: str = "") -> float:
        """Advance the local clock by ``seconds`` doing ``kind`` work."""
        if seconds < 0:
            raise ValueError(f"cannot advance timeline by negative time {seconds!r}")
        if seconds > 0:
            self.segments.append(
                TimelineSegment(self.t, self.t + seconds, kind, label)
            )
            self.t += seconds
        return self.t

    def wait_until(self, time: float, label: str = "barrier") -> float:
        """Idle (``wait``) until the absolute local time ``time``.

        A target in the past is a no-op: the worker is already there.
        """
        if time > self.t:
            self.advance(time - self.t, "wait", label)
        return self.t

    def post_background(self, start: float, seconds: float, label: str = "") -> float:
        """Record an overlapped transfer of ``seconds`` starting at ``start``.

        Returns the completion time; the worker's own clock is untouched.
        """
        if seconds < 0:
            raise ValueError(f"background transfer cannot take {seconds!r} s")
        end = start + seconds
        self.background.append(TimelineSegment(start, end, "comm", label))
        return end

    # -- aggregation -------------------------------------------------------
    def totals(self) -> Dict[str, float]:
        """Seconds spent per segment kind (background comm under ``overlap``)."""
        out = {kind: 0.0 for kind in SEGMENT_KINDS}
        for seg in self.segments:
            out[seg.kind] += seg.duration
        out["overlap"] = sum(seg.duration for seg in self.background)
        return out

    @property
    def span(self) -> float:
        """Total local time covered (== the local clock)."""
        return self.t

    def utilization(self) -> float:
        """Fraction of the span spent busy (``nan`` for an empty timeline)."""
        if self.t <= 0:
            return float("nan")
        return self.totals()["busy"] / self.t

    def to_dict(self, *, include_segments: bool = True) -> dict:
        out = {"worker_id": int(self.worker_id), "total": float(self.t)}
        out.update({k: float(v) for k, v in self.totals().items()})
        if include_segments:
            out["segments"] = [seg.to_dict() for seg in self.segments]
            if self.background:
                out["background"] = [seg.to_dict() for seg in self.background]
        return out


def timeline_summary(
    timelines: Sequence[WorkerTimeline], *, include_segments: bool = False
) -> List[dict]:
    """One row per worker: busy/wait/comm totals and utilization.

    This is the table behind the straggler analyses: under a persistent
    straggler every non-straggling worker's ``wait`` grows to cover the
    slow worker's extra compute on synchronous schedules, and shrinks to
    near zero on quorum-based asynchronous ones.
    """
    rows = []
    for tl in timelines:
        row = tl.to_dict(include_segments=include_segments)
        row["utilization"] = float(tl.utilization())
        rows.append(row)
    return rows


def max_time(timelines: Sequence[WorkerTimeline]) -> float:
    """Latest local clock across the timelines (0 when empty)."""
    return max((tl.t for tl in timelines), default=0.0)


def epoch_window(
    boundaries: Sequence[Sequence[float]], epoch: int, n_workers: int
):
    """Per-worker window of one epoch: ``(starts, ends, t0)``.

    ``boundaries[e][i]`` is worker ``i``'s local clock at the end of epoch
    ``e + 1``; epoch ``epoch`` (1-based) runs, on worker ``i``, from
    ``boundaries[epoch - 2][i]`` (or 0 for the first epoch) to
    ``boundaries[epoch - 1][i]``.  ``t0`` is the earliest window start
    across workers — the shift that places the sliced epoch at 0.  This is
    the single definition of the window both :func:`slice_epoch` (segments)
    and the Gantt export's fault-marker remap consume, so they cannot drift
    apart.
    """
    if not 1 <= epoch <= len(boundaries):
        raise ValueError(
            f"epoch must lie in [1, {len(boundaries)}], got {epoch}"
        )
    starts = (
        [0.0] * n_workers if epoch == 1 else list(boundaries[epoch - 2])
    )
    ends = list(boundaries[epoch - 1])
    if len(starts) != n_workers or len(ends) != n_workers:
        raise ValueError(
            f"boundaries describe {len(ends)} workers, got {n_workers} timelines"
        )
    return starts, ends, min(starts)


def slice_epoch(
    timelines: Sequence[WorkerTimeline],
    boundaries: Sequence[Sequence[float]],
    epoch: int,
) -> List[WorkerTimeline]:
    """Cut one epoch's window out of cumulative per-worker timelines.

    The window per worker comes from :func:`epoch_window`.  Segments are
    clipped to it and shifted so the earliest window start across workers
    lands at 0 — workers keep their relative offsets, which is what makes
    asynchronous epochs render honestly.
    """
    starts, ends, t0 = epoch_window(boundaries, epoch, len(timelines))

    def clipped(segments, start: float, end: float) -> List[TimelineSegment]:
        out = []
        for seg in segments:
            lo, hi = max(seg.start, start), min(seg.end, end)
            if hi > lo:
                out.append(TimelineSegment(lo - t0, hi - t0, seg.kind, seg.label))
        return out

    sliced: List[WorkerTimeline] = []
    for tl, start, end in zip(timelines, starts, ends):
        cut = WorkerTimeline(worker_id=tl.worker_id)
        cut.segments = clipped(tl.segments, start, end)
        cut.background = clipped(tl.background, start, end)
        cut.t = end - t0
        sliced.append(cut)
    return sliced


def wall_clock_summary(rows: Sequence[dict]) -> dict:
    """Aggregate *measured* per-rank wall-clock timelines (process engine).

    ``rows`` are serialized :class:`WorkerTimeline` dicts where segments hold
    real ``perf_counter`` durations instead of modelled seconds: ``busy`` is
    time inside local compute, ``comm`` is time blocked in a real collective
    (which includes waiting for slower ranks — on a pipe transport the two
    are indistinguishable).  The summary reports the makespan (slowest rank)
    and the parallel efficiency ``sum(busy) / (n * makespan)`` — the number
    that says how much of the machine the run actually used, and the honest
    counterpart of the modelled speedups the simulated engines report.
    """
    makespan = max((float(r.get("total", 0.0)) for r in rows), default=0.0)
    busy = sum(float(r.get("busy", 0.0)) for r in rows)
    comm = sum(float(r.get("comm", 0.0)) for r in rows)
    wait = sum(float(r.get("wait", 0.0)) for r in rows)
    n = len(rows)
    return {
        "n_workers": n,
        "makespan_seconds": makespan,
        "busy_seconds": busy,
        "comm_seconds": comm,
        "wait_seconds": wait,
        "parallel_efficiency": (
            busy / (n * makespan) if n and makespan > 0 else float("nan")
        ),
    }


def timelines_from_dicts(rows: Sequence[dict]) -> List[WorkerTimeline]:
    """Rebuild :class:`WorkerTimeline` objects from serialized dictionaries.

    Used to re-render Gantt charts from saved traces; rows without a
    ``segments`` list come back as empty timelines with the recorded span.
    """
    out: List[WorkerTimeline] = []
    for row in rows:
        tl = WorkerTimeline(worker_id=int(row["worker_id"]))
        for seg in row.get("segments", ()):  # pragma: no branch
            tl.segments.append(
                TimelineSegment(
                    float(seg["start"]), float(seg["end"]), seg["kind"],
                    seg.get("label", ""),
                )
            )
        for seg in row.get("background", ()):
            tl.background.append(
                TimelineSegment(
                    float(seg["start"]), float(seg["end"]), "comm",
                    seg.get("label", ""),
                )
            )
        tl.t = float(row.get("total", tl.segments[-1].end if tl.segments else 0.0))
        out.append(tl)
    return out
