"""Per-epoch traces of distributed runs and derived timing metrics.

These are the data structures behind every figure of the paper:

* Figures 1, 4, 5 plot objective (or test accuracy) against time — that is
  :meth:`RunTrace.series`;
* Figure 2 plots average epoch time — :func:`average_epoch_time`;
* Figure 3 plots the speed-up ratio of GIANT over Newton-ADMM at a relative
  objective target ``theta < 0.05`` — :func:`time_to_relative_objective` and
  :func:`speedup_ratio`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class EpochRecord:
    """State of a distributed run after one outer iteration ("epoch").

    Attributes
    ----------
    epoch:
        1-based outer iteration index.
    objective:
        Global training objective (mean loss + regularizer) at the iterate.
    grad_norm:
        Norm of the global gradient (``nan`` if not evaluated).
    train_accuracy, test_accuracy:
        Classification accuracy of the current iterate (``nan`` if not
        evaluated).
    modelled_time:
        Cumulative modelled cluster time (compute + communication) in seconds.
    compute_time, comm_time:
        Cumulative split of ``modelled_time``.
    wall_time:
        Cumulative measured wall-clock of the simulation.
    comm_rounds:
        Cumulative number of communication rounds.
    extras:
        Method-specific diagnostics (ADMM residuals, CG iterations, ...).
    """

    epoch: int
    objective: float
    grad_norm: float = float("nan")
    train_accuracy: float = float("nan")
    test_accuracy: float = float("nan")
    modelled_time: float = 0.0
    compute_time: float = 0.0
    comm_time: float = 0.0
    wall_time: float = 0.0
    comm_rounds: int = 0
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class RunTrace:
    """Full trace of one distributed solver run."""

    method: str
    dataset: str
    n_workers: int
    records: List[EpochRecord] = field(default_factory=list)
    final_w: Optional[np.ndarray] = None
    info: Dict[str, object] = field(default_factory=dict)

    # -- accessors ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    @property
    def n_epochs(self) -> int:
        return len(self.records)

    def objectives(self) -> np.ndarray:
        return np.array([r.objective for r in self.records])

    def times(self, kind: str = "modelled") -> np.ndarray:
        """Cumulative times; ``kind`` is 'modelled', 'wall', 'compute' or 'comm'."""
        attr = {
            "modelled": "modelled_time",
            "wall": "wall_time",
            "compute": "compute_time",
            "comm": "comm_time",
        }.get(kind)
        if attr is None:
            raise ValueError(f"unknown time kind {kind!r}")
        return np.array([getattr(r, attr) for r in self.records])

    def test_accuracies(self) -> np.ndarray:
        return np.array([r.test_accuracy for r in self.records])

    def series(self, y: str = "objective", time_kind: str = "modelled"):
        """(time, value) pairs for plotting objective/accuracy vs. time."""
        values = {
            "objective": self.objectives(),
            "test_accuracy": self.test_accuracies(),
            "train_accuracy": np.array([r.train_accuracy for r in self.records]),
            "grad_norm": np.array([r.grad_norm for r in self.records]),
        }.get(y)
        if values is None:
            raise ValueError(f"unknown series {y!r}")
        return self.times(time_kind), values

    @property
    def final(self) -> EpochRecord:
        if not self.records:
            raise ValueError("trace has no records")
        return self.records[-1]

    def best_objective(self) -> float:
        return float(np.min(self.objectives())) if self.records else float("nan")

    def total_time(self, kind: str = "modelled") -> float:
        return float(self.times(kind)[-1]) if self.records else 0.0


def average_epoch_time(trace: RunTrace, kind: str = "modelled") -> float:
    """Average per-epoch time — the quantity plotted in Figure 2."""
    if not trace.records:
        return float("nan")
    return trace.total_time(kind) / trace.n_epochs


def time_to_objective(
    trace: RunTrace, target: float, *, kind: str = "modelled"
) -> float:
    """Earliest cumulative time at which the objective drops to ``target``.

    Returns ``inf`` when the run never reaches the target.
    """
    times = trace.times(kind)
    objectives = trace.objectives()
    hits = np.flatnonzero(objectives <= target)
    if hits.size == 0:
        return math.inf
    return float(times[hits[0]])


def time_to_relative_objective(
    trace: RunTrace,
    f_star: float,
    *,
    theta: float = 0.05,
    kind: str = "modelled",
) -> float:
    """Time to reach relative objective ``(F(x_k) - F*) / |F*| < theta``.

    This is the criterion of the paper's Figure 3, with ``F*`` obtained from a
    high-precision single-node Newton solve.
    """
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    denom = max(abs(f_star), 1e-300)
    target = f_star + theta * denom
    return time_to_objective(trace, target, kind=kind)


def speedup_ratio(
    baseline: RunTrace,
    method: RunTrace,
    f_star: float,
    *,
    theta: float = 0.05,
    kind: str = "modelled",
) -> float:
    """Figure-3 speed-up ratio: baseline time / method time to the target.

    ``inf`` when the baseline never reaches the target but the method does;
    ``nan`` when neither reaches it.
    """
    t_baseline = time_to_relative_objective(baseline, f_star, theta=theta, kind=kind)
    t_method = time_to_relative_objective(method, f_star, theta=theta, kind=kind)
    if math.isinf(t_method) and math.isinf(t_baseline):
        return float("nan")
    if math.isinf(t_method):
        return 0.0
    if t_method <= 0.0:
        return math.inf
    return t_baseline / t_method
