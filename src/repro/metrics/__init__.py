"""Evaluation metrics and run traces."""

from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    error_rate,
    precision_recall_f1,
    roc_auc,
    top_k_accuracy,
)
from repro.metrics.traces import (
    EpochRecord,
    RunTrace,
    time_to_objective,
    time_to_relative_objective,
    speedup_ratio,
    average_epoch_time,
)
from repro.metrics.summary import format_table, format_series, relative_error
from repro.metrics.timeline import (
    TimelineSegment,
    WorkerTimeline,
    timeline_summary,
    timelines_from_dicts,
)

__all__ = [
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "precision_recall_f1",
    "roc_auc",
    "top_k_accuracy",
    "EpochRecord",
    "RunTrace",
    "time_to_objective",
    "time_to_relative_objective",
    "speedup_ratio",
    "average_epoch_time",
    "format_table",
    "format_series",
    "relative_error",
    "TimelineSegment",
    "WorkerTimeline",
    "timeline_summary",
    "timelines_from_dicts",
]
