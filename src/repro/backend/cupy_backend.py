"""CuPy GPU backend (optional).

CuPy mirrors the NumPy API closely enough that ``xp`` is the ``cupy`` module
itself and sparse matrices go through ``cupyx.scipy.sparse`` — the same code
path the NumPy backend executes runs unmodified on the GPU.

The import happens lazily inside the constructor so merely *registering* the
backend (or running ``get_backend("auto")``) never requires CUDA; a missing
or broken CuPy install raises :class:`BackendUnavailableError`, which the
registry turns into a graceful fallback.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.backend.base import ArrayBackend, BackendUnavailableError


class CupyBackend(ArrayBackend):
    """Device-memory backend over :mod:`cupy` + :mod:`cupyx.scipy.sparse`."""

    name = "cupy"

    def __init__(self):
        try:
            import cupy
            import cupyx.scipy.sparse as cupy_sparse
        except Exception as exc:  # pragma: no cover - requires CUDA machine
            raise BackendUnavailableError(
                "the 'cupy' backend requires CuPy with a working CUDA runtime "
                "(pip install 'repro-newton-admm[gpu-cupy]')"
            ) from exc
        self._cupy = cupy
        self._sparse = cupy_sparse
        # ``cupy.fuse`` only supports a single reduction per kernel, so the
        # full lse+softmax cannot be one kernel; the elementwise shift+exp
        # stage can be, and is compiled lazily with a composed fallback.
        self._fused_shift_exp = None
        self._fusion_mode = "composed"

    @property
    def xp(self):
        return self._cupy

    def asarray(self, x, dtype=None):
        x = self._cupy.asarray(x, dtype=dtype)
        if x.dtype.kind != "f":
            x = x.astype(self._cupy.float64)
        return x

    def to_numpy(self, x) -> np.ndarray:
        if self.is_sparse(x):
            return np.asarray(x.get().todense())
        return self._cupy.asnumpy(x)

    def asarray_data(self, X):
        if sp.issparse(X):
            return self._sparse.csr_matrix(X.tocsr())
        if self.is_sparse(X):
            return X.tocsr()
        return self.asarray(X)

    def zeros(self, shape, dtype=None):
        return self._cupy.zeros(shape, dtype=dtype or self._cupy.float64)

    def norm(self, v) -> float:
        return float(self._cupy.linalg.norm(v))

    def dot(self, a, b) -> float:
        return float(a @ b)

    def any_nonzero(self, v) -> bool:
        return bool(self._cupy.any(v))

    def is_native(self, x) -> bool:
        return isinstance(x, self._cupy.ndarray) or self.is_sparse(x)

    def is_sparse(self, X) -> bool:
        return self._sparse.issparse(X)

    def is_accelerator(self) -> bool:
        return True  # constructing this backend requires a CUDA runtime

    def fused_lse_probs(self, logits):
        cupy = self._cupy
        if self._fused_shift_exp is None:
            self._build_fused_shift_exp()
        if self._fusion_mode != "partial":
            return super().fused_lse_probs(logits)
        try:
            logits = cupy.atleast_2d(logits)
            m = cupy.maximum(cupy.max(logits, axis=1), 0.0)
            shifted = self._fused_shift_exp(logits, m[:, None])
            denom = cupy.exp(-m) + cupy.sum(shifted, axis=1)
            return m + cupy.log(denom), shifted / denom[:, None]
        except Exception:  # pragma: no cover - device-specific JIT failure
            self._fusion_mode = "composed"
            return super().fused_lse_probs(logits)

    def _build_fused_shift_exp(self):
        cupy = self._cupy
        try:
            @cupy.fuse()
            def shift_exp(logits, m):
                return cupy.exp(logits - m)

            # Compile eagerly so a broken JIT toolchain falls back once, here.
            shift_exp(cupy.zeros((2, 2)), cupy.zeros((2, 1)))
            self._fused_shift_exp = shift_exp
            self._fusion_mode = "partial"
        except Exception:  # pragma: no cover - requires CUDA machine
            self._fused_shift_exp = False
            self._fusion_mode = "composed"

    def fusion_info(self) -> dict:
        if self._fused_shift_exp is None:
            self._build_fused_shift_exp()
        return {"lse_probs": self._fusion_mode}
