"""The default NumPy backend — always available, zero dispatch overhead.

``xp`` is literally the :mod:`numpy` module and ``asarray_data`` keeps scipy
CSR matrices as-is, so code threaded through this backend executes the exact
same BLAS/sparse kernels as the pre-backend library did.
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from repro.backend.base import ArrayBackend


class NumpyBackend(ArrayBackend):
    """Host-memory backend over :mod:`numpy` + :mod:`scipy.sparse`."""

    name = "numpy"

    @property
    def xp(self):
        return np

    def asarray(self, x, dtype=None):
        x = np.asarray(x, dtype=dtype)
        if x.dtype.kind != "f":
            x = x.astype(np.float64)
        return x

    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def asarray_data(self, X):
        if sp.issparse(X):
            return X.tocsr()
        return self.asarray(X)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype or np.float64)

    def norm(self, v) -> float:
        return float(np.linalg.norm(v))

    def dot(self, a, b) -> float:
        return float(a @ b)

    def any_nonzero(self, v) -> bool:
        return bool(np.any(v))

    def is_native(self, x) -> bool:
        return isinstance(x, np.ndarray) or sp.issparse(x)

    def is_sparse(self, X) -> bool:
        return sp.issparse(X)
