"""The array-backend protocol.

Every compute layer of this library (objectives -> linalg -> solvers -> ADMM)
is written against :class:`ArrayBackend` instead of calling ``numpy``
directly.  A backend bundles:

* ``xp`` — a NumPy-compatible array namespace (``numpy`` itself, ``cupy``, or
  an adapter around ``torch``) providing the ufuncs and reductions the hot
  paths use;
* conversion helpers (``asarray`` / ``as_vector`` / ``asarray_data`` /
  ``to_numpy`` / ``to_float``) that move data across the host/device boundary
  exactly once, at API boundaries;
* a :meth:`default_device_model` hook so the simulated cluster's cost
  accounting keys off where the arrays actually live.

Inside hot loops only *array methods and operators* (``@``, ``+``, ``.T``,
``.reshape``, ``.ravel()``, ``.sum(...)`` via ``xp``) are used — these are the
intersection of the NumPy, CuPy and Torch APIs, so a single code path serves
every backend with zero dispatch overhead on the NumPy default (``xp`` *is*
the ``numpy`` module there).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np


class BackendUnavailableError(ImportError):
    """Raised when a requested backend's library is not importable."""


class ArrayBackend(ABC):
    """Abstract device/array backend.

    Concrete implementations: :class:`~repro.backend.numpy_backend.NumpyBackend`
    (always available, zero overhead), CuPy and Torch backends (optional,
    imported lazily), and :class:`~repro.backend.testing.TracingBackend`
    (a NumPy-semantics double that records dispatch for tests).
    """

    #: registry name (``"numpy"``, ``"cupy"``, ``"torch"``, ...)
    name: str = "abstract"

    # -- namespace ---------------------------------------------------------
    @property
    @abstractmethod
    def xp(self) -> Any:
        """NumPy-compatible namespace used for ufuncs and reductions."""

    # -- conversions -------------------------------------------------------
    @abstractmethod
    def asarray(self, x, dtype=None):
        """Convert ``x`` to a native array of this backend (device transfer)."""

    @abstractmethod
    def to_numpy(self, x) -> np.ndarray:
        """Copy a native array back to a host :class:`numpy.ndarray`."""

    @abstractmethod
    def asarray_data(self, X):
        """Convert a design matrix (dense or CSR) to its native representation.

        Dense inputs become 2-D device arrays; scipy CSR inputs stay sparse in
        the backend's CSR format.  The returned object supports ``X @ W``,
        ``X.T @ M``, ``X.shape`` and (for minibatching) row indexing.
        """

    def to_float(self, x) -> float:
        """Python float from a scalar / 0-d array."""
        return float(x)

    def as_vector(self, v, dim: Optional[int] = None, *, name: str = "vector"):
        """Native 1-D floating vector, optionally validated against ``dim``.

        Integer inputs are promoted to the backend's default float; float32 /
        float64 inputs keep their dtype (no silent up- or down-casting).

        An input that is already a native 1-D float vector is returned *as
        the same object* (``ravel`` is only applied to non-1-D inputs).  The
        iterate-identity caches in :mod:`repro.objectives` rely on this: the
        same iterate flowing through a wrapper chain
        (``Regularized -> Counting -> Softmax``) must keep its identity, so
        ``value_and_gradient`` followed by ``hvp`` on one iterate reuses the
        cached logits instead of recomputing them.
        """
        v = self.asarray(v)
        if getattr(v, "ndim", None) != 1:
            v = v.ravel()
        if dim is not None and v.shape[0] != dim:
            raise ValueError(f"{name} has length {v.shape[0]}, expected {dim}")
        return v

    # -- allocation --------------------------------------------------------
    @abstractmethod
    def zeros(self, shape, dtype=None):
        """Native zero-filled array."""

    # -- reductions used outside xp ---------------------------------------
    def norm(self, v) -> float:
        """Euclidean norm as a Python float."""
        return float(self.xp.sqrt((v * v).sum()))

    def dot(self, a, b) -> float:
        """Inner product as a Python float."""
        return float((a * b).sum())

    def any_nonzero(self, v) -> bool:
        """Whether any entry of ``v`` is non-zero."""
        return bool((v != 0).any())

    # -- high-precision reductions (``precision="mixed"``) ------------------
    def dot_hp(self, a, b) -> float:
        """Inner product accumulated in float64 regardless of input dtype.

        The ``precision="mixed"`` pipeline stores vectors in float32 but runs
        the CG recurrence scalars through this method, so the coefficients
        keep ~15 significant digits while the GEMMs stay single-precision.
        """
        return float((a * b).sum(dtype=np.float64))

    def norm_hp(self, v) -> float:
        """Euclidean norm with float64 accumulation (see :meth:`dot_hp`)."""
        return float(np.sqrt((v * v).sum(dtype=np.float64)))

    def colwise_dot(self, A, B, *, high_precision: bool = False):
        """Per-column inner products ``sum(A * B, axis=0)`` of two 2-D arrays.

        The block-CG recurrences need one scalar per right-hand side; this is
        that reduction, kept on the backend (one kernel, no host round-trip
        per column).  ``high_precision`` accumulates in float64 for the
        mixed-precision mode.
        """
        if high_precision:
            return (A * B).sum(axis=0, dtype=np.float64)
        return (A * B).sum(axis=0)

    def promote_fp64(self, x):
        """``x`` as a float64 array (no copy when already float64).

        Used by the mixed-precision softmax to run the log-sum-exp reduction
        in double precision over single-precision logits.
        """
        if getattr(x, "dtype", None) == np.float64:
            return x
        return x.astype(np.float64)

    def demote_fp32(self, x):
        """``x`` as a float32 array (no copy when already float32).

        Inverse of :meth:`promote_fp64`: the mixed-precision softmax computes
        probabilities from float64-promoted logits, then demotes them so the
        backward GEMMs stay single-precision.
        """
        if getattr(x, "dtype", None) == np.float32:
            return x
        return x.astype(np.float32)

    # -- fused kernels ------------------------------------------------------
    def fused_lse_probs(self, logits):
        """Row-wise ``(log_sum_exp, softmax_probabilities)`` in one pass.

        The softmax hot path calls this once per distinct iterate; value,
        gradient and every HVP of that iterate then reuse the outputs.  The
        default implementation is the composed NumPy-reference kernel
        (:func:`repro.objectives.numerics.lse_and_probabilities`), which
        runs on any ``xp`` namespace; accelerator backends may override it
        with a single fused kernel (``torch.compile`` / ``cupy.fuse``) whose
        outputs match the reference up to floating-point reassociation.

        Always computed with the implicit zero reference logit
        (``include_zero=True``) — that is the only variant on the hot path.
        """
        from repro.objectives.numerics import lse_and_probabilities

        return lse_and_probabilities(logits, include_zero=True, xp=self.xp)

    def fusion_info(self) -> dict:
        """How each fusable kernel is implemented on this backend.

        Maps kernel name to ``"fused"`` (single compiled kernel) or
        ``"composed"`` (reference implementation from separate ufuncs).
        ``docs/performance.md`` renders this as the availability matrix.
        """
        return {"lse_probs": "composed"}

    # -- classification ----------------------------------------------------
    @abstractmethod
    def is_native(self, x) -> bool:
        """Whether ``x`` is already an array of this backend (no transfer)."""

    def is_sparse(self, X) -> bool:
        """Whether ``X`` is a sparse matrix in this backend's representation."""
        return False

    def is_accelerator(self) -> bool:
        """Whether this backend's arrays live on an accelerator device.

        ``get_backend("auto")`` only selects backends that report ``True`` —
        an importable but CPU-bound library (e.g. CPU-only torch) must not
        displace the zero-overhead NumPy default.
        """
        return False

    # -- randomness (host-seeded for cross-backend determinism) ------------
    def standard_normal(self, shape, seed=None, *, dtype=None):
        """Standard-normal sample, generated on the host for determinism
        across backends, then transferred.  ``seed`` may be an int or an
        existing :class:`numpy.random.Generator` (passed through)."""
        rng = np.random.default_rng(seed)
        return self.asarray(rng.standard_normal(shape), dtype=dtype)

    def rademacher(self, shape, seed=None, *, dtype=None):
        """±1 sample (Hessian-diagonal probes), host-seeded like
        :meth:`standard_normal`."""
        rng = np.random.default_rng(seed)
        return self.asarray(rng.choice([-1.0, 1.0], size=shape), dtype=dtype)

    # -- cost accounting ---------------------------------------------------
    def default_device_model(self):
        """The :class:`~repro.distributed.device.DeviceModel` matching where
        this backend's arrays live.

        The NumPy default returns the paper's Tesla P100 — the simulation
        stands in for the GPU cluster while computing on the host — whereas
        accelerator backends report the device they actually execute on.
        """
        from repro.distributed.device import tesla_p100

        return tesla_p100()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
