"""The array-backend protocol.

Every compute layer of this library (objectives -> linalg -> solvers -> ADMM)
is written against :class:`ArrayBackend` instead of calling ``numpy``
directly.  A backend bundles:

* ``xp`` — a NumPy-compatible array namespace (``numpy`` itself, ``cupy``, or
  an adapter around ``torch``) providing the ufuncs and reductions the hot
  paths use;
* conversion helpers (``asarray`` / ``as_vector`` / ``asarray_data`` /
  ``to_numpy`` / ``to_float``) that move data across the host/device boundary
  exactly once, at API boundaries;
* a :meth:`default_device_model` hook so the simulated cluster's cost
  accounting keys off where the arrays actually live.

Inside hot loops only *array methods and operators* (``@``, ``+``, ``.T``,
``.reshape``, ``.ravel()``, ``.sum(...)`` via ``xp``) are used — these are the
intersection of the NumPy, CuPy and Torch APIs, so a single code path serves
every backend with zero dispatch overhead on the NumPy default (``xp`` *is*
the ``numpy`` module there).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np


class BackendUnavailableError(ImportError):
    """Raised when a requested backend's library is not importable."""


class ArrayBackend(ABC):
    """Abstract device/array backend.

    Concrete implementations: :class:`~repro.backend.numpy_backend.NumpyBackend`
    (always available, zero overhead), CuPy and Torch backends (optional,
    imported lazily), and :class:`~repro.backend.testing.TracingBackend`
    (a NumPy-semantics double that records dispatch for tests).
    """

    #: registry name (``"numpy"``, ``"cupy"``, ``"torch"``, ...)
    name: str = "abstract"

    # -- namespace ---------------------------------------------------------
    @property
    @abstractmethod
    def xp(self) -> Any:
        """NumPy-compatible namespace used for ufuncs and reductions."""

    # -- conversions -------------------------------------------------------
    @abstractmethod
    def asarray(self, x, dtype=None):
        """Convert ``x`` to a native array of this backend (device transfer)."""

    @abstractmethod
    def to_numpy(self, x) -> np.ndarray:
        """Copy a native array back to a host :class:`numpy.ndarray`."""

    @abstractmethod
    def asarray_data(self, X):
        """Convert a design matrix (dense or CSR) to its native representation.

        Dense inputs become 2-D device arrays; scipy CSR inputs stay sparse in
        the backend's CSR format.  The returned object supports ``X @ W``,
        ``X.T @ M``, ``X.shape`` and (for minibatching) row indexing.
        """

    def to_float(self, x) -> float:
        """Python float from a scalar / 0-d array."""
        return float(x)

    def as_vector(self, v, dim: Optional[int] = None, *, name: str = "vector"):
        """Native 1-D floating vector, optionally validated against ``dim``.

        Integer inputs are promoted to the backend's default float; float32 /
        float64 inputs keep their dtype (no silent up- or down-casting).
        """
        v = self.asarray(v).ravel()
        if dim is not None and v.shape[0] != dim:
            raise ValueError(f"{name} has length {v.shape[0]}, expected {dim}")
        return v

    # -- allocation --------------------------------------------------------
    @abstractmethod
    def zeros(self, shape, dtype=None):
        """Native zero-filled array."""

    # -- reductions used outside xp ---------------------------------------
    def norm(self, v) -> float:
        """Euclidean norm as a Python float."""
        return float(self.xp.sqrt((v * v).sum()))

    def dot(self, a, b) -> float:
        """Inner product as a Python float."""
        return float((a * b).sum())

    def any_nonzero(self, v) -> bool:
        """Whether any entry of ``v`` is non-zero."""
        return bool((v != 0).any())

    # -- classification ----------------------------------------------------
    @abstractmethod
    def is_native(self, x) -> bool:
        """Whether ``x`` is already an array of this backend (no transfer)."""

    def is_sparse(self, X) -> bool:
        """Whether ``X`` is a sparse matrix in this backend's representation."""
        return False

    def is_accelerator(self) -> bool:
        """Whether this backend's arrays live on an accelerator device.

        ``get_backend("auto")`` only selects backends that report ``True`` —
        an importable but CPU-bound library (e.g. CPU-only torch) must not
        displace the zero-overhead NumPy default.
        """
        return False

    # -- randomness (host-seeded for cross-backend determinism) ------------
    def standard_normal(self, shape, seed=None, *, dtype=None):
        """Standard-normal sample, generated on the host for determinism
        across backends, then transferred.  ``seed`` may be an int or an
        existing :class:`numpy.random.Generator` (passed through)."""
        rng = np.random.default_rng(seed)
        return self.asarray(rng.standard_normal(shape), dtype=dtype)

    def rademacher(self, shape, seed=None, *, dtype=None):
        """±1 sample (Hessian-diagonal probes), host-seeded like
        :meth:`standard_normal`."""
        rng = np.random.default_rng(seed)
        return self.asarray(rng.choice([-1.0, 1.0], size=shape), dtype=dtype)

    # -- cost accounting ---------------------------------------------------
    def default_device_model(self):
        """The :class:`~repro.distributed.device.DeviceModel` matching where
        this backend's arrays live.

        The NumPy default returns the paper's Tesla P100 — the simulation
        stands in for the GPU cluster while computing on the host — whereas
        accelerator backends report the device they actually execute on.
        """
        from repro.distributed.device import tesla_p100

        return tesla_p100()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
