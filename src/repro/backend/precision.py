"""Precision modes for the compute pipeline.

The paper's kernels run fastest in single precision, but naive fp32
accumulation loses enough bits in the log-sum-exp and CG dot products to
perturb convergence.  Following the GPU-accelerated primal-learning recipe
(PAPERS.md), the library therefore distinguishes three modes:

``None`` (follow-data)
    The historical behaviour: the design matrix keeps whatever floating
    dtype it arrived with (float64 for fresh NumPy data) and every reduction
    runs in that dtype.  This is the bit-reproducible default.
``"fp32"``
    Host design matrices are cast to float32 at objective construction, so
    storage, GEMMs *and* reductions all run in single precision.
``"mixed"``
    Storage and GEMMs run in float32, but the log-sum-exp of the softmax and
    the dot products / norms inside CG accumulate in float64 (see
    :meth:`~repro.backend.base.ArrayBackend.dot_hp`).  This keeps the GEMM
    speed of fp32 while restoring the reduction accuracy that drives
    convergence — the documented tolerance is that a mixed-mode solve reaches
    the same final objective as fp64 within ``5e-4`` relative and the same
    final iterate within ``2e-3`` relative L2 (see ``docs/performance.md``;
    asserted in ``tests/test_precision.py``).
``"fp64"``
    Explicitly promote host data to float64 (useful to force the reference
    behaviour on a float32 dataset).

A session-wide default (the CLI's ``--precision``) is resolved by
:class:`~repro.distributed.cluster.SimulatedCluster` and the objective
constructors whenever their ``precision`` argument is ``None``, mirroring the
``set_default_engine`` / ``set_default_faults`` pattern of the harness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: modes accepted by ``precision=`` arguments (``None`` = follow the data)
PRECISION_MODES = ("fp64", "fp32", "mixed")

_DEFAULT_PRECISION: Optional[str] = None


def set_default_precision(mode: Optional[str]) -> Optional[str]:
    """Set the session-wide default precision mode (the CLI's ``--precision``).

    ``None`` clears the default (follow-data behaviour).  Objectives and
    clusters constructed with ``precision=None`` resolve this value.
    """
    global _DEFAULT_PRECISION
    if mode is not None and mode not in PRECISION_MODES:
        raise ValueError(
            f"precision must be one of {PRECISION_MODES} or None, got {mode!r}"
        )
    _DEFAULT_PRECISION = mode
    return _DEFAULT_PRECISION


def default_precision() -> Optional[str]:
    return _DEFAULT_PRECISION


def resolve_precision(mode: Optional[str]) -> Optional[str]:
    """Validate ``mode``, resolving ``None`` to the session default."""
    if mode is None:
        return _DEFAULT_PRECISION
    if mode not in PRECISION_MODES:
        raise ValueError(
            f"precision must be one of {PRECISION_MODES} or None, got {mode!r}"
        )
    return mode


def storage_dtype(mode: Optional[str]):
    """The host storage dtype a precision mode implies (``None`` = keep)."""
    if mode in ("fp32", "mixed"):
        return np.float32
    if mode == "fp64":
        return np.float64
    return None


def apply_storage_precision(X, mode: Optional[str]):
    """Cast a *host* design matrix (dense ndarray or scipy sparse) to the
    storage dtype of ``mode``.

    Backend-native device arrays are returned unchanged — they were loaded at
    a deliberate dtype and a silent device-side cast would duplicate the
    matrix; pass data at the target dtype instead.
    """
    dtype = storage_dtype(mode)
    if dtype is None:
        return X
    import scipy.sparse as sp

    if isinstance(X, np.ndarray) or sp.issparse(X):
        if X.dtype != dtype:
            return X.astype(dtype)
    return X


def reduction_dtype(mode: Optional[str]):
    """The accumulation dtype for sensitive reductions (lse, CG dots)."""
    if mode == "mixed":
        return np.float64
    return None
