"""Pluggable array backends (NumPy default; optional CuPy / Torch).

Public surface::

    from repro.backend import get_backend, set_default_backend

    backend = get_backend("auto")          # best available accelerator
    xp = backend.xp                        # numpy-compatible namespace

See :mod:`repro.backend.base` for the protocol and
:mod:`repro.backend.registry` for resolution rules.
"""

from repro.backend.base import ArrayBackend, BackendUnavailableError
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    AUTO_ORDER,
    BackendLike,
    available_backends,
    backend_available,
    default_backend,
    get_backend,
    infer_backend,
    register_backend,
    registered_backends,
    set_default_backend,
)
from repro.backend.precision import (
    PRECISION_MODES,
    apply_storage_precision,
    default_precision,
    reduction_dtype,
    resolve_precision,
    set_default_precision,
    storage_dtype,
)
from repro.backend.ops import (
    copy_array,
    ensure_float_array,
    host_matrix,
    is_float_dtype,
    to_host,
    vdot,
    vector_norm,
)

__all__ = [
    "ArrayBackend",
    "BackendLike",
    "BackendUnavailableError",
    "NumpyBackend",
    "AUTO_ORDER",
    "available_backends",
    "backend_available",
    "default_backend",
    "get_backend",
    "infer_backend",
    "register_backend",
    "registered_backends",
    "set_default_backend",
    "PRECISION_MODES",
    "apply_storage_precision",
    "default_precision",
    "reduction_dtype",
    "resolve_precision",
    "set_default_precision",
    "storage_dtype",
    "copy_array",
    "ensure_float_array",
    "host_matrix",
    "is_float_dtype",
    "to_host",
    "vdot",
    "vector_norm",
]
