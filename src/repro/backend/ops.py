"""Backend-generic scalar reductions for code without an explicit backend.

Helpers for layers that receive vectors of unknown provenance (penalty
policies, trace recording): the owning backend is inferred from the array
type, so NumPy inputs take the exact pre-backend code path while device
arrays avoid a host round-trip.
"""

from __future__ import annotations

import numpy as np

from repro.backend.registry import infer_backend


def vector_norm(v) -> float:
    """Euclidean norm of ``v`` on whichever backend owns it."""
    return infer_backend(v).norm(v)


def vdot(a, b) -> float:
    """Inner product ``a @ b`` on whichever backend owns ``a``."""
    return infer_backend(a).dot(a, b)


def to_host(v):
    """Host NumPy copy of ``v`` (identity for NumPy arrays)."""
    return infer_backend(v).to_numpy(v)


def host_matrix(X):
    """Host representation of a design matrix for host-only helpers.

    CuPy arrays and cupyx sparse matrices expose ``.get()`` and come back as
    NumPy / scipy objects; host inputs are returned unchanged.  (Torch's
    sparse wrapper is handled by its backend's ``to_numpy``.)
    """
    if hasattr(X, "get"):
        return X.get()
    return X


def copy_array(v):
    """Backend-preserving copy (``.copy()`` for numpy/cupy, ``.clone()`` for torch)."""
    return v.copy() if hasattr(v, "copy") else v.clone()


def is_float_dtype(dtype) -> bool:
    """Whether ``dtype`` is a floating dtype, for NumPy and torch dtypes alike."""
    kind = getattr(dtype, "kind", None)
    if kind is not None:
        return kind == "f"
    # torch dtypes expose is_floating_point
    return bool(getattr(dtype, "is_floating_point", False))


def ensure_float_array(x, dtype=None):
    """Coerce host inputs to a floating array; pass device floats through.

    Untyped inputs (lists, scalars) become ``np.asarray(x, dtype or float64)``;
    NumPy integer/bool arrays are promoted the same way; arrays that already
    carry a floating dtype — including cupy/torch device arrays — are returned
    untouched so no host round-trip or precision change ever happens to them.
    A backend-specific ``dtype`` (e.g. ``torch.float32``) cannot seed NumPy
    coercion and falls back to float64 for host inputs.
    """
    if dtype is not None:
        try:
            dtype = np.dtype(dtype)
        except TypeError:
            dtype = None
    if not hasattr(x, "dtype"):
        return np.asarray(x, dtype=dtype or np.float64)
    if isinstance(x, np.ndarray) and x.dtype.kind != "f":
        return x.astype(dtype or np.float64)
    return x
