"""PyTorch backend (optional, CPU or CUDA).

Torch's functional API differs from NumPy's in small but fatal ways for
generic code (``dim``/``keepdim`` keywords, ``Tensor.max`` returning a
``(values, indices)`` pair), so this backend exposes ``xp`` as a thin adapter
implementing exactly the NumPy-style subset the hot paths call.  Dense design
matrices become device tensors; scipy CSR matrices become a pair of sparse-CSR
tensors (the matrix and its transpose, both built once at load time) wrapped
so that ``X @ W`` and ``X.T @ M`` work like their scipy counterparts.

Like the CuPy backend, importing torch is deferred to construction time and a
missing install raises :class:`BackendUnavailableError`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.backend.base import ArrayBackend, BackendUnavailableError


class _TorchNamespace:
    """NumPy-flavoured adapter over :mod:`torch` (the subset the library uses)."""

    def __init__(self, torch, device):
        self._torch = torch
        self._device = device

    def asarray(self, x, dtype=None):
        return self._torch.as_tensor(x, dtype=dtype, device=self._device)

    def atleast_2d(self, x):
        return self._torch.atleast_2d(x)

    def exp(self, x):
        return self._torch.exp(x)

    def log(self, x):
        return self._torch.log(x)

    def log1p(self, x):
        return self._torch.log1p(x)

    def sqrt(self, x):
        return self._torch.sqrt(x)

    def abs(self, x):
        return self._torch.abs(x)

    def sign(self, x):
        return self._torch.sign(x)

    def maximum(self, x, y):
        if not self._torch.is_tensor(y):
            y = self._torch.as_tensor(y, dtype=x.dtype, device=x.device)
        if not self._torch.is_tensor(x):
            x = self._torch.as_tensor(x, dtype=y.dtype, device=y.device)
        return self._torch.maximum(x, y)

    def clip(self, x, lo, hi):
        return self._torch.clamp(x, min=lo, max=hi)

    def where(self, cond, a, b):
        return self._torch.where(cond, a, b)

    def isfinite(self, x):
        return self._torch.isfinite(x)

    def sum(self, x, axis=None, keepdims=False):
        if axis is None:
            return x.sum()
        return x.sum(dim=axis, keepdim=keepdims)

    def max(self, x, axis=None):
        if axis is None:
            return x.max()
        return self._torch.amax(x, dim=axis)

    def mean(self, x, axis=None):
        if axis is None:
            return x.mean()
        return x.mean(dim=axis)

    def argmax(self, x, axis=None):
        return self._torch.argmax(x, dim=axis)

    def hstack(self, arrays):
        return self._torch.hstack(list(arrays))

    def zeros_like(self, x):
        return self._torch.zeros_like(x)


class _TorchCSR:
    """Sparse design matrix for the torch backend.

    Holds the CSR tensor and its transpose (also CSR) so both ``X @ W`` and
    ``X.T @ M`` are single sparse-dense matmuls with no per-call conversion.
    """

    def __init__(self, torch, csr, csr_t):
        self._torch = torch
        self._csr = csr
        self._csr_t = csr_t
        self.shape = tuple(csr.shape)
        #: values dtype, exposed so initial_point()/aux caches can follow it
        self.dtype = csr.dtype

    def __matmul__(self, other):
        if other.ndim == 1:
            return (self._csr @ other.reshape(-1, 1)).reshape(-1)
        return self._csr @ other

    @property
    def T(self) -> "_TorchCSR":
        return _TorchCSR(self._torch, self._csr_t, self._csr)


class TorchBackend(ArrayBackend):
    """Backend over :mod:`torch` tensors on ``device`` (default: CUDA if present)."""

    name = "torch"

    def __init__(self, device=None):
        try:
            import torch
        except Exception as exc:
            raise BackendUnavailableError(
                "the 'torch' backend requires PyTorch "
                "(pip install 'repro-newton-admm[gpu-torch]')"
            ) from exc
        self._torch = torch
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(device)
        self._xp = _TorchNamespace(torch, self.device)
        # Fused log-sum-exp + softmax, JIT-compiled on first use.  Compilation
        # is attempted lazily so environments without a working inductor
        # toolchain (missing compiler, unsupported device) silently keep the
        # composed reference kernel.
        self._fused_lse_probs = None
        self._fusion_mode = "composed"

    @property
    def xp(self):
        return self._xp

    def asarray(self, x, dtype=None):
        torch = self._torch
        t = torch.as_tensor(
            np.asarray(x) if not torch.is_tensor(x) else x,
            dtype=dtype,
            device=self.device,
        )
        if not t.is_floating_point():
            t = t.to(torch.float64)
        return t

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, _TorchCSR):
            x = x._csr.to_dense()
        return x.detach().cpu().numpy()

    def asarray_data(self, X):
        torch = self._torch
        if isinstance(X, _TorchCSR):
            return X
        if sp.issparse(X):
            csr = X.tocsr()
            csr_t = csr.T.tocsr()
            return _TorchCSR(
                torch,
                self._to_sparse_csr(csr),
                self._to_sparse_csr(csr_t),
            )
        return self.asarray(X)

    def _to_sparse_csr(self, csr):
        torch = self._torch
        # Preserve the host matrix's floating dtype (float32 stays float32);
        # only non-float data is promoted.
        data = csr.data if csr.data.dtype.kind == "f" else csr.data.astype(np.float64)
        return torch.sparse_csr_tensor(
            torch.as_tensor(csr.indptr, dtype=torch.int64),
            torch.as_tensor(csr.indices, dtype=torch.int64),
            torch.as_tensor(data),
            size=csr.shape,
            device=self.device,
        )

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(
            shape, dtype=dtype or self._torch.float64, device=self.device
        )

    def norm(self, v) -> float:
        return float(self._torch.linalg.vector_norm(v))

    def dot(self, a, b) -> float:
        return float((a * b).sum())

    def dot_hp(self, a, b) -> float:
        # ``Tensor.sum`` takes a torch dtype, not a NumPy one.
        return float((a * b).sum(dtype=self._torch.float64))

    def norm_hp(self, v) -> float:
        return float((v * v).sum(dtype=self._torch.float64).sqrt())

    def colwise_dot(self, A, B, *, high_precision: bool = False):
        if high_precision:
            return (A * B).sum(dim=0, dtype=self._torch.float64)
        return (A * B).sum(dim=0)

    def promote_fp64(self, x):
        return x if x.dtype == self._torch.float64 else x.double()

    def demote_fp32(self, x):
        return x if x.dtype == self._torch.float32 else x.float()

    def fused_lse_probs(self, logits):
        if self._fused_lse_probs is None:
            self._fused_lse_probs = self._build_fused_lse_probs()
        try:
            return self._fused_lse_probs(logits)
        except Exception:
            # A compiled kernel can fail at run time on shapes/devices the
            # trace did not cover; drop to the composed path permanently.
            self._fused_lse_probs = self._composed_lse_probs
            self._fusion_mode = "composed"
            return self._composed_lse_probs(logits)

    def _composed_lse_probs(self, logits):
        return super().fused_lse_probs(logits)

    def _build_fused_lse_probs(self):
        torch = self._torch

        def lse_probs(logits):
            m = torch.clamp(torch.amax(logits, dim=1), min=0.0)
            shifted = torch.exp(logits - m[:, None])
            denom = torch.exp(-m) + shifted.sum(dim=1)
            return m + torch.log(denom), shifted / denom[:, None]

        try:
            compiled = torch.compile(lse_probs)
            # Trigger compilation now so failures fall back immediately
            # instead of on the first hot-path call.
            probe = torch.zeros((2, 2), device=self.device)
            compiled(probe)
            self._fusion_mode = "fused"
            return compiled
        except Exception:
            self._fusion_mode = "composed"
            return self._composed_lse_probs

    def fusion_info(self) -> dict:
        if self._fused_lse_probs is None:
            self._fused_lse_probs = self._build_fused_lse_probs()
        return {"lse_probs": self._fusion_mode}

    def any_nonzero(self, v) -> bool:
        return bool((v != 0).any())

    def is_native(self, x) -> bool:
        return self._torch.is_tensor(x) or isinstance(x, _TorchCSR)

    def is_sparse(self, X) -> bool:
        return isinstance(X, _TorchCSR) or (
            self._torch.is_tensor(X) and X.layout != self._torch.strided
        )

    def is_accelerator(self) -> bool:
        return self.device.type == "cuda"

    def default_device_model(self):
        from repro.distributed.device import cpu_xeon_gold, tesla_p100

        return tesla_p100() if self.device.type == "cuda" else cpu_xeon_gold()
