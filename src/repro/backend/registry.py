"""Backend registry and resolution.

``get_backend`` accepts a name (``"numpy"``, ``"cupy"``, ``"torch"``,
``"auto"``), an existing :class:`ArrayBackend` instance, or ``None`` (the
session default, settable with :func:`set_default_backend` — this is what the
CLI's ``--backend`` flag drives).  Optional backends import lazily;
``"auto"`` probes accelerators in preference order and silently falls back to
NumPy, while asking for an unavailable backend *by name* raises
:class:`BackendUnavailableError` with an actionable message.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Union

from repro.backend.base import ArrayBackend, BackendUnavailableError
from repro.backend.numpy_backend import NumpyBackend

BackendLike = Union[str, ArrayBackend, None]

#: name -> zero-argument factory; extend with :func:`register_backend`
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}  # repro-lint: ignore[RPR003] populated at import, identical in every process

#: probe order for ``get_backend("auto")``
AUTO_ORDER = ("cupy", "torch", "numpy")

_lock = threading.Lock()
_instances: Dict[str, ArrayBackend] = {}  # repro-lint: ignore[RPR003] per-process instance cache by design
_default_name = "numpy"


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    with _lock:
        _FACTORIES[name] = factory
        _instances.pop(name, None)


def _builtin_factories() -> None:
    from repro.backend.cupy_backend import CupyBackend
    from repro.backend.torch_backend import TorchBackend

    _FACTORIES.setdefault("numpy", NumpyBackend)
    _FACTORIES.setdefault("cupy", CupyBackend)
    _FACTORIES.setdefault("torch", TorchBackend)


_builtin_factories()


def registered_backends() -> tuple:
    """Names every ``get_backend`` call may resolve (availability not probed)."""
    return tuple(sorted(_FACTORIES))


def backend_available(name: str) -> bool:
    """Whether ``name`` can actually be constructed (imports its library)."""
    try:
        get_backend(name)
    except (BackendUnavailableError, KeyError):
        return False
    return True


def available_backends() -> Dict[str, bool]:
    """Map of registered backend name -> constructable right now."""
    return {name: backend_available(name) for name in registered_backends()}


def get_backend(spec: BackendLike = None) -> ArrayBackend:
    """Resolve ``spec`` to a (cached) :class:`ArrayBackend` instance.

    Parameters
    ----------
    spec:
        ``None`` (session default), ``"auto"`` (best available accelerator,
        NumPy fallback), a registered name, or an instance (returned as-is).
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        spec = _default_name
    if spec == "auto":
        for name in AUTO_ORDER:
            if name == "numpy":
                break
            try:
                candidate = get_backend(name)
            except BackendUnavailableError:
                continue
            # Only a real accelerator displaces the zero-overhead NumPy
            # default (CPU-only torch imports fine but is not one).
            if candidate.is_accelerator():
                return candidate
        return get_backend("numpy")
    with _lock:
        if spec in _instances:
            return _instances[spec]
        if spec not in _FACTORIES:
            raise KeyError(
                f"unknown backend {spec!r}; registered: {sorted(_FACTORIES)}"
            )
        backend = _FACTORIES[spec]()
        _instances[spec] = backend
        return backend


def set_default_backend(spec: BackendLike) -> ArrayBackend:
    """Set the session default returned by ``get_backend(None)``.

    Accepts the same specs as :func:`get_backend` (including ``"auto"``) and
    returns the resolved backend.  Used by the CLI's ``--backend`` flag so the
    choice reaches every cluster/objective built afterwards without threading
    it through each experiment driver.
    """
    global _default_name
    backend = get_backend(spec if spec is not None else "numpy")
    with _lock:
        _instances.setdefault(backend.name, backend)
        _default_name = backend.name
    return backend


def default_backend() -> ArrayBackend:
    """The current session default backend."""
    return get_backend(None)


def infer_backend(array) -> ArrayBackend:
    """Best-effort backend owning ``array`` (NumPy when in doubt).

    Detection is by type module, so it never imports an optional library that
    is not already loaded.
    """
    module = type(array).__module__ or ""
    root = module.split(".", 1)[0]
    if root in ("cupy", "cupyx"):
        return get_backend("cupy")
    if root == "torch" or module.startswith("repro.backend.torch_backend"):
        return get_backend("torch")
    return get_backend("numpy")
