"""Test-double backend exercising the dispatch seam without GPU libraries.

:class:`TracingBackend` computes with NumPy semantics (so results are
bit-identical to the default backend) but routes every ``xp`` namespace call
and every conversion through counting proxies.  Parity tests assert both that
the numbers match the NumPy reference *and* that the code under test actually
dispatched through the backend — i.e. no stray ``np.*`` call bypassed the
seam on the hot path.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

import numpy as np

from repro.backend.numpy_backend import NumpyBackend


class _TracingNamespace:
    """Attribute proxy over :mod:`numpy` that counts function calls."""

    def __init__(self, calls: Counter):
        self._calls = calls

    def __getattr__(self, name: str) -> Any:
        attr = getattr(np, name)
        if not callable(attr):
            return attr
        calls = self._calls

        def traced(*args, **kwargs):
            calls[name] += 1
            return attr(*args, **kwargs)

        traced.__name__ = name
        return traced


class TracingBackend(NumpyBackend):
    """NumPy-identical backend that records which operations it served.

    Attributes
    ----------
    calls:
        ``Counter`` of ``xp.<op>`` invocations plus the conversion helpers
        (``asarray``, ``as_vector``, ``asarray_data``, ``zeros``, ``norm``,
        ``dot``, ``to_numpy`` — the device-to-host transfer — and the fused /
        high-precision kernels ``fused_lse_probs``, ``dot_hp``, ``norm_hp``,
        ``colwise_dot``).  The fused kernel's *internal* ufunc calls are also
        traced (its reference implementation runs on this namespace), so op
        budgets of fused vs. composed paths are directly comparable.
    """

    name = "tracing"

    def __init__(self):
        self.calls: Counter = Counter()
        self._xp = _TracingNamespace(self.calls)

    @property
    def xp(self):
        return self._xp

    def reset(self) -> None:
        self.calls.clear()

    def total_calls(self) -> int:
        return int(sum(self.calls.values()))

    def asarray(self, x, dtype=None):
        self.calls["asarray"] += 1
        return super().asarray(x, dtype=dtype)

    def asarray_data(self, X):
        self.calls["asarray_data"] += 1
        return super().asarray_data(X)

    def zeros(self, shape, dtype=None):
        self.calls["zeros"] += 1
        return super().zeros(shape, dtype=dtype)

    def norm(self, v) -> float:
        self.calls["norm"] += 1
        return super().norm(v)

    def dot(self, a, b) -> float:
        self.calls["dot"] += 1
        return super().dot(a, b)

    def to_numpy(self, x):
        self.calls["to_numpy"] += 1
        return super().to_numpy(x)

    def dot_hp(self, a, b) -> float:
        self.calls["dot_hp"] += 1
        return super().dot_hp(a, b)

    def norm_hp(self, v) -> float:
        self.calls["norm_hp"] += 1
        return super().norm_hp(v)

    def colwise_dot(self, A, B, *, high_precision: bool = False):
        self.calls["colwise_dot"] += 1
        return super().colwise_dot(A, B, high_precision=high_precision)

    def fused_lse_probs(self, logits):
        self.calls["fused_lse_probs"] += 1
        return super().fused_lse_probs(logits)
