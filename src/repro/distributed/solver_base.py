"""Base class shared by all distributed solvers (Newton-ADMM and baselines).

A distributed solver owns hyper-parameters only; all problem state lives on a
:class:`~repro.distributed.cluster.SimulatedCluster`.  The base class runs the
outer loop, keeps the per-epoch :class:`~repro.metrics.traces.RunTrace`
(objective, accuracy, modelled/wall time, communication rounds), and leaves
two hooks to subclasses: :meth:`_initialize` plus *one of*

- :meth:`_plan_epoch` — the declarative hook every synchronous solver uses:
  return a :class:`~repro.distributed.schedule.RoundPlan` describing the
  epoch's round structure; the base class executes it through
  :func:`~repro.distributed.schedule.execute_plan` (which checks the declared
  communication-round count against what actually ran) and records the
  schedule into ``trace.info["schedule"]``;
- :meth:`_epoch` — the imperative hook, overridden only by the asynchronous
  solvers whose schedules *emerge* from the engine's event queue and cannot
  be declared as a static plan.

Reporting evaluations (global objective, accuracies) are performed outside the
cluster's accounting, so they do not pollute the modelled epoch times — the
paper's timings likewise exclude evaluation.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from typing import Callable, List, Optional

import numpy as np

from repro.backend import copy_array
from repro.datasets.base import ClassificationDataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.engine import timelines_dict
from repro.distributed.faults import FAULT_POLICIES
from repro.distributed.schedule import RoundPlan, execute_plan
from repro.metrics.classification import accuracy
from repro.metrics.timeline import timeline_summary
from repro.metrics.traces import EpochRecord, RunTrace
from repro.objectives.base import RegularizedObjective
from repro.utils.validation import check_positive


class DistributedSolver(ABC):
    """Common outer loop for distributed optimization methods.

    Parameters
    ----------
    lam:
        L2 regularization strength (the paper's lambda).
    max_epochs:
        Number of outer iterations.
    evaluate_every:
        Record the trace every this many epochs (1 = every epoch).
    record_accuracy:
        Also compute train/test accuracy at every recorded epoch.
    tol_grad:
        Optional early stop when the global gradient norm falls below this.
    on_failure:
        Declared reaction of this solver's round plans to a worker lost under
        an injected :class:`~repro.distributed.faults.FailureModel`:
        ``"raise"`` (default) aborts with a structured
        :class:`~repro.distributed.faults.WorkerLostError`, ``"stall"`` idles
        the cluster until the worker restarts, ``"degrade"`` proceeds with
        the survivors (only meaningful for plans written to reweight).
        Asynchronous solvers ignore it — their quorum schedules always ride
        through with the surviving workers.
    """

    #: human-readable method name used in traces and reports
    name: str = "distributed"

    #: whether this solver's schedule can run replicated across real OS
    #: processes (``engine="process"``).  True for every declarative
    #: synchronous solver — identical replicas reach identical RoundPlans
    #: and meet at real collectives.  Asynchronous solvers set this False:
    #: their schedules emerge from a single shared event queue that has no
    #: SPMD equivalent, so they fall back to the in-process event engine.
    supports_process_engine: bool = True

    #: set by subclasses (from inside :meth:`_epoch`) to stop the outer loop
    #: early, e.g. when ADMM primal/dual residuals fall below tolerance
    _stop_requested: bool = False

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
        on_failure: str = "raise",
    ):
        self.lam = check_positive(lam, name="lam", strict=False)
        if max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {max_epochs}")
        if evaluate_every < 1:
            raise ValueError(f"evaluate_every must be >= 1, got {evaluate_every}")
        if on_failure not in FAULT_POLICIES:
            raise ValueError(
                f"on_failure must be one of {FAULT_POLICIES}, got {on_failure!r}"
            )
        self.max_epochs = int(max_epochs)
        self.evaluate_every = int(evaluate_every)
        self.record_accuracy = bool(record_accuracy)
        self.tol_grad = float(tol_grad)
        self.on_failure = on_failure
        self._schedule_log: List[dict] = []
        self._schedule_declared: Optional[dict] = None

    # -- subclass hooks ------------------------------------------------------
    @abstractmethod
    def _initialize(self, cluster: SimulatedCluster, w0: np.ndarray) -> None:
        """Set up per-worker state before the first epoch."""

    def _plan_epoch(self, cluster: SimulatedCluster, epoch: int) -> RoundPlan:
        """Compile one outer iteration into a :class:`RoundPlan`.

        Synchronous solvers implement this; the base :meth:`_epoch` executes
        the plan, verifies its declared communication-round count against what
        the engine actually ran, and logs the schedule for the trace.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement _plan_epoch() "
            "(or override _epoch() for event-driven schedules)"
        )

    def _epoch(self, cluster: SimulatedCluster, epoch: int) -> np.ndarray:
        """Run one outer iteration and return the current global iterate.

        The default implementation compiles the epoch with :meth:`_plan_epoch`
        and executes the plan; asynchronous solvers override it to schedule
        directly on the engine's event queue.
        """
        plan = self._plan_epoch(cluster, epoch)
        if plan.on_failure == "raise" and self.on_failure != "raise":
            # The solver-declared policy lands in the plan; plans that set an
            # explicit non-default policy of their own keep it.
            plan.on_failure = self.on_failure
        execution = execute_plan(cluster, plan)
        if self._schedule_declared is None:
            self._schedule_declared = plan.describe()
        self._schedule_log.append({"epoch": epoch, **execution.summary()})
        return execution.result

    # -- outer loop -----------------------------------------------------------
    def fit(
        self,
        cluster: SimulatedCluster,
        *,
        test: Optional[ClassificationDataset] = None,
        w0: Optional[np.ndarray] = None,
        reset_cluster: bool = True,
        on_record: Optional[Callable[[EpochRecord], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> RunTrace:
        """Run the solver on ``cluster`` and return the per-epoch trace.

        ``on_record`` is invoked with every :class:`EpochRecord` right after
        it is appended to the trace (the training-job API streams progress
        through it); ``should_stop`` is polled before each epoch and ends the
        run cooperatively when it returns True (the trace records
        ``info["stopped"] = "requested"``).  On the process engine the fit
        runs in worker processes, so ``should_stop`` cannot interrupt it and
        ``on_record`` is replayed once the trace returns.
        """
        runtime = getattr(cluster, "process_runtime", None)
        if runtime is not None and runtime.should_dispatch(self):
            # engine="process": hand the fit to the process runtime, which
            # replicates this solver across real worker processes and re-enters
            # fit() on every rank with the transport active.
            trace = runtime.run_fit(
                self, cluster, test=test, w0=w0, reset_cluster=reset_cluster
            )
            if on_record is not None:
                for record in trace.records:
                    on_record(record)
            return trace
        if reset_cluster:
            cluster.reset_accounting()
        backend = cluster.backend
        global_objective = cluster.global_objective(self.lam)
        if w0 is None:
            # Zeros on the cluster backend, in the data's floating dtype.
            w0 = global_objective.initial_point()
        else:
            w0 = copy_array(backend.as_vector(w0, cluster.dim, name="w0"))
        global_loss = global_objective.loss
        trace = RunTrace(
            method=self.name,
            dataset=cluster.train.name,
            n_workers=cluster.n_workers,
            info={
                "lam": self.lam,
                "max_epochs": self.max_epochs,
                "cluster": cluster.describe(),
                "hyperparameters": self.hyperparameters(),
            },
        )

        cluster.wall.start()
        self._stop_requested = False
        self._schedule_log: List[dict] = []
        self._schedule_declared: Optional[dict] = None
        epoch_boundaries: List[List[float]] = []
        self._initialize(cluster, w0)
        w = w0

        for epoch in range(1, self.max_epochs + 1):
            if should_stop is not None and should_stop():
                trace.info["stopped"] = "requested"
                break
            w = self._epoch(cluster, epoch)
            # Per-worker local clocks at the epoch boundary; lets the Gantt
            # export slice a single epoch out of the cumulative timelines.
            epoch_boundaries.append(
                [tl.t for tl in cluster.engine.timelines]
            )
            if (
                epoch % self.evaluate_every != 0
                and epoch != self.max_epochs
                and not self._stop_requested
            ):
                continue
            record = self._make_record(
                epoch, w, cluster, global_objective, global_loss, test
            )
            trace.records.append(record)
            if on_record is not None:
                on_record(record)
            if self.tol_grad > 0 and record.grad_norm <= self.tol_grad:
                break
            if self._stop_requested:
                break

        cluster.wall.stop()
        trace.final_w = np.asarray(backend.to_numpy(w), dtype=np.float64).copy()
        trace.info["total_flops"] = cluster.total_flops()
        trace.info["communication"] = {
            "rounds": cluster.comm.log.n_rounds,
            "collectives": cluster.comm.log.n_collectives,
            "bytes": cluster.comm.log.bytes_transferred,
        }
        if self._schedule_log:
            trace.info["schedule"] = {
                "declared": self._schedule_declared,
                "epochs": self._schedule_log,
            }
        fault_state = getattr(cluster, "fault_state", None)
        if fault_state is not None:
            # Permanently lost workers get their open downtime drawn so the
            # Gantt chart shows them down to the end of the run.
            fault_state.close_open_downtime(cluster.engine, cluster.clock.time)
            if fault_state.events:
                trace.info["faults"] = {
                    "model": cluster.faults.describe(),
                    "events": [dict(e) for e in fault_state.events],
                }
        self._attach_timelines(trace, cluster, epoch_boundaries)
        return trace

    @staticmethod
    def _attach_timelines(
        trace: RunTrace,
        cluster: SimulatedCluster,
        epoch_boundaries: Optional[List[List[float]]] = None,
    ) -> None:
        """Record per-worker busy/wait/comm timelines when the engine saw any.

        Event-mode synchronous runs and asynchronous solvers (which always
        schedule through the engine) populate these; lock-step synchronous
        runs leave the timelines empty and the trace unchanged.  Alongside the
        cumulative timelines, the per-worker clocks at every epoch boundary
        are stored so ``plot_gantt(trace, epoch=k)`` can render one epoch.
        """
        timelines = cluster.engine.timelines
        if not any(tl.segments for tl in timelines):
            return
        trace.info["timelines"] = timelines_dict(timelines)
        trace.info["timeline_summary"] = timeline_summary(timelines)
        if epoch_boundaries:
            trace.info["timeline_epochs"] = {
                "boundaries": [list(b) for b in epoch_boundaries]
            }

    # -- helpers -------------------------------------------------------
    def _make_record(
        self,
        epoch: int,
        w: np.ndarray,
        cluster: SimulatedCluster,
        global_objective: RegularizedObjective,
        global_loss,
        test: Optional[ClassificationDataset],
    ) -> EpochRecord:
        value, grad = global_objective.value_and_gradient(
            global_objective.backend.as_vector(w, global_objective.dim, name="w")
        )
        train_acc = float("nan")
        test_acc = float("nan")
        if self.record_accuracy and hasattr(global_loss, "predict"):
            train_acc = accuracy(cluster.train.y, global_loss.predict(w))
            if test is not None:
                test_acc = accuracy(test.y, global_loss.predict(w, test.X))
        return EpochRecord(
            epoch=epoch,
            objective=float(value),
            grad_norm=global_objective.backend.norm(grad),
            train_accuracy=train_acc,
            test_accuracy=test_acc,
            modelled_time=cluster.clock.time,
            compute_time=cluster.clock.category("compute"),
            comm_time=cluster.clock.category("communication"),
            wall_time=cluster.wall.elapsed,
            comm_rounds=cluster.comm.log.n_rounds,
            extras=self._epoch_extras(cluster),
        )

    def _epoch_extras(self, cluster: SimulatedCluster) -> dict:
        """Method-specific diagnostics added to every epoch record."""
        return {}

    def hyperparameters(self) -> dict:
        """Serializable hyper-parameter dictionary (for run provenance).

        Underscore-prefixed attributes are run state (clocks, versions,
        counters), not hyper-parameters, and are excluded.  Scalars and
        ``None`` pass through unchanged; everything else (tuples, lists,
        callables, RNGs) is serialized via ``repr`` so no hyper-parameter is
        silently dropped from the provenance record.
        """
        out = {}
        for k, v in vars(self).items():
            if k.startswith("_"):
                continue
            if v is None or isinstance(v, (int, float, str, bool)):
                out[k] = v
            else:
                # Memory addresses (default object/Generator reprs) would
                # make the provenance of two identical runs differ.
                out[k] = re.sub(r" at 0x[0-9a-fA-F]+", "", repr(v))
        return out
