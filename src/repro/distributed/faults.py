"""Fault injection: worker crashes, restarts, network partitions, correlated
failures and checkpointed recovery as first-class engine events.

The straggler model (:mod:`repro.distributed.stragglers`) can only slow a
worker down; this module can *lose* one.  A :class:`FailureModel` attached to
a :class:`~repro.distributed.cluster.SimulatedCluster` describes when workers
crash — deterministically (``crash_at_time``/``crash_at_round``) or
stochastically (seeded exponential ``mtbf``) — and whether they come back
(``restart_after``).  Fault model v2 adds three orthogonal extensions:

* **network partitions** (:class:`PartitionModel`) — lose a *link*, not a
  node: the listed workers are unreachable from the rest of the cluster for a
  time window.  A partitioned worker keeps *computing* (its timeline records
  ``"unreachable"`` segments instead of freezing) but nothing it sends or
  receives crosses the cut until the partition heals; collectives involving
  it stall, degrade to the reachable membership, or raise a structured
  :class:`PartitionError` according to the plan's ``on_failure`` policy;
* **correlated failures** (``groups=[[0, 1], [2, 3]]`` + ``correlation=p``) —
  rack/host blast radius: every seeded crash draws co-crashes with
  probability ``p`` among the crashing worker's group peers, so a single
  failure can take a whole failure domain below the survivable threshold;
* **checkpoint cost models** (:class:`CheckpointModel`) — restarts are not
  free: a restarted worker pays ``restore_cost`` plus the replay of all work
  since its last durable checkpoint before it can rejoin, which the
  ``"stall"`` policy charges as modelled time (iterates stay bit-identical).

At fit time the model is instantiated into a :class:`FaultInjector`, the
runtime state machine both execution paths consult:

* **synchronous plans** — the cluster checks the injector at every
  synchronization point.  A crashed worker's timeline freezes and its
  in-flight round contribution is dropped; what happens next is the plan's
  declared :attr:`~repro.distributed.schedule.RoundPlan.on_failure` policy:
  ``"raise"`` aborts with a structured :class:`WorkerLostError`, ``"stall"``
  idles the cluster until the worker restarts (and re-runs its lost round),
  ``"degrade"`` proceeds with the survivors;
* **asynchronous solvers** — quorum Newton-ADMM and async SGD drop the
  crashed worker's in-flight push events, reweight their aggregation over the
  survivors, and fold restarted workers back in when they return.

Every crash/restart/partition/heal/co-crash/restore that takes effect is
recorded as an event (exported to ``RunTrace.info["faults"]`` and rendered by
:func:`~repro.harness.plotting.plot_gantt` as ``X``/``^``/``(``/``)``/``+``
markers); a model whose specs never trigger leaves modelled times and
iterates bit-identical to a run without one.

Examples
--------
>>> model = FailureModel(crash_at_time={0: 2.5}, restart_after=1.0)
>>> injector = model.start(n_workers=2)
>>> injector.is_down(0, 3.0), injector.is_down(0, 3.6), injector.is_down(1, 3.0)
(True, False, False)
>>> FailureModel.from_spec("w0@2.5,restart=1.0") == model
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.distributed.injection import injection_worker_rngs

#: fault-handling policies a synchronous plan may declare (see ``RoundPlan``)
FAULT_POLICIES = ("raise", "stall", "degrade")

_INF = float("inf")


class WorkerLostError(RuntimeError):
    """A worker a schedule depends on crashed and will not return in time.

    Structured: ``worker_id``, modelled ``time`` of the loss, and the
    synchronization ``round`` (when known) are attributes, so experiment
    drivers can report *which* worker died *when* rather than just that a run
    failed.
    """

    def __init__(
        self,
        worker_id: int,
        time: float,
        *,
        round: Optional[int] = None,
        reason: str = "crashed",
    ):
        self.worker_id = int(worker_id)
        self.time = float(time)
        self.round = round
        message = f"worker {self.worker_id} lost at modelled t={self.time:.6g}s"
        if round is not None:
            message += f" (sync round {round})"
        message += f": {reason}"
        super().__init__(message)


class PartitionError(WorkerLostError):
    """A worker a schedule depends on is unreachable behind a network cut.

    Structured like :class:`WorkerLostError` (so strict-sync abort handling
    catches both) with the additional ``heals_at`` attribute: the modelled
    time at which the partition window closes (``inf`` = never).
    """

    def __init__(
        self,
        worker_id: int,
        time: float,
        *,
        heals_at: Optional[float] = None,
        round: Optional[int] = None,
        reason: str = "network partition",
    ):
        self.heals_at = float(heals_at) if heals_at is not None else _INF
        if math.isfinite(self.heals_at):
            reason = f"{reason} (heals at t={self.heals_at:.6g}s)"
        super().__init__(worker_id, time, round=round, reason=reason)


@dataclass(frozen=True)
class PartitionModel:
    """Link loss: time windows during which a set of workers is unreachable.

    Each cut is ``(workers, start, end)``: during ``[start, end)`` the listed
    workers cannot exchange messages with the master or with any worker
    outside the set (a single worker models a master↔worker link loss, a
    larger set models a rack isolated from the rest of the cluster).  Compute
    is unaffected — only communication crossing the cut is.  ``end`` may be
    ``inf`` for a partition that never heals.

    Examples
    --------
    >>> cuts = PartitionModel(cuts=[((0,), 2.0, 5.0)])
    >>> cuts.is_cut(0, 3.0), cuts.is_cut(0, 5.0), cuts.is_cut(1, 3.0)
    (True, False, False)
    >>> cuts.heal_time(0, 3.0)
    5.0
    """

    cuts: Sequence[Tuple[Tuple[int, ...], float, float]] = ()

    def __post_init__(self) -> None:
        normalized = []
        for cut in self.cuts:
            try:
                workers, start, end = cut
            except (TypeError, ValueError):
                raise ValueError(
                    f"each cut must be (workers, start, end), got {cut!r}"
                )
            ids = tuple(sorted({int(w) for w in workers}))
            if not ids:
                raise ValueError("a partition cut needs at least one worker")
            if any(w < 0 for w in ids):
                raise ValueError(f"worker ids must be >= 0, got {ids}")
            start, end = float(start), float(end)
            if start < 0:
                raise ValueError(f"cut start must be >= 0, got {start}")
            if end <= start:
                raise ValueError(
                    f"cut must end after it starts, got [{start}, {end})"
                )
            normalized.append((ids, start, end))
        object.__setattr__(self, "cuts", tuple(normalized))

    @property
    def active(self) -> bool:
        """True when any cut window is declared."""
        return bool(self.cuts)

    def is_cut(self, worker_id: int, t: float) -> bool:
        """Is the worker behind a partition at modelled time ``t``?"""
        wid = int(worker_id)
        return any(wid in ids and s <= t < e for ids, s, e in self.cuts)

    def cut_start(self, worker_id: int, t: float) -> float:
        """Start of the cut window covering ``t`` (requires ``is_cut``)."""
        wid = int(worker_id)
        starts = [s for ids, s, e in self.cuts if wid in ids and s <= t < e]
        if not starts:
            raise ValueError(f"worker {worker_id} is not cut at t={t}")
        return min(starts)

    def heal_time(self, worker_id: int, t: float) -> float:
        """First instant at/after ``t`` when the worker is reachable again.

        Chained/overlapping windows are followed to the first gap; returns
        ``t`` unchanged when the worker is not cut, ``inf`` when a covering
        window never ends.
        """
        wid = int(worker_id)
        r = float(t)
        changed = True
        while changed:
            changed = False
            for ids, s, e in self.cuts:
                if wid in ids and s <= r < e:
                    r = e
                    changed = True
                    if not math.isfinite(r):
                        return r
        return r

    def describe(self) -> dict:
        return {
            "cuts": [
                {"workers": list(ids), "start": s, "end": e}
                for ids, s, e in self.cuts
            ]
        }


@dataclass(frozen=True)
class CheckpointModel:
    """How expensive losing a worker's in-memory state really is.

    Without this model a restarted worker resumes from its last in-memory
    state for free.  With it, checkpoints become durable every ``interval``
    modelled seconds (a checkpoint written at ``k * interval`` is usable once
    its ``write_cost`` has elapsed), and recovery after a crash at time ``c``
    charges ``restore_cost`` plus the replay of everything since the last
    durable checkpoint.  Nothing is charged while no crash fires, so an
    attached-but-idle model leaves runs bit-identical.

    Examples
    --------
    >>> ckpt = CheckpointModel(interval=10.0, write_cost=1.0, restore_cost=2.0)
    >>> ckpt.last_durable(25.0)   # the t=20 checkpoint finished writing at 21
    20.0
    >>> ckpt.recovery_seconds(25.0)   # restore (2) + replay since t=20 (5)
    7.0
    >>> ckpt.last_durable(20.5)   # t=20 checkpoint not durable yet at 20.5
    10.0
    """

    interval: float
    write_cost: float = 0.0
    restore_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.write_cost < 0:
            raise ValueError(f"write_cost must be >= 0, got {self.write_cost}")
        if self.restore_cost < 0:
            raise ValueError(
                f"restore_cost must be >= 0, got {self.restore_cost}"
            )
        object.__setattr__(self, "interval", float(self.interval))
        object.__setattr__(self, "write_cost", float(self.write_cost))
        object.__setattr__(self, "restore_cost", float(self.restore_cost))

    def last_durable(self, t: float) -> float:
        """Latest checkpoint boundary durable by time ``t`` (0 = initial state)."""
        if t <= 0 or not math.isfinite(t):
            return 0.0
        # Largest k with k*interval + write_cost <= t (the write must have
        # completed by the crash), never past the most recent boundary.
        k = int(math.floor((t - self.write_cost) / self.interval))
        k = min(k, int(math.floor(t / self.interval)))
        return max(k, 0) * self.interval

    def recovery_seconds(self, crash_time: float) -> float:
        """Restore + replay charged before a worker crashed at ``crash_time``
        can do useful work again."""
        crash_time = max(float(crash_time), 0.0)
        return self.restore_cost + (crash_time - self.last_durable(crash_time))

    def describe(self) -> dict:
        return {
            "interval": self.interval,
            "write_cost": self.write_cost,
            "restore_cost": self.restore_cost,
        }


@dataclass(frozen=True)
class FailureModel:
    """When workers crash, and whether they restart.

    Attributes
    ----------
    crash_at_time:
        ``worker_id -> modelled time`` of a deterministic crash.
    crash_at_round:
        ``worker_id -> 1-based synchronization round`` at whose start the
        worker crashes (rounds are counted per
        :meth:`~repro.distributed.cluster.SimulatedCluster.map_workers` round
        on the synchronous path, and per local cycle for asynchronous
        solvers).
    mtbf:
        Mean time between failures of a seeded exponential crash process, per
        worker (``None`` disables it).  Each worker samples from its own
        independent stream (see :mod:`repro.distributed.injection`), so the
        schedule is deterministic under a fixed ``random_state`` regardless
        of query order.
    restart_after:
        Seconds after a crash at which the worker comes back (``None`` =
        crashed workers never return).
    groups:
        Failure domains (rack/host topology) for correlated failures: each
        group is a set of worker ids that share a blast radius.  Whenever a
        seeded crash fires for a group member, every *other* member of that
        group co-crashes at the same instant with probability
        ``correlation`` (drawn from dedicated per-worker streams, so the
        schedule stays deterministic and query-order independent).
    correlation:
        Co-crash probability within a failure group, in ``[0, 1]``.
    partitions:
        Optional :class:`PartitionModel` cutting links for time windows (a
        plain sequence of ``(workers, start, end)`` cuts is also accepted
        and wrapped).  Partitioned workers keep computing but cannot
        communicate until the window heals.
    checkpoint:
        Optional :class:`CheckpointModel` making restarts pay restore +
        replay-from-last-checkpoint instead of resuming for free.
    random_state:
        Seed of the MTBF and co-crash streams.  The streams are salted, so a
        :class:`~repro.distributed.stragglers.StragglerModel` sharing the
        same seed draws an independent sequence and the two schedules compose
        reproducibly.

    Examples
    --------
    >>> FailureModel(mtbf=10.0, restart_after=2.0, random_state=7).active
    True
    >>> FailureModel().active        # no specs: attaching it changes nothing
    False
    """

    crash_at_time: Mapping[int, float] = field(default_factory=dict)
    crash_at_round: Mapping[int, int] = field(default_factory=dict)
    mtbf: Optional[float] = None
    restart_after: Optional[float] = None
    groups: Sequence[Sequence[int]] = ()
    correlation: float = 0.0
    partitions: Optional[PartitionModel] = None
    checkpoint: Optional[CheckpointModel] = None
    random_state: Optional[int] = 0

    def __post_init__(self) -> None:
        crash_at_time = {
            int(k): float(v) for k, v in dict(self.crash_at_time).items()
        }
        crash_at_round = {
            int(k): int(v) for k, v in dict(self.crash_at_round).items()
        }
        for wid, t in crash_at_time.items():
            if wid < 0:
                raise ValueError(f"worker id must be >= 0, got {wid}")
            if t < 0:
                raise ValueError(f"crash time must be >= 0, got {t}")
        for wid, r in crash_at_round.items():
            if wid < 0:
                raise ValueError(f"worker id must be >= 0, got {wid}")
            if r < 1:
                raise ValueError(f"crash round must be >= 1, got {r}")
        if self.mtbf is not None and self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ValueError(
                f"restart_after must be positive, got {self.restart_after}"
            )
        groups = []
        for group in self.groups:
            ids = tuple(sorted({int(w) for w in group}))
            if len(ids) < 2:
                raise ValueError(
                    f"a failure group needs at least 2 workers, got {group!r}"
                )
            if any(w < 0 for w in ids):
                raise ValueError(f"worker ids must be >= 0, got {ids}")
            groups.append(ids)
        if not 0.0 <= float(self.correlation) <= 1.0:
            raise ValueError(
                f"correlation must lie in [0, 1], got {self.correlation}"
            )
        partitions = self.partitions
        if partitions is not None and not isinstance(partitions, PartitionModel):
            partitions = PartitionModel(cuts=partitions)
        if self.checkpoint is not None and not isinstance(
            self.checkpoint, CheckpointModel
        ):
            raise TypeError(
                f"checkpoint must be a CheckpointModel, got {self.checkpoint!r}"
            )
        # frozen dataclass: bypass the guard to store normalized copies
        object.__setattr__(self, "crash_at_time", crash_at_time)
        object.__setattr__(self, "crash_at_round", crash_at_round)
        object.__setattr__(self, "groups", tuple(groups))
        object.__setattr__(self, "correlation", float(self.correlation))
        object.__setattr__(self, "partitions", partitions)

    @property
    def active(self) -> bool:
        """True when any crash or partition spec is set (an inactive model is
        a no-op; ``groups``/``correlation``/``checkpoint`` only shape events
        that other specs trigger)."""
        return bool(
            self.crash_at_time
            or self.crash_at_round
            or self.mtbf
            or (self.partitions is not None and self.partitions.active)
        )

    def start(self, n_workers: int) -> "FaultInjector":
        """Instantiate the runtime state machine for one cluster."""
        return FaultInjector(self, n_workers)

    def describe(self) -> dict:
        """JSON-serializable description (recorded in run provenance)."""
        return {
            "crash_at_time": {str(k): v for k, v in self.crash_at_time.items()},
            "crash_at_round": {str(k): v for k, v in self.crash_at_round.items()},
            "mtbf": self.mtbf,
            "restart_after": self.restart_after,
            "groups": [list(g) for g in self.groups],
            "correlation": self.correlation,
            "partitions": (
                self.partitions.describe() if self.partitions is not None else None
            ),
            "checkpoint": (
                self.checkpoint.describe() if self.checkpoint is not None else None
            ),
            "random_state": self.random_state,
        }

    @classmethod
    def from_spec(cls, spec: str) -> "FailureModel":
        """Parse the CLI's ``--faults`` spec string.

        Comma-separated tokens:

        * ``W@T`` (or ``wW@T``) — worker ``W`` crashes at modelled time ``T``;
        * ``W@rK`` — worker ``W`` crashes at the start of sync round ``K``;
        * ``mtbf=S`` — seeded exponential crashes with mean ``S`` seconds;
        * ``restart=S`` — crashed workers return after ``S`` seconds;
        * ``part=W[+W2...]@S-E`` — the listed workers are partitioned from
          the rest of the cluster during ``[S, E)`` (``E`` may be ``inf``);
          repeatable;
        * ``group=W+W2[+...]`` — a correlated failure group; repeatable;
        * ``corr=P`` — co-crash probability within a group (default 0);
        * ``ckpt=I[/W[/R]]`` — checkpoint every ``I`` seconds with write cost
          ``W`` and restore cost ``R`` (both default 0);
        * ``seed=N`` — seed of the MTBF and co-crash streams.

        A worker may carry at most one crash schedule: duplicate ``W@...``
        tokens (and duplicate scalar keys) raise a :class:`ValueError` naming
        the offending token instead of silently letting the last one win.

        Examples
        --------
        >>> FailureModel.from_spec("0@2.5,w1@r3,restart=1.0").crash_at_round
        {1: 3}
        >>> FailureModel.from_spec("part=0@2.0-5.0").partitions.cuts
        (((0,), 2.0, 5.0),)
        """

        def bad(token: str, expected: str) -> ValueError:
            return ValueError(
                f"cannot parse fault-spec token {token!r} in {spec!r}; "
                f"expected {expected}"
            )

        def parse_float(value: str, token: str, what: str) -> float:
            try:
                return float(value)
            except ValueError:
                raise bad(token, f"{what} to be a number")

        def parse_int(value: str, token: str, what: str) -> int:
            try:
                return int(value)
            except ValueError:
                raise bad(token, f"{what} to be an integer")

        def parse_ids(value: str, token: str) -> List[int]:
            parts = [p.strip() for p in value.split("+")]
            if not parts or any(not p for p in parts):
                raise bad(token, "worker ids joined by '+', e.g. 0+1")
            return [
                parse_int(p.lstrip("wW") or p, token, "a worker id")  # noqa: B005
                for p in parts
            ]

        crash_at_time: Dict[int, float] = {}
        crash_at_round: Dict[int, int] = {}
        mtbf: Optional[float] = None
        restart_after: Optional[float] = None
        groups: List[List[int]] = []
        correlation = 0.0
        cuts: List[Tuple[Tuple[int, ...], float, float]] = []
        checkpoint: Optional[CheckpointModel] = None
        random_state: Optional[int] = 0
        seen_keys: set = set()
        for token in str(spec).split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                key = key.strip().lower()
                value = value.strip()
                if key in ("mtbf", "restart", "seed", "corr", "ckpt"):
                    if key in seen_keys:
                        raise ValueError(
                            f"duplicate fault-spec key {key!r} "
                            f"(token {token!r} in {spec!r})"
                        )
                    seen_keys.add(key)
                if key == "mtbf":
                    mtbf = parse_float(value, token, "mtbf=")
                elif key == "restart":
                    restart_after = parse_float(value, token, "restart=")
                elif key == "seed":
                    random_state = parse_int(value, token, "seed=")
                elif key == "corr":
                    correlation = parse_float(value, token, "corr=")
                    if not 0.0 <= correlation <= 1.0:
                        raise bad(token, "corr= to lie in [0, 1]")
                elif key == "group":
                    ids = parse_ids(value, token)
                    if len(set(ids)) < 2:
                        raise bad(
                            token, "at least two distinct worker ids"
                        )
                    groups.append(ids)
                elif key == "part":
                    ids_part, sep, window = value.partition("@")
                    if not sep:
                        raise bad(token, "part=WORKERS@START-END")
                    # Times may carry negative exponents (1e-3), so the
                    # separating '-' is the one splitting the window into
                    # two parseable numbers, not simply the first dash.
                    bounds = None
                    for i, ch in enumerate(window):
                        if ch != "-":
                            continue
                        try:
                            bounds = (
                                float(window[:i]), float(window[i + 1:])
                            )
                            break
                        except ValueError:
                            continue
                    if bounds is None:
                        raise bad(
                            token,
                            "part=WORKERS@START-END with numeric times",
                        )
                    if bounds[0] < 0 or bounds[1] <= bounds[0]:
                        raise bad(
                            token,
                            "a window with 0 <= START < END",
                        )
                    cuts.append(
                        (tuple(parse_ids(ids_part, token)), *bounds)
                    )
                elif key == "ckpt":
                    parts = [p.strip() for p in value.split("/")]
                    if not 1 <= len(parts) <= 3:
                        raise bad(token, "ckpt=INTERVAL[/WRITE[/RESTORE]]")
                    numbers = [
                        parse_float(p, token, "a checkpoint cost")
                        for p in parts
                    ]
                    try:
                        checkpoint = CheckpointModel(*numbers)
                    except ValueError as exc:
                        raise bad(token, f"a valid checkpoint model ({exc})")
                else:
                    raise ValueError(
                        f"unknown fault-spec key {key!r} in token {token!r} "
                        f"of {spec!r}; expected mtbf=, restart=, seed=, "
                        "corr=, group=, part= or ckpt="
                    )
            elif "@" in token:
                wid_part, _, at = token.partition("@")
                wid_part = wid_part.strip().lstrip("wW")  # noqa: B005
                if not wid_part:
                    raise bad(token, "W@TIME or W@rROUND")
                wid = parse_int(wid_part, token, "a worker id")
                if wid in crash_at_time or wid in crash_at_round:
                    raise ValueError(
                        f"duplicate crash schedule for worker {wid} "
                        f"(token {token!r} in {spec!r}); "
                        "one crash spec per worker"
                    )
                at = at.strip()
                if at.lower().startswith("r"):
                    crash_at_round[wid] = parse_int(
                        at[1:], token, "the round number"
                    )
                else:
                    crash_at_time[wid] = parse_float(at, token, "the crash time")
            else:
                raise ValueError(
                    f"cannot parse fault-spec token {token!r} in {spec!r}; "
                    "expected W@TIME, W@rROUND, mtbf=, restart=, seed=, "
                    "corr=, group=, part= or ckpt="
                )
        return cls(
            crash_at_time=crash_at_time,
            crash_at_round=crash_at_round,
            mtbf=mtbf,
            restart_after=restart_after,
            groups=groups,
            correlation=correlation,
            partitions=PartitionModel(cuts=cuts) if cuts else None,
            checkpoint=checkpoint,
            random_state=random_state,
        )


class FaultInjector:
    """Runtime crash/restart state for one cluster run.

    Owned by the :class:`~repro.distributed.cluster.SimulatedCluster`
    (``cluster.fault_state``) and reset by ``reset_accounting``, so two runs
    on the same cluster see the same fault schedule.  All queries are pure
    reads of the (lazily materialized, per-worker) schedule; the ``note_*``
    methods record events as the simulation acts on them.

    Examples
    --------
    >>> inj = FailureModel(crash_at_time={1: 5.0}).start(4)
    >>> inj.first_crash_in(1, 0.0, 10.0)
    5.0
    >>> inj.first_crash_in(0, 0.0, 10.0) is None
    True
    """

    def __init__(self, model: FailureModel, n_workers: int):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.model = model
        self.n_workers = int(n_workers)
        self.reset()

    def reset(self) -> None:
        """Restart the schedule (same seed => same crashes next run)."""
        n = self.n_workers
        restart = self.model.restart_after
        #: events actually delivered to the simulation, in the order acted on
        self.events: List[Dict[str, float]] = []
        #: synchronization rounds seen so far (drives ``crash_at_round``)
        self.round = 0
        # deterministic intervals: crash_at_time, plus crash_at_round entries
        # appended when their round begins (their clock time is only known
        # then); MTBF intervals live separately and grow lazily per worker.
        self._fixed: List[List[Tuple[float, float]]] = [[] for _ in range(n)]
        self._mtbf: List[List[Tuple[float, float]]] = [[] for _ in range(n)]
        # co-crash intervals drawn by group peers' crashes, kept separate so
        # their events can be tagged as correlated.
        self._correlated: List[List[Tuple[float, float]]] = [[] for _ in range(n)]
        self._co_sources: Dict[Tuple[int, float], int] = {}
        self._round_armed: set = set()
        # workers currently down, with their crash time; cleared on restart.
        self._down_since: Dict[int, float] = {}
        # workers currently behind an acted-on partition, with the window start.
        self._cut_since: Dict[int, float] = {}
        # (worker, crash_time) recovery charges already recorded as events.
        self._restored: set = set()
        # crash/restart pairs not yet drawn onto a timeline (event engine).
        self._timeline_debt: Dict[int, List[float]] = {}
        for wid, t in self.model.crash_at_time.items():
            if wid < n:
                self._fixed[wid].append((t, t + restart if restart else _INF))
        self._mtbf_rngs = (
            injection_worker_rngs(self.model.random_state, n, stream="failures")
            if self.model.mtbf
            else None
        )
        self._group_peers: Dict[int, List[int]] = {}
        correlated = self.model.groups and self.model.correlation > 0.0
        for group in self.model.groups:
            for wid in group:
                if wid < n:
                    self._group_peers.setdefault(wid, [])
        self._corr_rngs = (
            injection_worker_rngs(self.model.random_state, n, stream="correlated")
            if correlated
            else None
        )
        if correlated:
            for group in self.model.groups:
                members = [w for w in group if w < n]
                for wid in members:
                    self._group_peers[wid] = sorted(
                        set(self._group_peers[wid])
                        | {m for m in members if m != wid}
                    )
            # Deterministic crashes are known now: draw their co-crashes
            # immediately (worker order fixes the draw sequence).
            for wid in sorted(self.model.crash_at_time):
                if wid < n:
                    self._arm_co_crashes(wid, self.model.crash_at_time[wid])
        # per-worker cycle counters used by async solvers' crash_at_round
        self._cycles = [0] * n

    # -- schedule materialization -----------------------------------------
    def _arm_co_crashes(self, primary: int, crash_time: float) -> None:
        """Draw correlated co-crashes among ``primary``'s group peers.

        Consumes only ``primary``'s dedicated stream (one draw per peer, in
        sorted order), so the schedule is deterministic however the
        simulation interleaves its queries.
        """
        if self._corr_rngs is None:
            return
        restart = self.model.restart_after
        for peer in self._group_peers.get(primary, ()):
            if float(self._corr_rngs[primary].random()) < self.model.correlation:
                self._correlated[peer].append(
                    (crash_time, crash_time + restart if restart else _INF)
                )
                self._co_sources.setdefault((peer, crash_time), primary)

    def _ensure_mtbf(self, worker_id: int, until: float) -> None:
        if self._mtbf_rngs is None or not math.isfinite(until):
            return
        intervals = self._mtbf[worker_id]
        restart = self.model.restart_after
        while not intervals or (
            math.isfinite(intervals[-1][1]) and intervals[-1][1] <= until
        ):
            base = intervals[-1][1] if intervals else 0.0
            gap = float(self._mtbf_rngs[worker_id].exponential(self.model.mtbf))
            crash = base + gap
            intervals.append((crash, crash + restart if restart else _INF))
            self._arm_co_crashes(worker_id, crash)

    def _intervals(self, worker_id: int, until: float):
        self._ensure_mtbf(worker_id, until)
        # A group peer's lazily-sampled crash may co-crash this worker:
        # materialize the peers' schedules over the same horizon first.
        for peer in self._group_peers.get(worker_id, ()):
            self._ensure_mtbf(peer, until)
        yield from self._fixed[worker_id]
        yield from self._mtbf[worker_id]
        yield from self._correlated[worker_id]

    # -- queries ------------------------------------------------------------
    def is_down(self, worker_id: int, t: float) -> bool:
        """Is the worker inside a crash interval at modelled time ``t``?"""
        return any(c <= t < r for c, r in self._intervals(worker_id, t))

    def crash_time_of(self, worker_id: int, t: float) -> float:
        """Start of the crash interval containing ``t`` (requires ``is_down``)."""
        times = [c for c, r in self._intervals(worker_id, t) if c <= t < r]
        if not times:
            raise ValueError(f"worker {worker_id} is not down at t={t}")
        return min(times)

    def first_crash_in(
        self, worker_id: int, start: float, end: float
    ) -> Optional[float]:
        """Earliest crash in ``[start, end)``, or ``None``."""
        times = [
            c for c, _ in self._intervals(worker_id, end) if start <= c < end
        ]
        return min(times) if times else None

    def restart_time(self, worker_id: int, t: float) -> float:
        """When a worker down at ``t`` is back up (``inf`` = never).

        Chained/overlapping crash intervals are followed to the first instant
        at which no interval covers the worker.
        """
        r = float(t)
        changed = True
        while changed:
            changed = False
            for c, rr in self._intervals(worker_id, r if math.isfinite(r) else t):
                if c <= r < rr:
                    r = rr
                    changed = True
                    if not math.isfinite(r):
                        return r
        return r if r > t else _INF

    @property
    def any_down(self) -> bool:
        return bool(self._down_since)

    def down_workers(self) -> List[int]:
        """Workers whose crash the simulation has acted on and not yet revived."""
        return sorted(self._down_since)

    # -- partitions ----------------------------------------------------------
    @property
    def has_partitions(self) -> bool:
        """True when the model declares any partition window."""
        p = self.model.partitions
        return p is not None and p.active

    def is_cut(self, worker_id: int, t: float) -> bool:
        """Is the worker unreachable behind a partition at time ``t``?"""
        p = self.model.partitions
        return p is not None and p.is_cut(int(worker_id), t)

    def cut_start(self, worker_id: int, t: float) -> float:
        """Start of the cut window covering ``t`` (requires ``is_cut``)."""
        return self.model.partitions.cut_start(int(worker_id), t)

    def heal_time(self, worker_id: int, t: float) -> float:
        """First instant at/after ``t`` when the worker is reachable
        (``t`` itself when it is not cut, ``inf`` when the cut never heals)."""
        p = self.model.partitions
        return p.heal_time(int(worker_id), t) if p is not None else float(t)

    def cut_workers(self, worker_ids: Sequence[int], t: float) -> List[int]:
        """The subset of ``worker_ids`` unreachable at time ``t``."""
        if not self.has_partitions:
            return []
        return [int(w) for w in worker_ids if self.is_cut(w, t)]

    # -- checkpoints ---------------------------------------------------------
    def recovery_seconds(self, worker_id: int, crash_time: float) -> float:
        """Restore + replay a worker crashed at ``crash_time`` must pay after
        its restart before doing useful work (0 without a checkpoint model)."""
        ckpt = self.model.checkpoint
        if ckpt is None:
            return 0.0
        return ckpt.recovery_seconds(crash_time)

    # -- round / cycle lifecycle -------------------------------------------
    def begin_round(self, worker_ids: Sequence[int], now: float) -> int:
        """Count one synchronization round and arm ``crash_at_round`` specs.

        A worker whose declared round begins now gets a crash interval
        starting at the round's synchronization time.  Arming triggers at the
        worker's first participating round *at or after* the configured one,
        so a spec is not silently dropped when the worker happened to sit out
        (subset round, degraded membership) the exact round number.
        """
        self.round += 1
        restart = self.model.restart_after
        for wid in worker_ids:
            wid = int(wid)
            if wid in self._round_armed or wid >= self.n_workers:
                continue
            target = self.model.crash_at_round.get(wid)
            if target is not None and self.round >= target:
                self._round_armed.add(wid)
                self._fixed[wid].append(
                    (now, now + restart if restart else _INF)
                )
                self._arm_co_crashes(wid, now)
        return self.round

    def begin_cycle(self, worker_id: int, now: float) -> None:
        """Asynchronous analogue of :meth:`begin_round`: count one local
        cycle of ``worker_id`` and arm its ``crash_at_round`` spec (round
        ``k`` = the worker's k-th cycle)."""
        wid = int(worker_id)
        self._cycles[wid] += 1
        if wid in self._round_armed:
            return
        target = self.model.crash_at_round.get(wid)
        if target is not None and self._cycles[wid] >= target:
            self._round_armed.add(wid)
            restart = self.model.restart_after
            self._fixed[wid].append((now, now + restart if restart else _INF))
            self._arm_co_crashes(wid, now)

    # -- event recording ------------------------------------------------------
    def note_crash(self, worker_id: int, time: float) -> None:
        """Record that the simulation acted on a crash (idempotent while down).

        Crashes drawn by a group peer's failure are recorded as ``co-crash``
        events carrying the peer that dragged them down.
        """
        wid = int(worker_id)
        if wid in self._down_since:
            return
        self._down_since[wid] = float(time)
        self._timeline_debt[wid] = [float(time)]
        primary = self._co_sources.get((wid, float(time)))
        event = {
            "kind": "crash" if primary is None else "co-crash",
            "worker_id": wid,
            "time": float(time),
            "round": self.round,
        }
        if primary is not None:
            event["with"] = int(primary)
        self.events.append(event)

    def note_partition(self, worker_id: int, start: float) -> None:
        """Record that the simulation acted on a cut (idempotent per window)."""
        wid = int(worker_id)
        if wid in self._cut_since:
            return
        self._cut_since[wid] = float(start)
        self.events.append(
            {"kind": "partition", "worker_id": wid, "time": float(start),
             "round": self.round}
        )

    def note_heal(self, worker_id: int, time: float) -> None:
        """Record that a cut worker became reachable (idempotent while up)."""
        wid = int(worker_id)
        if wid not in self._cut_since:
            return
        del self._cut_since[wid]
        self.events.append(
            {"kind": "heal", "worker_id": wid, "time": float(time),
             "round": self.round}
        )

    def note_restore(
        self, worker_id: int, crash_time: float, ready: float, seconds: float
    ) -> None:
        """Record a checkpoint recovery charge (idempotent per crash)."""
        wid = int(worker_id)
        key = (wid, float(crash_time))
        if seconds <= 0 or key in self._restored:
            return
        self._restored.add(key)
        self.events.append(
            {"kind": "restore", "worker_id": wid, "time": float(ready),
             "seconds": float(seconds), "round": self.round}
        )

    def rejoin_if_restarted(self, worker_id: int, now: float) -> bool:
        """Record the restart of a worker whose downtime has already passed.

        Degraded rounds simply drop a crashed worker; when it comes back it
        rejoins silently at the next synchronization point — this notes the
        restart event at its scheduled time so provenance and Gantt markers
        stay complete.
        """
        wid = int(worker_id)
        if wid in self._down_since and not self.is_down(wid, now):
            self.note_restart(
                wid, self.restart_time(wid, self._down_since[wid])
            )
            return True
        return False

    def note_restart(self, worker_id: int, time: float) -> None:
        """Record that a down worker came back (idempotent while up)."""
        wid = int(worker_id)
        if wid not in self._down_since:
            return
        del self._down_since[wid]
        self._timeline_debt.setdefault(wid, []).append(float(time))
        self.events.append(
            {"kind": "restart", "worker_id": wid, "time": float(time),
             "round": self.round}
        )

    # -- timeline bookkeeping (event engine) ---------------------------------
    def catch_up_timeline(self, engine, worker_id: int, now: float) -> None:
        """Draw a restarted worker's downtime onto its timeline and rejoin it.

        The worker's clock froze at the crash; this advances it with a
        ``down`` segment to the recorded restart, a ``busy`` ``restore``
        segment when a :class:`CheckpointModel` charges recovery, then a
        ``wait`` to ``now`` (it restarted mid-someone-else's round and waits
        for the next synchronization point).
        """
        wid = int(worker_id)
        debt = self._timeline_debt.pop(wid, None)
        if not debt or len(debt) < 2:
            if debt:  # crash recorded but no restart yet: keep the debt
                self._timeline_debt[wid] = debt
            return
        crash, restart = debt[0], debt[1]
        tl = engine.timeline(wid)
        if restart > tl.t:
            tl.advance(restart - tl.t, "down", "down")
        recovery = self.recovery_seconds(wid, crash)
        if recovery > 0:
            tl.advance(recovery, "busy", "restore")
            self.note_restore(wid, crash, restart + recovery, recovery)
        tl.wait_until(now, "restart")

    def rejoin_healed(self, now: float, engine=None) -> List[int]:
        """Rejoin every worker whose partition window has closed by ``now``.

        Degraded rounds simply drop a cut worker; when the partition heals it
        rejoins silently at the next synchronization point — this records the
        heal event (and, on the event engine, draws the ``unreachable``
        window onto its timeline) so provenance and Gantt markers stay
        complete.  Returns the rejoined worker ids.
        """
        healed: List[int] = []
        for wid in sorted(self._cut_since):
            # Judge the *recorded* window, not the worker's current state: a
            # later, disjoint cut may already cover ``now``, and the heal of
            # the first window must still be recorded (the caller then notes
            # the new window as its own partition event).
            heal = self.heal_time(wid, self._cut_since[wid])
            if heal > now:
                continue
            if engine is not None:
                tl = engine.timeline(wid)
                if heal > tl.t:
                    tl.advance(heal - tl.t, "unreachable", "partition")
            self.note_heal(wid, heal)
            healed.append(wid)
        return healed

    def hold_until_reachable(self, engine, worker_id: int) -> Optional[float]:
        """Advance a worker's local clock past any partition covering it.

        Used by the asynchronous solvers before every point-to-point
        transfer: the worker keeps its computed state but its message cannot
        cross the cut, so its timeline fills with ``unreachable`` segments
        until the window heals.  Raises :class:`PartitionError` when the cut
        never heals.

        The hold stretches the cycle past the window the caller's crash
        guard inspected, so the crash schedule is re-checked here: a worker
        that dies *while held behind the cut* never delivers — its timeline
        freezes at the crash and its restart time is returned (``inf`` =
        never) so the caller drops the transfer and schedules the revival.
        Returns ``None`` when the worker comes out of the hold alive.
        """
        wid = int(worker_id)
        tl = engine.timeline(wid)
        while self.is_cut(wid, tl.t):
            start = self.cut_start(wid, tl.t)
            heal = self.heal_time(wid, tl.t)
            self.note_partition(wid, start)
            if not math.isfinite(heal):
                raise PartitionError(
                    wid, tl.t, heals_at=heal, round=self.round,
                    reason="partition never heals",
                )
            crash = self.first_crash_in(wid, tl.t, heal)
            if crash is not None:
                if crash > tl.t:
                    tl.advance(crash - tl.t, "unreachable", "partition")
                self.note_crash(wid, crash)
                return self.restart_time(wid, crash)
            tl.advance(heal - tl.t, "unreachable", "partition")
            self.note_heal(wid, heal)
        return None

    def close_open_downtime(self, engine, until: float) -> None:
        """Extend still-down workers' timelines with a ``down`` segment (and
        still-cut workers' with an ``unreachable`` segment) to the end of the
        run so permanently lost workers render in the Gantt chart.  ``until``
        is the final global clock; the downtime extends to the latest worker
        clock when that runs ahead (asynchronous runs)."""
        horizon = max(
            [float(until)] + [tl.t for tl in engine.timelines]
        )
        for wid, debt in list(self._timeline_debt.items()):
            tl = engine.timeline(wid)
            if not tl.segments and tl.t == 0.0:
                continue  # lock-step run: timelines were never used
            end = debt[1] if len(debt) > 1 else horizon
            if end > tl.t:
                tl.advance(end - tl.t, "down", "down")
        for wid, start in list(self._cut_since.items()):
            tl = engine.timeline(wid)
            if not tl.segments and tl.t == 0.0:
                continue
            end = min(self.heal_time(wid, start), horizon)
            if end > tl.t:
                tl.advance(end - tl.t, "unreachable", "partition")

    def describe(self) -> dict:
        return {
            "model": self.model.describe(),
            "rounds_seen": self.round,
            "events": [dict(e) for e in self.events],
        }


def crashed_at_start(injector: FaultInjector, worker_id: int, start: float):
    """Cycle-start crash check for asynchronous solvers.

    Returns the worker's restart time (``inf`` = never) when it is already
    down at ``start`` — recording the crash — or ``None`` when it is up.
    """
    if not injector.is_down(worker_id, start):
        return None
    injector.note_crash(worker_id, injector.crash_time_of(worker_id, start))
    return injector.restart_time(worker_id, start)


def crash_guard(
    injector: FaultInjector,
    engine,
    worker_id: int,
    start: float,
    busy_seconds: float,
    comm_seconds: float,
    *,
    busy_label: str,
    comm_label: str,
):
    """Apply the fault schedule to one asynchronous work cycle.

    The cycle is ``busy_seconds`` of compute followed by ``comm_seconds`` of
    push starting at ``start`` on ``worker_id``'s timeline.  Returns ``None``
    when the cycle completes; otherwise the worker crashed mid-cycle: the
    crash is recorded, the partial busy/comm segments up to the crash are
    drawn (the timeline then freezes, and the caller must NOT post the
    arrival — the in-flight contribution is dropped), and the worker's
    restart time (``inf`` = never) is returned.

    Shared by :class:`~repro.admm.async_newton_admm.AsyncNewtonADMM` and
    :class:`~repro.baselines.async_sgd.AsynchronousSGD` so the subtle
    crash-window accounting cannot drift between them.
    """
    crash = injector.first_crash_in(
        worker_id, start, start + busy_seconds + comm_seconds
    )
    if crash is None:
        return None
    injector.note_crash(worker_id, crash)
    busy = min(busy_seconds, crash - start)
    if busy > 0:
        engine.compute(worker_id, busy, label=busy_label)
    comm = min(comm_seconds, max(crash - start - busy_seconds, 0.0))
    if comm > 0:
        engine.communicate(worker_id, comm, label=comm_label)
    return injector.restart_time(worker_id, crash)


def partition_transfer_guard(
    injector: FaultInjector,
    engine,
    worker_id: int,
    comm_seconds: float,
    *,
    comm_label: str,
):
    """Partition-aware point-to-point transfer for the asynchronous solvers.

    Holds ``worker_id`` behind any open cut (``unreachable`` timeline
    segments, partition/heal events), then re-checks the crash schedule over
    the *delayed* transfer window — the caller's :func:`crash_guard`
    inspected the undelayed cycle, so a worker that dies while held, or
    mid-push after the heal, must still drop its payload.  On survival the
    transfer is drawn on the timeline and ``None`` is returned; otherwise
    the loss is recorded (partial transfer drawn up to the crash) and the
    worker's restart time is returned (``inf`` = never-healing cut or no
    scheduled restart) — the caller must NOT post the arrival and should
    schedule the revival.

    Shared by :class:`~repro.admm.async_newton_admm.AsyncNewtonADMM` and
    :class:`~repro.baselines.async_sgd.AsynchronousSGD` (both the push and
    the pull side) so the delayed-transfer policy cannot drift between the
    four call sites.
    """
    wid = int(worker_id)
    try:
        restart = injector.hold_until_reachable(engine, wid)
    except PartitionError:
        return _INF
    if restart is not None:
        return restart
    start = engine.timeline(wid).t
    crash = injector.first_crash_in(wid, start, start + comm_seconds)
    if crash is not None:
        injector.note_crash(wid, crash)
        if crash > start:
            engine.communicate(wid, crash - start, label=comm_label)
        return injector.restart_time(wid, crash)
    engine.communicate(wid, comm_seconds, label=comm_label)
    return None


def pop_next_arrival(engine, dead: Dict[int, float], revive, *, now=None):
    """Pop the earliest event, reviving restartable dead workers first.

    Shared by the asynchronous solvers.  ``dead`` maps crashed worker ids to
    their restart times (``inf`` = never); ``revive(worker_id, restart_time)``
    must restart the worker's cycle (which may post new, possibly earlier,
    events) and remove it from ``dead``.  Raises :class:`WorkerLostError`
    when every worker is lost with no restart scheduled.
    """
    while True:
        restartable = sorted(
            (r, w) for w, r in dead.items() if math.isfinite(r)
        )
        if engine.n_pending == 0:
            if not restartable:
                wid = min(dead) if dead else 0
                raise WorkerLostError(
                    wid,
                    engine.now if now is None else now,
                    reason="no surviving workers and no scheduled restarts",
                )
            r, wid = restartable[0]
            revive(wid, r)
            continue
        if restartable and restartable[0][0] <= engine.peek_time():
            r, wid = restartable[0]
            revive(wid, r)
            continue
        return engine.pop()
