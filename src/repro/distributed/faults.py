"""Fault injection: worker crashes and restarts as first-class engine events.

The straggler model (:mod:`repro.distributed.stragglers`) can only slow a
worker down; this module can *lose* one.  A :class:`FailureModel` attached to
a :class:`~repro.distributed.cluster.SimulatedCluster` describes when workers
crash — deterministically (``crash_at_time``/``crash_at_round``) or
stochastically (seeded exponential ``mtbf``) — and whether they come back
(``restart_after``).  At fit time the model is instantiated into a
:class:`FaultInjector`, the runtime state machine both execution paths
consult:

* **synchronous plans** — the cluster checks the injector at every
  synchronization point.  A crashed worker's timeline freezes and its
  in-flight round contribution is dropped; what happens next is the plan's
  declared :attr:`~repro.distributed.schedule.RoundPlan.on_failure` policy:
  ``"raise"`` aborts with a structured :class:`WorkerLostError`, ``"stall"``
  idles the cluster until the worker restarts (and re-runs its lost round),
  ``"degrade"`` proceeds with the survivors;
* **asynchronous solvers** — quorum Newton-ADMM and async SGD drop the
  crashed worker's in-flight push events, reweight their aggregation over the
  survivors, and fold restarted workers back in when they return.

Every crash/restart that takes effect is recorded as an event (exported to
``RunTrace.info["faults"]`` and rendered by
:func:`~repro.harness.plotting.plot_gantt` as ``X``/``^`` markers); a model
whose specs never trigger leaves modelled times and iterates bit-identical to
a run without one.

Examples
--------
>>> model = FailureModel(crash_at_time={0: 2.5}, restart_after=1.0)
>>> injector = model.start(n_workers=2)
>>> injector.is_down(0, 3.0), injector.is_down(0, 3.6), injector.is_down(1, 3.0)
(True, False, False)
>>> FailureModel.from_spec("w0@2.5,restart=1.0") == model
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.distributed.injection import injection_worker_rngs

#: fault-handling policies a synchronous plan may declare (see ``RoundPlan``)
FAULT_POLICIES = ("raise", "stall", "degrade")

_INF = float("inf")


class WorkerLostError(RuntimeError):
    """A worker a schedule depends on crashed and will not return in time.

    Structured: ``worker_id``, modelled ``time`` of the loss, and the
    synchronization ``round`` (when known) are attributes, so experiment
    drivers can report *which* worker died *when* rather than just that a run
    failed.
    """

    def __init__(
        self,
        worker_id: int,
        time: float,
        *,
        round: Optional[int] = None,
        reason: str = "crashed",
    ):
        self.worker_id = int(worker_id)
        self.time = float(time)
        self.round = round
        message = f"worker {self.worker_id} lost at modelled t={self.time:.6g}s"
        if round is not None:
            message += f" (sync round {round})"
        message += f": {reason}"
        super().__init__(message)


@dataclass(frozen=True)
class FailureModel:
    """When workers crash, and whether they restart.

    Attributes
    ----------
    crash_at_time:
        ``worker_id -> modelled time`` of a deterministic crash.
    crash_at_round:
        ``worker_id -> 1-based synchronization round`` at whose start the
        worker crashes (rounds are counted per
        :meth:`~repro.distributed.cluster.SimulatedCluster.map_workers` round
        on the synchronous path, and per local cycle for asynchronous
        solvers).
    mtbf:
        Mean time between failures of a seeded exponential crash process, per
        worker (``None`` disables it).  Each worker samples from its own
        independent stream (see :mod:`repro.distributed.injection`), so the
        schedule is deterministic under a fixed ``random_state`` regardless
        of query order.
    restart_after:
        Seconds after a crash at which the worker comes back (``None`` =
        crashed workers never return).
    random_state:
        Seed of the MTBF streams.  The streams are salted, so a
        :class:`~repro.distributed.stragglers.StragglerModel` sharing the
        same seed draws an independent sequence and the two schedules compose
        reproducibly.

    Examples
    --------
    >>> FailureModel(mtbf=10.0, restart_after=2.0, random_state=7).active
    True
    >>> FailureModel().active        # no specs: attaching it changes nothing
    False
    """

    crash_at_time: Mapping[int, float] = field(default_factory=dict)
    crash_at_round: Mapping[int, int] = field(default_factory=dict)
    mtbf: Optional[float] = None
    restart_after: Optional[float] = None
    random_state: Optional[int] = 0

    def __post_init__(self) -> None:
        crash_at_time = {
            int(k): float(v) for k, v in dict(self.crash_at_time).items()
        }
        crash_at_round = {
            int(k): int(v) for k, v in dict(self.crash_at_round).items()
        }
        for wid, t in crash_at_time.items():
            if wid < 0:
                raise ValueError(f"worker id must be >= 0, got {wid}")
            if t < 0:
                raise ValueError(f"crash time must be >= 0, got {t}")
        for wid, r in crash_at_round.items():
            if wid < 0:
                raise ValueError(f"worker id must be >= 0, got {wid}")
            if r < 1:
                raise ValueError(f"crash round must be >= 1, got {r}")
        if self.mtbf is not None and self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ValueError(
                f"restart_after must be positive, got {self.restart_after}"
            )
        # frozen dataclass: bypass the guard to store normalized copies
        object.__setattr__(self, "crash_at_time", crash_at_time)
        object.__setattr__(self, "crash_at_round", crash_at_round)

    @property
    def active(self) -> bool:
        """True when any crash spec is set (an inactive model is a no-op)."""
        return bool(self.crash_at_time or self.crash_at_round or self.mtbf)

    def start(self, n_workers: int) -> "FaultInjector":
        """Instantiate the runtime state machine for one cluster."""
        return FaultInjector(self, n_workers)

    def describe(self) -> dict:
        """JSON-serializable description (recorded in run provenance)."""
        return {
            "crash_at_time": {str(k): v for k, v in self.crash_at_time.items()},
            "crash_at_round": {str(k): v for k, v in self.crash_at_round.items()},
            "mtbf": self.mtbf,
            "restart_after": self.restart_after,
            "random_state": self.random_state,
        }

    @classmethod
    def from_spec(cls, spec: str) -> "FailureModel":
        """Parse the CLI's ``--faults`` spec string.

        Comma-separated tokens:

        * ``W@T`` (or ``wW@T``) — worker ``W`` crashes at modelled time ``T``;
        * ``W@rK`` — worker ``W`` crashes at the start of sync round ``K``;
        * ``mtbf=S`` — seeded exponential crashes with mean ``S`` seconds;
        * ``restart=S`` — crashed workers return after ``S`` seconds;
        * ``seed=N`` — seed of the MTBF streams.

        Examples
        --------
        >>> FailureModel.from_spec("0@2.5,w1@r3,restart=1.0").crash_at_round
        {1: 3}
        """
        crash_at_time: Dict[int, float] = {}
        crash_at_round: Dict[int, int] = {}
        mtbf: Optional[float] = None
        restart_after: Optional[float] = None
        random_state: Optional[int] = 0
        for token in str(spec).split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                key = key.strip().lower()
                if key == "mtbf":
                    mtbf = float(value)
                elif key == "restart":
                    restart_after = float(value)
                elif key == "seed":
                    random_state = int(value)
                else:
                    raise ValueError(
                        f"unknown fault-spec key {key!r} in {spec!r}; "
                        "expected mtbf=, restart= or seed="
                    )
            elif "@" in token:
                wid_part, _, at = token.partition("@")
                wid = int(wid_part.strip().lstrip("wW") or "-1")
                at = at.strip()
                if at.lower().startswith("r"):
                    crash_at_round[wid] = int(at[1:])
                else:
                    crash_at_time[wid] = float(at)
            else:
                raise ValueError(
                    f"cannot parse fault-spec token {token!r} in {spec!r}; "
                    "expected W@TIME, W@rROUND, mtbf=, restart= or seed="
                )
        return cls(
            crash_at_time=crash_at_time,
            crash_at_round=crash_at_round,
            mtbf=mtbf,
            restart_after=restart_after,
            random_state=random_state,
        )


class FaultInjector:
    """Runtime crash/restart state for one cluster run.

    Owned by the :class:`~repro.distributed.cluster.SimulatedCluster`
    (``cluster.fault_state``) and reset by ``reset_accounting``, so two runs
    on the same cluster see the same fault schedule.  All queries are pure
    reads of the (lazily materialized, per-worker) schedule; the ``note_*``
    methods record events as the simulation acts on them.

    Examples
    --------
    >>> inj = FailureModel(crash_at_time={1: 5.0}).start(4)
    >>> inj.first_crash_in(1, 0.0, 10.0)
    5.0
    >>> inj.first_crash_in(0, 0.0, 10.0) is None
    True
    """

    def __init__(self, model: FailureModel, n_workers: int):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.model = model
        self.n_workers = int(n_workers)
        self.reset()

    def reset(self) -> None:
        """Restart the schedule (same seed => same crashes next run)."""
        n = self.n_workers
        restart = self.model.restart_after
        #: events actually delivered to the simulation, in the order acted on
        self.events: List[Dict[str, float]] = []
        #: synchronization rounds seen so far (drives ``crash_at_round``)
        self.round = 0
        # deterministic intervals: crash_at_time, plus crash_at_round entries
        # appended when their round begins (their clock time is only known
        # then); MTBF intervals live separately and grow lazily per worker.
        self._fixed: List[List[Tuple[float, float]]] = [[] for _ in range(n)]
        self._mtbf: List[List[Tuple[float, float]]] = [[] for _ in range(n)]
        self._round_armed: set = set()
        # workers currently down, with their crash time; cleared on restart.
        self._down_since: Dict[int, float] = {}
        # crash/restart pairs not yet drawn onto a timeline (event engine).
        self._timeline_debt: Dict[int, List[float]] = {}
        for wid, t in self.model.crash_at_time.items():
            if wid < n:
                self._fixed[wid].append((t, t + restart if restart else _INF))
        self._mtbf_rngs = (
            injection_worker_rngs(self.model.random_state, n, stream="failures")
            if self.model.mtbf
            else None
        )
        # per-worker cycle counters used by async solvers' crash_at_round
        self._cycles = [0] * n

    # -- schedule materialization -----------------------------------------
    def _ensure_mtbf(self, worker_id: int, until: float) -> None:
        if self._mtbf_rngs is None or not math.isfinite(until):
            return
        intervals = self._mtbf[worker_id]
        restart = self.model.restart_after
        while not intervals or (
            math.isfinite(intervals[-1][1]) and intervals[-1][1] <= until
        ):
            base = intervals[-1][1] if intervals else 0.0
            gap = float(self._mtbf_rngs[worker_id].exponential(self.model.mtbf))
            crash = base + gap
            intervals.append((crash, crash + restart if restart else _INF))

    def _intervals(self, worker_id: int, until: float):
        self._ensure_mtbf(worker_id, until)
        yield from self._fixed[worker_id]
        yield from self._mtbf[worker_id]

    # -- queries ------------------------------------------------------------
    def is_down(self, worker_id: int, t: float) -> bool:
        """Is the worker inside a crash interval at modelled time ``t``?"""
        return any(c <= t < r for c, r in self._intervals(worker_id, t))

    def crash_time_of(self, worker_id: int, t: float) -> float:
        """Start of the crash interval containing ``t`` (requires ``is_down``)."""
        times = [c for c, r in self._intervals(worker_id, t) if c <= t < r]
        if not times:
            raise ValueError(f"worker {worker_id} is not down at t={t}")
        return min(times)

    def first_crash_in(
        self, worker_id: int, start: float, end: float
    ) -> Optional[float]:
        """Earliest crash in ``[start, end)``, or ``None``."""
        times = [
            c for c, _ in self._intervals(worker_id, end) if start <= c < end
        ]
        return min(times) if times else None

    def restart_time(self, worker_id: int, t: float) -> float:
        """When a worker down at ``t`` is back up (``inf`` = never).

        Chained/overlapping crash intervals are followed to the first instant
        at which no interval covers the worker.
        """
        r = float(t)
        changed = True
        while changed:
            changed = False
            for c, rr in self._intervals(worker_id, r if math.isfinite(r) else t):
                if c <= r < rr:
                    r = rr
                    changed = True
                    if not math.isfinite(r):
                        return r
        return r if r > t else _INF

    @property
    def any_down(self) -> bool:
        return bool(self._down_since)

    def down_workers(self) -> List[int]:
        """Workers whose crash the simulation has acted on and not yet revived."""
        return sorted(self._down_since)

    # -- round / cycle lifecycle -------------------------------------------
    def begin_round(self, worker_ids: Sequence[int], now: float) -> int:
        """Count one synchronization round and arm ``crash_at_round`` specs.

        A worker whose declared round begins now gets a crash interval
        starting at the round's synchronization time.  Arming triggers at the
        worker's first participating round *at or after* the configured one,
        so a spec is not silently dropped when the worker happened to sit out
        (subset round, degraded membership) the exact round number.
        """
        self.round += 1
        restart = self.model.restart_after
        for wid in worker_ids:
            wid = int(wid)
            if wid in self._round_armed or wid >= self.n_workers:
                continue
            target = self.model.crash_at_round.get(wid)
            if target is not None and self.round >= target:
                self._round_armed.add(wid)
                self._fixed[wid].append(
                    (now, now + restart if restart else _INF)
                )
        return self.round

    def begin_cycle(self, worker_id: int, now: float) -> None:
        """Asynchronous analogue of :meth:`begin_round`: count one local
        cycle of ``worker_id`` and arm its ``crash_at_round`` spec (round
        ``k`` = the worker's k-th cycle)."""
        wid = int(worker_id)
        self._cycles[wid] += 1
        if wid in self._round_armed:
            return
        target = self.model.crash_at_round.get(wid)
        if target is not None and self._cycles[wid] >= target:
            self._round_armed.add(wid)
            restart = self.model.restart_after
            self._fixed[wid].append((now, now + restart if restart else _INF))

    # -- event recording ------------------------------------------------------
    def note_crash(self, worker_id: int, time: float) -> None:
        """Record that the simulation acted on a crash (idempotent while down)."""
        wid = int(worker_id)
        if wid in self._down_since:
            return
        self._down_since[wid] = float(time)
        self._timeline_debt[wid] = [float(time)]
        self.events.append(
            {"kind": "crash", "worker_id": wid, "time": float(time),
             "round": self.round}
        )

    def rejoin_if_restarted(self, worker_id: int, now: float) -> bool:
        """Record the restart of a worker whose downtime has already passed.

        Degraded rounds simply drop a crashed worker; when it comes back it
        rejoins silently at the next synchronization point — this notes the
        restart event at its scheduled time so provenance and Gantt markers
        stay complete.
        """
        wid = int(worker_id)
        if wid in self._down_since and not self.is_down(wid, now):
            self.note_restart(
                wid, self.restart_time(wid, self._down_since[wid])
            )
            return True
        return False

    def note_restart(self, worker_id: int, time: float) -> None:
        """Record that a down worker came back (idempotent while up)."""
        wid = int(worker_id)
        if wid not in self._down_since:
            return
        del self._down_since[wid]
        self._timeline_debt.setdefault(wid, []).append(float(time))
        self.events.append(
            {"kind": "restart", "worker_id": wid, "time": float(time),
             "round": self.round}
        )

    # -- timeline bookkeeping (event engine) ---------------------------------
    def catch_up_timeline(self, engine, worker_id: int, now: float) -> None:
        """Draw a restarted worker's downtime onto its timeline and rejoin it.

        The worker's clock froze at the crash; this advances it with a
        ``down`` segment to the recorded restart, then a ``wait`` to ``now``
        (it restarted mid-someone-else's round and waits for the next
        synchronization point).
        """
        wid = int(worker_id)
        debt = self._timeline_debt.pop(wid, None)
        if not debt or len(debt) < 2:
            if debt:  # crash recorded but no restart yet: keep the debt
                self._timeline_debt[wid] = debt
            return
        restart = debt[1]
        tl = engine.timeline(wid)
        if restart > tl.t:
            tl.advance(restart - tl.t, "down", "down")
        tl.wait_until(now, "restart")

    def close_open_downtime(self, engine, until: float) -> None:
        """Extend still-down workers' timelines with a ``down`` segment to
        the end of the run so permanently lost workers render in the Gantt
        chart.  ``until`` is the final global clock; the downtime extends to
        the latest worker clock when that runs ahead (asynchronous runs)."""
        horizon = max(
            [float(until)] + [tl.t for tl in engine.timelines]
        )
        for wid, debt in list(self._timeline_debt.items()):
            tl = engine.timeline(wid)
            if not tl.segments and tl.t == 0.0:
                continue  # lock-step run: timelines were never used
            end = debt[1] if len(debt) > 1 else horizon
            if end > tl.t:
                tl.advance(end - tl.t, "down", "down")

    def describe(self) -> dict:
        return {
            "model": self.model.describe(),
            "rounds_seen": self.round,
            "events": [dict(e) for e in self.events],
        }


def crashed_at_start(injector: FaultInjector, worker_id: int, start: float):
    """Cycle-start crash check for asynchronous solvers.

    Returns the worker's restart time (``inf`` = never) when it is already
    down at ``start`` — recording the crash — or ``None`` when it is up.
    """
    if not injector.is_down(worker_id, start):
        return None
    injector.note_crash(worker_id, injector.crash_time_of(worker_id, start))
    return injector.restart_time(worker_id, start)


def crash_guard(
    injector: FaultInjector,
    engine,
    worker_id: int,
    start: float,
    busy_seconds: float,
    comm_seconds: float,
    *,
    busy_label: str,
    comm_label: str,
):
    """Apply the fault schedule to one asynchronous work cycle.

    The cycle is ``busy_seconds`` of compute followed by ``comm_seconds`` of
    push starting at ``start`` on ``worker_id``'s timeline.  Returns ``None``
    when the cycle completes; otherwise the worker crashed mid-cycle: the
    crash is recorded, the partial busy/comm segments up to the crash are
    drawn (the timeline then freezes, and the caller must NOT post the
    arrival — the in-flight contribution is dropped), and the worker's
    restart time (``inf`` = never) is returned.

    Shared by :class:`~repro.admm.async_newton_admm.AsyncNewtonADMM` and
    :class:`~repro.baselines.async_sgd.AsynchronousSGD` so the subtle
    crash-window accounting cannot drift between them.
    """
    crash = injector.first_crash_in(
        worker_id, start, start + busy_seconds + comm_seconds
    )
    if crash is None:
        return None
    injector.note_crash(worker_id, crash)
    busy = min(busy_seconds, crash - start)
    if busy > 0:
        engine.compute(worker_id, busy, label=busy_label)
    comm = min(comm_seconds, max(crash - start - busy_seconds, 0.0))
    if comm > 0:
        engine.communicate(worker_id, comm, label=comm_label)
    return injector.restart_time(worker_id, crash)


def pop_next_arrival(engine, dead: Dict[int, float], revive, *, now=None):
    """Pop the earliest event, reviving restartable dead workers first.

    Shared by the asynchronous solvers.  ``dead`` maps crashed worker ids to
    their restart times (``inf`` = never); ``revive(worker_id, restart_time)``
    must restart the worker's cycle (which may post new, possibly earlier,
    events) and remove it from ``dead``.  Raises :class:`WorkerLostError`
    when every worker is lost with no restart scheduled.
    """
    while True:
        restartable = sorted(
            (r, w) for w, r in dead.items() if math.isfinite(r)
        )
        if engine.n_pending == 0:
            if not restartable:
                wid = min(dead) if dead else 0
                raise WorkerLostError(
                    wid,
                    engine.now if now is None else now,
                    reason="no surviving workers and no scheduled restarts",
                )
            r, wid = restartable[0]
            revive(wid, r)
            continue
        if restartable and restartable[0][0] <= engine.peek_time():
            r, wid = restartable[0]
            revive(wid, r)
            continue
        return engine.pop()
