"""Simulated distributed runtime.

The paper runs on a GPU cluster with an MPI backend.  This package provides a
deterministic, in-process stand-in: real NumPy math executes on every
"worker", while a network model (latency + bandwidth, tree collectives) and a
device model (GPU-like FLOP throughput) convert the counted work and message
sizes into *modelled* cluster time.  See DESIGN.md §2 for why this substitution
preserves the paper's comparisons.

Beyond the defaults, the runtime exposes the systems knobs a practitioner
would tune: alternative collective algorithms (ring / recursive doubling),
heterogeneous per-worker devices, and straggler / slowdown injection.
"""

from repro.distributed.device import DeviceModel, tesla_p100, cpu_xeon_gold
from repro.distributed.network import (
    NetworkModel,
    infiniband_100g,
    ethernet_10g,
    wan_slow,
)
from repro.distributed.collectives import (
    TunedNetworkModel,
    bruck_allgather_time,
    recursive_doubling_allreduce_time,
    ring_allgather_time,
    ring_allreduce_time,
    tree_allreduce_time,
    tuned_network,
)
from repro.distributed.stragglers import StragglerModel
from repro.distributed.faults import (
    CheckpointModel,
    FailureModel,
    FaultInjector,
    PartitionError,
    PartitionModel,
    WorkerLostError,
)
from repro.distributed.engine import Event, EventEngine
from repro.distributed.schedule import (
    Barrier,
    Collective,
    DynamicStep,
    GlobalStep,
    Join,
    LocalStep,
    PlanExecution,
    Repeat,
    RoundPlan,
    ScheduleError,
    execute_plan,
)
from repro.distributed.schedule_diff import (
    ClusterProfile,
    PlanCostEstimate,
    PlanDiff,
    diff_plans,
    estimate_plan_time,
)
from repro.distributed.autotune import (
    OverlapProposal,
    TournamentEntry,
    TournamentResult,
    propose_overlap,
    run_tournament,
)
from repro.distributed.comm import Communicator, CommunicationLog
from repro.distributed.worker import Worker
from repro.distributed.cluster import SimulatedCluster

__all__ = [
    "DeviceModel",
    "tesla_p100",
    "cpu_xeon_gold",
    "NetworkModel",
    "infiniband_100g",
    "ethernet_10g",
    "wan_slow",
    "TunedNetworkModel",
    "tuned_network",
    "tree_allreduce_time",
    "ring_allreduce_time",
    "recursive_doubling_allreduce_time",
    "ring_allgather_time",
    "bruck_allgather_time",
    "StragglerModel",
    "FailureModel",
    "FaultInjector",
    "PartitionModel",
    "PartitionError",
    "CheckpointModel",
    "WorkerLostError",
    "Event",
    "EventEngine",
    "Barrier",
    "Collective",
    "DynamicStep",
    "GlobalStep",
    "Join",
    "LocalStep",
    "PlanExecution",
    "Repeat",
    "RoundPlan",
    "ScheduleError",
    "execute_plan",
    "ClusterProfile",
    "PlanCostEstimate",
    "PlanDiff",
    "diff_plans",
    "estimate_plan_time",
    "OverlapProposal",
    "TournamentEntry",
    "TournamentResult",
    "propose_overlap",
    "run_tournament",
    "Communicator",
    "CommunicationLog",
    "Worker",
    "SimulatedCluster",
]
