"""Interconnect cost model with tree-structured collectives.

The paper's Remark 1: one ADMM iteration needs a single gather + scatter,
executable in ``O(log N)`` time.  The network model here charges exactly that:
tree-based collectives cost ``ceil(log2(N))`` rounds of
``latency + bytes / bandwidth``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth interconnect model.

    Attributes
    ----------
    name:
        Label used in reports.
    latency:
        Per-message latency in seconds.
    bandwidth:
        Link bandwidth in bytes/s.
    """

    name: str
    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        check_positive(self.latency, name="latency", strict=False)
        check_positive(self.bandwidth, name="bandwidth")

    # -- primitive -----------------------------------------------------------
    def point_to_point(self, nbytes: float) -> float:
        """Time for a single message of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency + nbytes / self.bandwidth

    @staticmethod
    def _tree_depth(n_workers: int) -> int:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        return max(int(math.ceil(math.log2(n_workers))), 0)

    # -- collectives -----------------------------------------------------------
    def gather(self, n_workers: int, nbytes_per_worker: float) -> float:
        """Gather one buffer from each worker at the master (binomial tree).

        At each of the ``log2 N`` levels the surviving senders transmit their
        accumulated payload; the modelled cost charges the deepest path, whose
        payload doubles every level (bounded by the total).
        """
        depth = self._tree_depth(n_workers)
        if depth == 0:
            return 0.0
        total = 0.0
        payload = nbytes_per_worker
        for _ in range(depth):
            total += self.point_to_point(payload)
            payload = min(payload * 2, nbytes_per_worker * n_workers)
        return total

    def scatter(self, n_workers: int, nbytes_per_worker: float) -> float:
        """Scatter a distinct buffer from the master to every worker."""
        # Symmetric to gather under the tree schedule.
        return self.gather(n_workers, nbytes_per_worker)

    def broadcast(self, n_workers: int, nbytes: float) -> float:
        """Broadcast one buffer of ``nbytes`` to every worker (binomial tree)."""
        depth = self._tree_depth(n_workers)
        return depth * self.point_to_point(nbytes)

    def reduce(self, n_workers: int, nbytes: float) -> float:
        """Tree reduction of equal-sized buffers to the master."""
        depth = self._tree_depth(n_workers)
        return depth * self.point_to_point(nbytes)

    def allreduce(self, n_workers: int, nbytes: float) -> float:
        """Reduce + broadcast (the usual MPI_Allreduce cost upper bound)."""
        return self.reduce(n_workers, nbytes) + self.broadcast(n_workers, nbytes)

    def allgather(self, n_workers: int, nbytes_per_worker: float) -> float:
        """All workers end up with every worker's buffer (ring model)."""
        if n_workers <= 1:
            return 0.0
        return (n_workers - 1) * self.point_to_point(nbytes_per_worker)


def infiniband_100g() -> NetworkModel:
    """100 Gb/s InfiniBand (the paper's interconnect): ~1.5 us latency."""
    return NetworkModel(name="infiniband_100g", latency=1.5e-6, bandwidth=100e9 / 8)


def ethernet_10g() -> NetworkModel:
    """10 GbE: the 'slower interconnect' regime the paper argues amplifies
    Newton-ADMM's single-round-per-iteration advantage."""
    return NetworkModel(name="ethernet_10g", latency=50e-6, bandwidth=10e9 / 8)


def wan_slow() -> NetworkModel:
    """A high-latency wide-area link (federated-style deployments)."""
    return NetworkModel(name="wan_slow", latency=20e-3, bandwidth=1e9 / 8)
