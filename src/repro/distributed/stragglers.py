"""Straggler and slowdown injection for the simulated cluster.

Synchronous methods (Newton-ADMM, GIANT, synchronous SGD) advance at the pace
of their slowest worker, so heterogeneity and transient slowdowns inflate the
modelled epoch time directly.  A :class:`StragglerModel` attached to a
:class:`~repro.distributed.cluster.SimulatedCluster` multiplies every worker's
modelled compute time by a per-round slowdown factor; the factors are drawn
from a configurable distribution (or fixed per worker for persistent
stragglers), deterministically from the model's seed.

This is the failure-injection knob used by the straggler-sensitivity ablation:
Newton-ADMM's single synchronization point per iteration makes it less exposed
to stragglers than GIANT's three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.distributed.injection import injection_rng


@dataclass
class StragglerModel:
    """Per-round multiplicative compute slowdowns.

    Attributes
    ----------
    slowdown:
        Multiplier applied to a straggling worker's compute time (>= 1).
    probability:
        Probability that any given worker straggles in any given round
        (ignored for workers listed in ``persistent_stragglers``).
    persistent_stragglers:
        Worker ids that are *always* slowed down (models a thermally
        throttled or oversubscribed node).
    jitter:
        Standard deviation of a lognormal jitter applied to every worker every
        round (0 disables it); models background noise rather than outright
        stragglers.
    random_state:
        Seed for the per-round draws.
    """

    slowdown: float = 4.0
    probability: float = 0.0
    persistent_stragglers: Sequence[int] = field(default_factory=tuple)
    jitter: float = 0.0
    random_state: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {self.probability}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        self.persistent_stragglers = tuple(int(i) for i in self.persistent_stragglers)
        # Default (unsalted) injection stream: bit-identical to the historical
        # check_random_state derivation.  FailureModel draws from a *salted*
        # stream, so attaching both models with the same seed composes
        # reproducibly (see repro.distributed.injection).
        self._rng = injection_rng(self.random_state)
        self._round = 0
        self._draws = 0
        self._history: list = []

    def describe(self) -> dict:
        """JSON-serializable spec (recorded in cluster/profile provenance)."""
        return {
            "slowdown": self.slowdown,
            "probability": self.probability,
            "persistent_stragglers": list(self.persistent_stragglers),
            "jitter": self.jitter,
            "random_state": self.random_state,
        }

    # -- sampling ------------------------------------------------------------
    def _draw(self, n_workers: int) -> np.ndarray:
        """One round of per-worker factors; advances the RNG, records nothing."""
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        factors = np.ones(n_workers)
        if self.jitter > 0.0:
            factors *= self._rng.lognormal(mean=0.0, sigma=self.jitter, size=n_workers)
        if self.probability > 0.0:
            hit = self._rng.random(n_workers) < self.probability
            factors[hit] *= self.slowdown
        for worker_id in self.persistent_stragglers:
            if 0 <= worker_id < n_workers:
                factors[worker_id] *= self.slowdown
        return factors

    def sample_factors(self, n_workers: int) -> np.ndarray:
        """Slowdown factors (one per worker) for the next synchronization round."""
        factors = self._draw(n_workers)
        self._round += 1
        self._draws += 1
        self._history.append(factors.copy())
        return factors

    def factors_for(self, worker_ids: Sequence[int], n_workers: int) -> np.ndarray:
        """Slowdown factors for one query, keyed by ``worker_id``.

        One full round of ``n_workers`` factors is drawn and the entries for
        ``worker_ids`` are returned, so ``persistent_stragglers`` hit the
        *named* workers even when only a subset participates in the round
        (positional application of :meth:`sample_factors` mis-assigned them
        on subsets).  A full-cluster call consumes the RNG exactly like
        :meth:`sample_factors` always did, keeping existing runs reproducible.

        Accounting: every call counts one *draw*; only full-membership
        queries (``len(worker_ids) == n_workers`` — an actual synchronization
        round) count one *round*.  Asynchronous solvers query one worker per
        local cycle, which previously inflated ``summary()["rounds"]`` far
        beyond the number of synchronization rounds that actually happened.

        Only the factors actually *applied* (the selected entries) enter the
        history, so :meth:`summary` reflects delivered slowdowns and
        per-worker asynchronous schedules do not flood it with full phantom
        rounds.
        """
        ids = np.asarray([int(i) for i in worker_ids], dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= n_workers):
            raise ValueError(
                f"worker ids {sorted(set(ids.tolist()))} out of range for "
                f"{n_workers} workers"
            )
        selected = self._draw(n_workers)[ids]
        self._draws += 1
        if ids.size == n_workers:
            self._round += 1
        self._history.append(selected.copy())
        return selected

    # -- reporting -------------------------------------------------------
    @property
    def n_rounds(self) -> int:
        """Full-membership synchronization rounds sampled so far."""
        return self._round

    @property
    def n_draws(self) -> int:
        """Total sampling queries (rounds plus subset/per-cycle draws)."""
        return self._draws

    def summary(self) -> Dict[str, float]:
        """Mean/max slowdown factors observed so far (for run provenance).

        ``rounds`` counts full-membership synchronization rounds; ``draws``
        counts every sampling query (asynchronous schedules issue one per
        worker cycle, so for them ``draws`` ≫ ``rounds``).
        """
        if not self._history:
            return {
                "rounds": 0, "draws": 0, "mean_factor": 1.0, "max_factor": 1.0
            }
        # Draws may record different worker counts (subset rounds, async
        # per-cycle queries), so flatten rather than stack.
        applied = np.concatenate([np.ravel(h) for h in self._history])
        return {
            "rounds": float(self._round),
            "draws": float(self._draws),
            "mean_factor": float(applied.mean()),
            "max_factor": float(applied.max()),
        }

    def reset(self) -> None:
        """Restart the draw sequence (used by ``SimulatedCluster.reset_accounting``)."""
        self._rng = injection_rng(self.random_state)
        self._round = 0
        self._draws = 0
        self._history = []
