"""The simulated cluster: workers + communicator + clocks.

``SimulatedCluster`` owns the data sharding, one :class:`Worker` per node, a
:class:`Communicator` over a configurable interconnect, and the two clocks
(measured wall time, modelled cluster time).  Distributed solvers are written
against this object only, so swapping the interconnect or device model — or
the executor used to actually run the per-worker work — never touches
algorithm code.
"""

from __future__ import annotations

import inspect
import math
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.backend import ArrayBackend, BackendLike, get_backend, resolve_precision
from repro.datasets.base import ClassificationDataset
from repro.datasets.sharding import shard_dataset
from repro.distributed.comm import Communicator
from repro.distributed.device import DeviceModel
from repro.distributed.engine import EventEngine
from repro.distributed.faults import (
    FAULT_POLICIES,
    FailureModel,
    PartitionError,
    WorkerLostError,
)
from repro.distributed.network import NetworkModel, infiniband_100g
from repro.distributed.stragglers import StragglerModel
from repro.distributed.worker import Worker
from repro.objectives.base import Objective, RegularizedObjective
from repro.objectives.logistic import BinaryLogistic
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.base import CountingObjective
from repro.utils.timer import SimulatedClock, Stopwatch

LossFactory = Callable[[ClassificationDataset, int], Objective]


def _softmax_factory(
    shard: ClassificationDataset,
    n_total: int,
    backend: BackendLike = None,
    precision: Optional[str] = None,
) -> Objective:
    return SoftmaxCrossEntropy(
        shard.X, shard.y, shard.n_classes, scale=1.0 / n_total, backend=backend,
        precision=precision,
    )


def _logistic_factory(
    shard: ClassificationDataset,
    n_total: int,
    backend: BackendLike = None,
    precision: Optional[str] = None,
) -> Objective:
    return BinaryLogistic(
        shard.X, shard.y, scale=1.0 / n_total, backend=backend, precision=precision
    )


LOSS_FACTORIES = {  # repro-lint: ignore[RPR003] populated at import, identical in every process
    "softmax": _softmax_factory,
    "logistic": _logistic_factory,
}


def _call_loss_factory(
    factory: LossFactory,
    shard: ClassificationDataset,
    n_total: int,
    backend,
    precision: Optional[str] = None,
) -> Objective:
    """Invoke a loss factory, forwarding ``backend=`` / ``precision=`` when
    the factory accepts them.

    Custom two-argument callables (the documented ``(shard, n_total)``
    signature) keep working; factories that take ``backend`` or ``precision``
    keywords get the cluster's values so their data loads onto the right
    device at the right storage dtype.
    """
    try:
        params = inspect.signature(factory).parameters
        has_var_kw = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        )
        accepts_backend = "backend" in params or has_var_kw
        accepts_precision = "precision" in params or has_var_kw
    except (TypeError, ValueError):  # builtins / C callables
        accepts_backend = False
        accepts_precision = False
    kwargs = {}
    if accepts_backend:
        kwargs["backend"] = backend
    if accepts_precision:
        kwargs["precision"] = precision
    if kwargs:
        return factory(shard, n_total, **kwargs)
    return factory(shard, n_total)


class SimulatedCluster:
    """A deterministic in-process stand-in for the paper's GPU cluster.

    Parameters
    ----------
    train:
        Full training dataset; it is sharded across the workers.
    n_workers:
        Number of simulated nodes ``N``.
    loss:
        ``"softmax"`` (default), ``"logistic"``, or a callable
        ``(shard, n_total) -> Objective`` building each worker's local loss.
        The convention is that the *sum over workers* of local losses equals
        the global mean loss (factories receive ``n_total`` for this reason).
    network, device:
        Cost models; defaults are the paper's 100 Gb/s InfiniBand and P100.
        ``device`` may also be a sequence of one :class:`DeviceModel` per
        worker to simulate a heterogeneous cluster.
    sharding:
        Row-partitioning strategy (see :mod:`repro.datasets.sharding`).
    executor:
        ``"serial"`` (default) or ``"threads"`` — how per-worker work is
        actually executed.  Results are identical; threads only change real
        wall-clock.
    straggler:
        Optional :class:`~repro.distributed.stragglers.StragglerModel` that
        multiplies per-worker modelled compute times by sampled slowdowns at
        every synchronization round.
    faults:
        Optional :class:`~repro.distributed.faults.FailureModel` injecting
        worker crashes (and restarts), correlated group failures, network
        partitions and checkpointed-recovery costs into both execution
        paths.  How a synchronous round reacts to a lost or unreachable
        worker is the executing plan's ``on_failure`` policy
        (``"raise"``/``"stall"``/``"degrade"``); asynchronous solvers always
        ride through with the survivors/reachable workers.  A model whose
        specs never fire leaves runs bit-identical.
    backend:
        Array backend name or instance every worker's objective and state
        vectors live on (``None`` -> the session default, normally NumPy).
        When ``device`` is omitted the cost model keys off this backend via
        :meth:`~repro.backend.base.ArrayBackend.default_device_model`.
    precision:
        Storage/compute precision mode forwarded to every worker's loss
        factory (``"fp64"``, ``"fp32"``, ``"mixed"``, or ``None`` to resolve
        the session default set by the CLI's ``--precision``); see
        :mod:`repro.backend.precision`.
    engine:
        ``"lockstep"`` (default) keeps the historical single-global-clock
        accounting; ``"event"`` routes rounds and collectives through the
        discrete-event :class:`~repro.distributed.engine.EventEngine`, which
        additionally records per-worker busy/wait/comm timelines.  Both modes
        produce bit-identical iterates and identical modelled times for
        synchronous solvers; asynchronous solvers always use the engine's
        event queue regardless of this mode.  ``"process"`` additionally runs
        every worker as a real OS process (SPMD over a spawn pool — see
        :mod:`repro.distributed.process_engine`): iterates and modelled
        times stay bit-identical to ``"event"``, and measured wall-clock
        timelines are attached to ``trace.info["wall_clock"]``.  The process
        engine requires the NumPy backend, the serial executor, and no
        modelled straggler/fault models (real processes fail for real —
        kill one and the run raises a structured
        :class:`~repro.distributed.faults.WorkerLostError`).
    shards:
        Internal (process engine): pre-computed shards for a rank-local
        replica, skipping :func:`~repro.datasets.sharding.shard_dataset` so
        children reuse the parent's shared-memory shards zero-copy.
    """

    def __init__(
        self,
        train: ClassificationDataset,
        n_workers: int,
        *,
        loss: LossFactory | str = "softmax",
        network: Optional[NetworkModel] = None,
        device: Union[DeviceModel, Sequence[DeviceModel], None] = None,
        sharding: str = "stratified",
        executor: str = "serial",
        max_threads: Optional[int] = None,
        straggler: Optional[StragglerModel] = None,
        faults: Optional[FailureModel] = None,
        backend: BackendLike = None,
        precision: Optional[str] = None,
        engine: str = "lockstep",
        random_state=None,
        shards: Optional[Sequence[ClassificationDataset]] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if executor not in ("serial", "threads"):
            raise ValueError(
                f"executor must be 'serial' or 'threads', got {executor!r}"
            )
        if engine not in ("lockstep", "event", "process"):
            raise ValueError(
                f"engine must be 'lockstep', 'event' or 'process', got {engine!r}"
            )
        self.train = train
        self.n_workers = int(n_workers)
        self.backend: ArrayBackend = get_backend(backend)
        self.precision = resolve_precision(precision)
        if engine == "process":
            # Real parallelism composes with neither the modelled perturbation
            # models (stragglers/faults live in simulated time) nor the thread
            # executor, and the shared-memory shard handoff is NumPy-only.
            if self.backend.name != "numpy":
                raise ValueError(
                    "engine='process' requires the numpy backend (shared-"
                    f"memory shard handoff), got backend {self.backend.name!r}"
                )
            if executor != "serial":
                raise ValueError(
                    "engine='process' already parallelizes across OS "
                    "processes; executor must be 'serial'"
                )
            if straggler is not None:
                raise ValueError(
                    "engine='process' measures real time; modelled straggler "
                    "injection needs engine='lockstep' or 'event'"
                )
            if faults is not None:
                raise ValueError(
                    "engine='process' surfaces real process failures; "
                    "modelled FailureModel injection needs engine='lockstep' "
                    "or 'event' (kill a worker process to exercise the "
                    "chaos path)"
                )
        self.network = network or infiniband_100g()
        if device is None:
            # Cost accounting keys off where the arrays actually live.
            devices: List[DeviceModel] = [
                self.backend.default_device_model()
            ] * self.n_workers
        elif isinstance(device, DeviceModel):
            devices = [device] * self.n_workers
        else:
            devices = list(device)
            if len(devices) != self.n_workers:
                raise ValueError(
                    f"got {len(devices)} device models for {self.n_workers} workers"
                )
        self.device = devices[0]
        self.devices = devices
        self.straggler = straggler
        self.faults = faults
        self.fault_state = faults.start(self.n_workers) if faults is not None else None
        # Per-plan fault policy; execute_plan swaps it via fault_policy().
        self._fault_policy = "raise"
        #: worker ids whose results survived the most recent degraded round
        self.last_round_survivors: List[int] = list(range(self.n_workers))
        self.executor = executor
        self.max_threads = max_threads
        # Provenance: record how the rows were partitioned ("explicit" when
        # pre-built shards were handed in and no strategy ran).
        self.sharding = sharding if shards is None else "explicit"
        self.random_state = random_state
        self.clock = SimulatedClock()
        self.wall = Stopwatch()
        # The engine always exists (async solvers schedule through its event
        # queue in either mode); engine_mode decides whether the *synchronous*
        # paths — map_workers rounds and collectives — also route through it.
        self.engine_mode = engine
        self.engine = EventEngine(self.n_workers, clock=self.clock)
        self.comm = Communicator(
            self.n_workers,
            self.network,
            self.clock,
            engine=self.engine if self.event_accounting else None,
            fault_state=self.fault_state,
        )
        #: process-engine plumbing (see repro.distributed.process_engine):
        #: the rank role attached while an SPMD fit is live, the lazily
        #: created parent runtime, and per-worker FLOP totals allgathered
        #: from the ranks (each rank only runs its own worker's compute).
        self._process_role = None
        self._process_runtime = None
        self._process_flops = None

        if isinstance(loss, str):
            if loss not in LOSS_FACTORIES:
                raise ValueError(
                    f"unknown loss {loss!r}; expected one of {sorted(LOSS_FACTORIES)} "
                    "or a callable"
                )
            loss_factory = LOSS_FACTORIES[loss]
        else:
            loss_factory = loss
        self._loss_factory = loss_factory
        self._loss_name = loss if isinstance(loss, str) else getattr(loss, "__name__", "custom")

        if shards is None:
            shards = shard_dataset(
                train, self.n_workers, strategy=sharding, random_state=random_state
            )
        elif len(shards) != self.n_workers:
            raise ValueError(
                f"got {len(shards)} pre-computed shards for {self.n_workers} workers"
            )
        self.workers: List[Worker] = []
        for i, shard in enumerate(shards):
            local = _call_loss_factory(
                loss_factory, shard, train.n_samples, self.backend, self.precision
            )
            self.workers.append(
                Worker(
                    i,
                    shard,
                    CountingObjective(local),
                    self.devices[i],
                    backend=self.backend,
                )
            )
        dims = {w.dim for w in self.workers}
        if len(dims) != 1:
            raise ValueError(f"workers disagree on problem dimension: {dims}")
        self.dim = dims.pop()

    # -- basic properties ---------------------------------------------------
    @property
    def event_accounting(self) -> bool:
        """Whether synchronous rounds route through the event engine.

        True for ``"event"`` and ``"process"``: the process engine keeps the
        event engine's modelled accounting bit-identical on every rank while
        real time is measured separately.
        """
        return self.engine_mode in ("event", "process")

    @property
    def process_runtime(self):
        """The parent-side process-engine runtime (``None`` off the process
        engine, and ``None`` inside spawned worker replicas)."""
        if self.engine_mode != "process" or self._process_runtime is False:
            return None
        if self._process_runtime is None:
            from repro.distributed.process_engine import (
                ProcessRuntime,
                in_worker_process,
            )

            if in_worker_process():
                self._process_runtime = False
                return None
            self._process_runtime = ProcessRuntime(self)
        return self._process_runtime

    def close(self) -> None:
        """Stop spawned worker processes and release shared memory (process
        engine; a no-op on the simulated engines)."""
        runtime = self._process_runtime
        if runtime not in (None, False):
            runtime.shutdown()

    def _loss_factory_spec(self):
        """What the process engine ships to children to rebuild the loss."""
        return (
            self._loss_name
            if self._loss_name in LOSS_FACTORIES
            else self._loss_factory
        )

    @property
    def n_total(self) -> int:
        """Total number of training samples across all shards."""
        return self.train.n_samples

    @property
    def n_classes(self) -> int:
        return self.train.n_classes

    def worker_sizes(self) -> List[int]:
        return [w.n_local_samples for w in self.workers]

    # -- execution -------------------------------------------------------
    def map_workers(
        self,
        fn: Callable[[Worker], object],
        *,
        advance_clock: bool = True,
        workers: Optional[Sequence[Worker]] = None,
    ) -> List[object]:
        """Run ``fn(worker)`` on every worker and advance the modelled clock.

        The modelled compute time charged is the *maximum* over workers of the
        FLOPs each one consumed during ``fn`` (they run in parallel on the
        modelled cluster), which is what the paper's epoch times measure.
        """
        targets = list(self.workers if workers is None else workers)
        for w in targets:
            w.mark_flops()

        role = self._process_role
        if role is not None and role.active:
            # SPMD process mode: compute this rank's worker only, allgather
            # (result, modelled time, flops) triples over the real transport,
            # and drive the same event-engine accounting as every other rank.
            return role.map_workers(self, fn, targets, advance_clock)

        if self.executor == "threads" and len(targets) > 1:
            with ThreadPoolExecutor(max_workers=self.max_threads or len(targets)) as pool:
                results = list(pool.map(fn, targets))
        else:
            results = [fn(w) for w in targets]

        if advance_clock:
            times = [w.modelled_compute_time() for w in targets]
            if self.straggler is not None:
                # Factors are keyed by worker_id (not position), so persistent
                # stragglers hit the named workers even on subset rounds.
                factors = self.straggler.factors_for(
                    [w.worker_id for w in targets], self.n_workers
                )
                times = [t * f for t, f in zip(times, factors)]
            if self.fault_state is not None:
                kept = self._apply_round_faults(targets, times)
                return [results[i] for i in kept]
            self._advance_round_clock(targets, times)
            self.last_round_survivors = [w.worker_id for w in targets]
        return results

    def _advance_round_clock(self, targets: Sequence[Worker], times: Sequence[float]) -> None:
        """Charge one fault-free synchronous round (the historical accounting)."""
        if self.event_accounting:
            self.engine.run_round(
                {w.worker_id: t for w, t in zip(targets, times)},
                category="compute",
            )
        else:
            self.clock.advance(max(times), category="compute")

    # -- fault handling ----------------------------------------------------
    @contextmanager
    def fault_policy(self, policy: str):
        """Scoped fault policy for synchronous rounds (used by ``execute_plan``).

        ``"raise"`` (default) aborts with :class:`WorkerLostError` when a
        needed worker is down, ``"stall"`` idles the cluster until the worker
        restarts, ``"degrade"`` proceeds with the survivors (their results
        only; see ``last_round_survivors``).
        """
        if policy not in FAULT_POLICIES:
            raise ValueError(
                f"fault policy must be one of {FAULT_POLICIES}, got {policy!r}"
            )
        previous = self._fault_policy
        self._fault_policy = policy
        try:
            yield self
        finally:
            self._fault_policy = previous

    def stall_for_restart(self, down_ids: Sequence[int], *, label: str = "stall") -> float:
        """Idle the whole cluster until the earliest recovery among ``down_ids``.

        Raises :class:`WorkerLostError` when none of them ever restarts (the
        ``"stall"`` policy cannot make progress).  With a
        :class:`~repro.distributed.faults.CheckpointModel` attached the wait
        extends past the raw restart by the worker's restore + replay charge.
        Modelled time is charged to the ``"stall"`` clock category on both
        engines identically.
        """
        fs = self.fault_state
        now = self.clock.time
        restarts: Dict[int, float] = {}
        crashes: Dict[int, float] = {}
        ready: Dict[int, float] = {}
        for w in down_ids:
            wid = int(w)
            r = fs.restart_time(wid, now)
            restarts[wid] = r
            crashes[wid] = fs.crash_time_of(wid, now)
            ready[wid] = (
                r + fs.recovery_seconds(wid, crashes[wid])
                if math.isfinite(r)
                else r
            )
        finite = [r for r in ready.values() if math.isfinite(r)]
        if not finite:
            wid = min(ready)
            raise WorkerLostError(
                wid,
                now,
                round=fs.round,
                reason="crashed with no scheduled restart; 'stall' cannot complete",
            )
        target = min(finite)
        if self.engine_mode == "event":
            for wid in range(self.n_workers):
                # Crashed workers' timelines stay frozen; their downtime is
                # drawn when they rejoin (catch_up_timeline).
                if wid not in ready and not fs.is_down(wid, now):
                    self.engine.wait_until(wid, target, label)
        if target > now:
            self.clock.advance(target - now, category="stall")
        for wid, rdy in ready.items():
            if rdy <= target:
                fs.note_restart(wid, restarts[wid])
                fs.note_restore(
                    wid, crashes[wid], rdy, rdy - restarts[wid]
                )
                if self.engine_mode == "event":
                    # Draw the downtime before anything barriers the frozen
                    # timeline forward (which would render it as a wait).
                    fs.catch_up_timeline(self.engine, wid, target)
        return self.clock.time

    def stall_for_heal(
        self, cut_ids: Sequence[int], *, label: str = "partition-stall"
    ) -> float:
        """Idle the reachable cluster until the earliest heal among ``cut_ids``.

        The cut workers are alive — their timelines fill with ``unreachable``
        segments rather than freezing — but the synchronization point cannot
        form until the partition closes.  Raises :class:`PartitionError` when
        none of the windows ever heals.  Modelled time is charged to the
        ``"stall"`` clock category on both engines identically.
        """
        fs = self.fault_state
        now = self.clock.time
        heals: Dict[int, float] = {}
        for w in cut_ids:
            wid = int(w)
            fs.note_partition(wid, fs.cut_start(wid, now))
            heals[wid] = fs.heal_time(wid, now)
        finite = [h for h in heals.values() if math.isfinite(h)]
        if not finite:
            wid = min(heals)
            raise PartitionError(
                wid,
                now,
                heals_at=heals[wid],
                round=fs.round,
                reason="partitioned with no scheduled heal; 'stall' cannot complete",
            )
        target = min(finite)
        if self.engine_mode == "event":
            for wid in range(self.n_workers):
                if fs.is_down(wid, now):
                    continue  # crashed timelines stay frozen
                if wid in heals:
                    self.engine.mark_unreachable(wid, target, label)
                else:
                    self.engine.wait_until(wid, target, label)
        if target > now:
            self.clock.advance(target - now, category="stall")
        for wid, h in heals.items():
            if h <= target:
                fs.note_heal(wid, h)
        return self.clock.time

    def _apply_round_faults(
        self, targets: Sequence[Worker], times: Sequence[float]
    ) -> List[int]:
        """Charge one synchronous round under the active fault policy.

        Returns the indices (into ``targets``) of the workers whose results
        survive the round; also sets ``last_round_survivors``.  A round in
        which no crash fires takes exactly the fault-free path, keeping
        no-fault runs bit-identical.
        """
        fs = self.fault_state
        policy = self._fault_policy
        ids = [w.worker_id for w in targets]
        label = "compute"
        fs.begin_round(ids, self.clock.time)

        # ---- workers already down at the round's synchronization point ------
        excluded: List[int] = []
        while True:
            now = self.clock.time
            down = [
                wid for wid in ids
                if wid not in excluded and fs.is_down(wid, now)
            ]
            if not down:
                break
            for wid in down:
                fs.note_crash(wid, fs.crash_time_of(wid, now))
            if policy == "raise":
                raise WorkerLostError(
                    down[0], now, round=fs.round,
                    reason="down at synchronization point (policy 'raise')",
                )
            if policy == "degrade":
                excluded.extend(down)
                break
            self.stall_for_restart(down, label=label + "-stall")
        now = self.clock.time

        keep = [i for i, wid in enumerate(ids) if wid not in excluded]
        if not keep:
            raise WorkerLostError(
                ids[0] if ids else 0, now, round=fs.round,
                reason="no surviving workers in the round",
            )
        # Restarted participants rejoin: record restarts that passed silently
        # (degraded rounds) and draw their downtime onto the timeline.
        for i in keep:
            fs.rejoin_if_restarted(ids[i], now)
        if self.engine_mode == "event":
            for i in keep:
                fs.catch_up_timeline(self.engine, ids[i], now)

        # ---- mid-round crashes ----------------------------------------------
        crashes: Dict[int, float] = {}
        for i in keep:
            c = fs.first_crash_in(ids[i], now, now + times[i])
            if c is not None:
                crashes[ids[i]] = c
        if not crashes and not excluded:
            self._advance_round_clock(targets, times)
            self.last_round_survivors = list(ids)
            return list(range(len(ids)))
        if crashes and policy == "raise":
            wid = min(crashes, key=lambda w: (crashes[w], w))
            fs.note_crash(wid, crashes[wid])
            raise WorkerLostError(
                wid, crashes[wid], round=fs.round,
                reason="crashed mid-round (policy 'raise')",
            )

        # Effective completion offsets: survivors finish on time; under
        # "stall" a crashed worker restores from its last checkpoint (free
        # without a CheckpointModel) and redoes its full compute after
        # restarting, under "degrade" its contribution is simply dropped.
        effective: Dict[int, float] = {}
        redo: Dict[int, tuple] = {}
        survivor_idx: List[int] = []
        for i in keep:
            wid = ids[i]
            if wid in crashes:
                c = crashes[wid]
                fs.note_crash(wid, c)
                if policy == "degrade":
                    continue
                r = fs.restart_time(wid, c)
                if not math.isfinite(r):
                    raise WorkerLostError(
                        wid, c, round=fs.round,
                        reason="crashed with no scheduled restart; 'stall' cannot complete",
                    )
                recovery = fs.recovery_seconds(wid, c)
                fs.note_restart(wid, r)
                fs.note_restore(wid, c, r + recovery, recovery)
                effective[wid] = (r - now) + recovery + times[i]
                redo[wid] = (c, r, recovery)
            else:
                effective[wid] = times[i]
            survivor_idx.append(i)
        if not survivor_idx:
            raise WorkerLostError(
                ids[keep[0]], now, round=fs.round,
                reason="no surviving workers in the round",
            )

        total = max(effective[ids[i]] for i in survivor_idx)
        compute_part = min(total, max(times[i] for i in keep))
        stall_part = total - compute_part

        if self.engine_mode == "event":
            for i in keep:
                wid = ids[i]
                if wid in redo:
                    c, r, recovery = redo[wid]
                    self.engine.compute(wid, c - now, label)
                    self.engine.mark_down(wid, r)
                    if recovery > 0:
                        self.engine.compute(wid, recovery, "restore")
                    self.engine.compute(wid, times[i], label + "-redo")
                elif wid in crashes:  # degrade: partial work, then frozen
                    self.engine.compute(wid, crashes[wid] - now, label)
                else:
                    self.engine.compute(wid, times[i], label)
            self.engine.barrier([ids[i] for i in survivor_idx], label=label)
        if compute_part > 0:
            self.clock.advance(compute_part, category="compute")
        if stall_part > 0:
            self.clock.advance(stall_part, category="stall")
        self.last_round_survivors = [ids[i] for i in survivor_idx]
        return survivor_idx

    def alive_worker_ids(self) -> List[int]:
        """Worker ids not currently inside a crash interval (all, without faults)."""
        if self.fault_state is None:
            return list(range(self.n_workers))
        now = self.clock.time
        return [
            wid for wid in range(self.n_workers)
            if not self.fault_state.is_down(wid, now)
        ]

    def reachable_worker_ids(self) -> List[int]:
        """Worker ids neither crashed nor behind a network partition.

        This is the membership a degraded round can actually use: a cut
        worker is alive and computing, but nothing it produces can reach the
        master until the partition heals.
        """
        if self.fault_state is None:
            return list(range(self.n_workers))
        now = self.clock.time
        fs = self.fault_state
        return [
            wid for wid in range(self.n_workers)
            if not fs.is_down(wid, now) and not fs.is_cut(wid, now)
        ]

    def straggler_factor(self, worker_id: int) -> float:
        """One cycle's slowdown factor for ``worker_id`` (1.0 without a model).

        Asynchronous solvers call this once per scheduled compute cycle; the
        draw is keyed by worker id so persistent stragglers stay the named
        workers, exactly as in the synchronous rounds.
        """
        if self.straggler is None:
            return 1.0
        return float(self.straggler.factors_for([worker_id], self.n_workers)[0])

    # -- objectives -------------------------------------------------------
    def global_loss(self) -> Objective:
        """The global mean loss over the full (unsharded) training set."""
        return _call_loss_factory(
            self._loss_factory,
            self.train,
            self.train.n_samples,
            self.backend,
            self.precision,
        )

    def global_objective(self, lam: float) -> RegularizedObjective:
        """Global regularized objective ``mean loss + (lam/2)||w||^2``.

        Used for reporting training-objective traces and for computing the
        reference optimum ``x*`` with single-node Newton.
        """
        loss = self.global_loss()
        return RegularizedObjective(loss, L2Regularizer(loss.dim, lam))

    # -- bookkeeping -------------------------------------------------------
    def total_flops(self) -> float:
        if self._process_flops is not None:
            # Process mode: each rank only ran its own worker's compute;
            # the allgathered per-round FLOP deltas are the cluster totals.
            return float(self._process_flops.sum())
        return float(sum(w.objective.flops for w in self.workers))

    def reset_accounting(self) -> None:
        """Zero clocks, communication logs and per-worker counters."""
        self._process_flops = None
        self.clock.reset()
        self.wall.reset()
        self.comm.reset_log()
        self.engine.reset()
        if self.straggler is not None:
            self.straggler.reset()
        if self.fault_state is not None:
            self.fault_state.reset()
        self.last_round_survivors = list(range(self.n_workers))
        for w in self.workers:
            w.objective.reset_counters()
            w.mark_flops()
            w.state.clear()

    def describe(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "n_total": self.n_total,
            "n_classes": self.n_classes,
            "dim": self.dim,
            "loss": self._loss_name,
            "network": self.network.name,
            "device": self.device.name,
            "backend": self.backend.name,
            "precision": self.precision,
            "engine": self.engine_mode,
            "sharding": self.sharding,
            "executor": self.executor,
            "max_threads": self.max_threads,
            "random_state": self.random_state,
            "worker_sizes": self.worker_sizes(),
            "straggler": (
                self.straggler.describe() if self.straggler is not None else None
            ),
            "faults": self.faults.describe() if self.faults is not None else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulatedCluster(n_workers={self.n_workers}, n_total={self.n_total}, "
            f"dim={self.dim}, network={self.network.name}, device={self.device.name})"
        )
