"""Schedule autotuner: propose overlap rewrites and tournament-search plans.

The IR can describe a schedule (:mod:`repro.distributed.schedule`), check it
(declared-round verification, in-flight guard), and diff and price it
(:mod:`repro.distributed.schedule_diff`).  This module closes the
prescriptive loop — it *improves* schedules:

:func:`propose_overlap`
    Walks a plan and flags every blocking :class:`Collective` whose result is
    not needed before the next :class:`LocalStep`; each flagged collective is
    rewritten to ``overlap=True`` with a :class:`Join` inserted after the
    local compute it can hide behind.  Legality is decided per the ``verify``
    mode: ``"static"`` consults the effect-typed dataflow verifier
    (:func:`repro.analysis.verify.verify_plan`) and never executes anything —
    the mode tournaments use; ``"execute"`` trial-runs each rewrite against
    the runtime in-flight guard on a probe cluster (a consuming step reads
    the in-flight key → ``ScheduleError`` → the rewrite is rolled back);
    ``"both"`` runs the two and *raises* on disagreement — the differential
    backstop that keeps the static model honest.  Rewrites never change the
    declared round count — ``overlap`` does not open rounds and ``Join`` is
    not a collective — which the proposer asserts.

:func:`propose_hoist`
    The rewrite :func:`propose_overlap` by design cannot make: *move* a
    step-independent :class:`LocalStep` earlier, under a collective's
    in-flight window, when every step it crosses is provably independent of
    it (GIANT's hand-written overlap variant hoists the line search's
    ``f_i(w)`` evaluation this way).  Legality is decided entirely by the
    effect model — reordering is invisible to the runtime guard, so only
    static reads/writes reasoning (including per-worker state channels) can
    license it.

:func:`run_tournament`
    A seeded search over quorum size, staleness bound, ADMM penalty /
    over-relaxation, and overlap flags.  Every entrant — the hand-written
    solver configurations first, then the seeded draws — runs on a fresh
    event-engine cluster built from the same declared
    :class:`~repro.distributed.schedule_diff.ClusterProfile`, and is scored
    on the engine's modelled clock: the time to reach the synchronous
    baseline's final objective (``inf`` when never reached, with the final
    objective as tiebreak).  A challenger must be *strictly* faster than the
    incumbent to take the title, so a no-op profile leaves Newton-ADMM's
    single-round plan unbeaten, and the full provenance record — profile,
    seed, every candidate's knobs and score — lands in
    ``trace.info["autotune"]`` on the winning trace.

Determinism: all draws come from one ``numpy`` generator seeded by the
caller, every candidate's cluster is rebuilt from the profile with the same
``random_state``, and the straggler/fault streams are seeded models — same
profile + same seed ⇒ bit-identical scores and the same winner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.schedule import (
    Barrier,
    Collective,
    DynamicStep,
    Join,
    LocalStep,
    Repeat,
    RoundPlan,
    ScheduleError,
    execute_plan,
)
from repro.distributed.schedule_diff import ClusterProfile

__all__ = [
    "HoistProposal",
    "OverlapProposal",
    "propose_hoist",
    "propose_overlap",
    "TournamentEntry",
    "TournamentResult",
    "default_entries",
    "run_tournament",
]

#: legality-check modes for the rewrite proposers
VERIFY_MODES = ("static", "execute", "both")


# ---------------------------------------------------------------------------
# Cost-aware overlap proposal
# ---------------------------------------------------------------------------
@dataclass
class OverlapProposal:
    """Outcome of :func:`propose_overlap`.

    ``candidates`` records every flagged collective with its status:
    ``"proposed"`` (rewrite kept), ``"rejected"`` (the verifier objected;
    rolled back) or ``"unverified"`` (no verification requested; rewrite
    kept but unchecked).  ``verify_mode`` records how legality was decided:
    ``"static"`` (effect-typed dataflow walk), ``"execute"`` (trial
    execution against the runtime in-flight guard), ``"both"``
    (differential: the two must agree) or ``"none"``.
    """

    original: RoundPlan
    proposed: RoundPlan
    candidates: List[dict] = field(default_factory=list)
    verified: bool = False
    verify_mode: str = "none"

    @property
    def n_applied(self) -> int:
        return sum(1 for c in self.candidates if c["status"] != "rejected")

    @property
    def changed(self) -> bool:
        return self.n_applied > 0

    def describe(self) -> dict:
        return {
            "plan": self.original.name,
            "verified": self.verified,
            "verify_mode": self.verify_mode,
            "applied": self.n_applied,
            "candidates": [dict(c) for c in self.candidates],
        }


def _resolve_verify_mode(verify: Optional[str], verify_on) -> str:
    """Normalize the ``verify``/``verify_on`` pair into one mode string.

    ``verify=None`` keeps the pre-static behaviour: trial execution when a
    probe cluster is supplied, unverified otherwise.
    """
    if verify is None:
        return "execute" if verify_on is not None else "none"
    if verify not in VERIFY_MODES:
        raise ValueError(
            f"verify must be one of {VERIFY_MODES}, got {verify!r}"
        )
    if verify in ("execute", "both") and verify_on is None:
        raise ValueError(
            f"verify={verify!r} trial-executes rewrites and needs a "
            "verify_on cluster"
        )
    return verify


def _check_trial(trial: RoundPlan, mode: str, verify_on) -> Tuple[bool, str]:
    """Decide one rewrite's legality under ``mode``; returns (ok, reason).

    The static arm asks only the schedule-structure question (no fault
    profile), because that is the question trial execution answers — the
    differential mode must compare like with like.
    """
    static_ok, static_reason = True, ""
    if mode in ("static", "both"):
        from repro.analysis.verify import verify_plan

        report = verify_plan(trial)
        static_ok, static_reason = report.ok, report.reason()
    exec_ok, exec_reason = True, ""
    if mode in ("execute", "both"):
        try:
            execute_plan(verify_on, trial)
        except ScheduleError as exc:
            exec_ok, exec_reason = False, str(exc)
    if mode == "both" and static_ok != exec_ok:
        raise ScheduleError(
            f"static verifier and trial execution disagree on rewrite of "
            f"plan {trial.name!r}: static says "
            f"{'legal' if static_ok else f'illegal ({static_reason})'}, "
            f"execution says "
            f"{'legal' if exec_ok else f'illegal ({exec_reason})'}"
        )
    if mode == "static":
        return static_ok, static_reason
    return exec_ok and static_ok, exec_reason or static_reason


def _overlap_candidates(steps: Sequence) -> List[Tuple[int, int]]:
    """(collective index, following LocalStep index) pairs worth rewriting.

    A collective qualifies when it blocks today (``overlap=False``), the op
    supports overlap (``reduce_scalar`` does not), it opens its own round
    (a ``joint_with_previous`` collective shares the previous synchronization
    point — backgrounding it would break that pairing), and some
    :class:`LocalStep` follows before the next collective or join (otherwise
    there is no compute to hide the transfer behind and the rewrite gains
    nothing).  Consumption is *not* decided here — only the in-flight guard
    can, at trial execution.
    """
    pairs: List[Tuple[int, int]] = []
    for i, step in enumerate(steps):
        if not isinstance(step, Collective):
            continue
        if step.overlap or step.joint_with_previous or step.op == "reduce_scalar":
            continue
        for j in range(i + 1, len(steps)):
            nxt = steps[j]
            if isinstance(nxt, LocalStep):
                pairs.append((i, j))
                break
            if isinstance(nxt, (Collective, Join)):
                break
    return pairs


def propose_overlap(
    plan: RoundPlan,
    *,
    verify_on=None,
    profile: Optional[ClusterProfile] = None,
    verify: Optional[str] = None,
) -> OverlapProposal:
    """Rewrite ``plan`` to overlap collectives whose results can wait.

    Candidates are applied one at a time — most promising first when a
    ``profile`` prices the transfers (the biggest hide is attempted first) —
    and each application is checked per ``verify``: ``"static"`` runs the
    effect-typed dataflow verifier (no execution, no cluster needed — the
    fast path tournaments use), ``"execute"`` trial-executes on ``verify_on``
    (a throwaway cluster: execution runs the plan's thunks), ``"both"`` does
    both and raises :class:`ScheduleError` when they disagree.  A rejected
    rewrite is rolled back with the verifier's reason recorded.  The default
    (``verify=None``) infers ``"execute"`` when a probe cluster is supplied
    and returns unverified rewrites otherwise.

    Repeat bodies are left untouched: their steps execute ``times`` times,
    and a Join placed after the body would let transfers from earlier trips
    float across later ones — a different schedule than declared.
    """
    mode = _resolve_verify_mode(verify, verify_on)
    working = plan.structural_copy()
    candidates: List[dict] = []
    attempted: set = set()
    while True:
        pairs = [
            (i, j)
            for i, j in _overlap_candidates(working.steps)
            if working.steps[i].name not in attempted
        ]
        if not pairs:
            break
        if profile is not None:
            pairs.sort(
                key=lambda ij: -profile.collective_seconds(
                    working.steps[ij[0]].op
                )
            )
        coll_index, local_index = pairs[0]
        coll = working.steps[coll_index]
        attempted.add(coll.name)
        entry = {
            "name": coll.name,
            "op": coll.op,
            "index": coll_index,
            "status": "unverified" if mode == "none" else "proposed",
        }
        if profile is not None:
            entry["transfer_seconds"] = profile.collective_seconds(coll.op)
        trial = working.structural_copy()
        trial.steps[coll_index].overlap = True
        trial.steps.insert(local_index + 1, Join())
        if mode != "none":
            ok, reason = _check_trial(trial, mode, verify_on)
            if not ok:
                entry["status"] = "rejected"
                entry["reason"] = reason
                candidates.append(entry)
                continue
        working = trial
        candidates.append(entry)
    if plan.declared_rounds is not None:
        if working.declared_rounds != plan.declared_rounds:
            raise ScheduleError(
                f"overlap proposal changed the declared round count of "
                f"{plan.name!r}: {plan.declared_rounds} -> "
                f"{working.declared_rounds}"
            )
    return OverlapProposal(
        original=plan,
        proposed=working,
        candidates=candidates,
        verified=mode != "none",
        verify_mode=mode,
    )


# ---------------------------------------------------------------------------
# Effect-verified hoisting
# ---------------------------------------------------------------------------
@dataclass
class HoistProposal:
    """Outcome of :func:`propose_hoist` (same shape as :class:`OverlapProposal`).

    Each candidate records the collective whose transfer gains a hidden
    window, the :class:`LocalStep` moved under it, and the steps the move
    crossed.
    """

    original: RoundPlan
    proposed: RoundPlan
    candidates: List[dict] = field(default_factory=list)
    verified: bool = True
    verify_mode: str = "static"

    @property
    def n_applied(self) -> int:
        return sum(1 for c in self.candidates if c["status"] == "proposed")

    @property
    def changed(self) -> bool:
        return self.n_applied > 0

    def describe(self) -> dict:
        return {
            "plan": self.original.name,
            "verified": self.verified,
            "verify_mode": self.verify_mode,
            "applied": self.n_applied,
            "candidates": [dict(c) for c in self.candidates],
        }


def _hoist_candidate(steps: Sequence, coll_index: int) -> Optional[dict]:
    """Find a LocalStep legally hoistable under collective ``coll_index``.

    Conditions (all decided by the effect model; ``None`` when no candidate):

    * every step between the collective and the local step has an *exact*
      footprint (context and worker state) — unknown effects veto reordering;
    * some step in between reads the collective's result — otherwise a plain
      overlap proposal already covers the shape and no move is needed;
    * the local step reads neither the collective's result nor anything the
      crossed steps write, and writes nothing the crossed steps read *or*
      write (both orders of two writes to one key are observable downstream).

    The scan stops at joins, barriers, overlapped collectives, dynamic steps
    and repeat bodies: crossing those changes in-flight structure in ways
    this rewrite does not model.
    """
    from repro.analysis.effects import step_effects

    coll = steps[coll_index]
    consumed_early = False
    crossed_reads: set = set()
    crossed_writes: set = set()
    crossed_names: List[str] = []
    for k in range(coll_index + 1, len(steps)):
        step = steps[k]
        if isinstance(step, (Join, Barrier, DynamicStep, Repeat)):
            return None
        if isinstance(step, Collective) and step.overlap:
            return None
        eff = step_effects(step)
        if not eff.exact:
            return None
        if isinstance(step, LocalStep):
            moved_reads = eff.reads
            moved_writes = eff.writes
            legal = (
                consumed_early
                and coll.name not in moved_reads
                and not (moved_reads & crossed_writes)
                and not (moved_writes & crossed_reads)
                and not (moved_writes & crossed_writes)
            )
            if legal:
                return {
                    "collective": coll.name,
                    "op": coll.op,
                    "local": step.name,
                    "local_index": k,
                    "index": coll_index,
                    "crossed": list(crossed_names),
                }
        if coll.name in eff.ctx_reads():
            consumed_early = True
        crossed_reads |= eff.reads
        crossed_writes |= eff.writes
        name = getattr(step, "name", None)
        crossed_names.append(name or type(step).__name__.lower())
    return None


def propose_hoist(
    plan: RoundPlan,
    *,
    verify: str = "static",
    verify_on=None,
    profile: Optional[ClusterProfile] = None,
) -> HoistProposal:
    """Hoist step-independent local compute under a collective's transfer.

    The move :func:`propose_overlap` cannot make: when a blocking
    collective's result is consumed *immediately* (so there is no compute to
    hide behind in place), but a later :class:`LocalStep` is provably
    independent of everything in between, that step is moved directly after
    the collective, the collective is marked ``overlap=True``, and a
    :class:`Join` is inserted after the moved step.  GIANT's hand-written
    ``overlap_gradient`` plan is exactly this rewrite applied to its base
    plan (pinned by ``tests/test_analysis.py``).

    Legality is inherently static — the runtime in-flight guard cannot see a
    reorder, only the effect model can — so ``verify="static"`` is the
    default and ``"execute"`` alone is refused; ``"both"`` additionally
    trial-executes the final plan on ``verify_on`` as a sanity backstop.
    """
    if verify not in ("static", "both"):
        raise ValueError(
            "propose_hoist legality is decided by the effect model; "
            f"verify must be 'static' or 'both', got {verify!r}"
        )
    if verify == "both" and verify_on is None:
        raise ValueError("verify='both' needs a verify_on cluster")
    working = plan.structural_copy()
    candidates: List[dict] = []
    attempted: set = set()
    while True:
        found = None
        order = [
            i
            for i, step in enumerate(working.steps)
            if isinstance(step, Collective)
            and not step.overlap
            and not step.joint_with_previous
            and step.op != "reduce_scalar"
            and step.name not in attempted
        ]
        if profile is not None:
            order.sort(
                key=lambda i: -profile.collective_seconds(working.steps[i].op)
            )
        for coll_index in order:
            candidate = _hoist_candidate(working.steps, coll_index)
            attempted.add(working.steps[coll_index].name)
            if candidate is not None:
                found = candidate
                break
        if found is None:
            break
        if profile is not None:
            found["transfer_seconds"] = profile.collective_seconds(found["op"])
        trial = working.structural_copy()
        moved = trial.steps.pop(found["local_index"])
        trial.steps[found["index"]].overlap = True
        trial.steps.insert(found["index"] + 1, moved)
        trial.steps.insert(found["index"] + 2, Join())
        from repro.analysis.verify import verify_plan

        report = verify_plan(trial)
        if not report.ok:
            found["status"] = "rejected"
            found["reason"] = report.reason()
            candidates.append(found)
            continue
        found["status"] = "proposed"
        candidates.append(found)
        working = trial
    if verify == "both" and candidates and verify_on is not None:
        # The reorder itself is not executable-checkable, but the resulting
        # plan must still satisfy the runtime guard end to end.
        execute_plan(verify_on, working)
    if plan.declared_rounds is not None:
        if working.declared_rounds != plan.declared_rounds:
            raise ScheduleError(
                f"hoist proposal changed the declared round count of "
                f"{plan.name!r}: {plan.declared_rounds} -> "
                f"{working.declared_rounds}"
            )
    return HoistProposal(
        original=plan,
        proposed=working,
        candidates=candidates,
        verified=True,
        verify_mode=verify,
    )


# ---------------------------------------------------------------------------
# Tournament search
# ---------------------------------------------------------------------------
@dataclass
class TournamentEntry:
    """One entrant: a label, a solver factory, and its epoch budget.

    ``hand_written=True`` marks the incumbent configurations the search must
    beat; they are always scored first and win ties.
    """

    label: str
    factory: Callable[[], object]  # -> DistributedSolver
    epochs: int
    hand_written: bool = False
    params: dict = field(default_factory=dict)


@dataclass
class TournamentResult:
    """Winner + full per-candidate provenance of one tournament."""

    winner: str
    winner_trace: object  # RunTrace
    target: float
    candidates: List[dict]
    traces: dict
    profile: dict
    seed: int

    @property
    def hand_written_scores(self) -> dict:
        return {
            c["label"]: c["score"]
            for c in self.candidates
            if c["hand_written"]
        }

    def describe(self) -> dict:
        return {
            "winner": self.winner,
            "target": self.target,
            "seed": self.seed,
            "profile": dict(self.profile),
            "candidates": [dict(c) for c in self.candidates],
        }


def _fresh_straggler(profile: ClusterProfile):
    """A fresh (unconsumed RNG) straggler model for one candidate's cluster."""
    if profile.straggler is None:
        return None
    return replace(profile.straggler)


def _build_cluster(train, profile: ClusterProfile, seed: int):
    from repro.distributed.cluster import SimulatedCluster

    return SimulatedCluster(
        train,
        profile.n_workers,
        network=profile.network,
        straggler=_fresh_straggler(profile),
        faults=profile.faults,
        engine="event",
        random_state=seed,
    )


def default_entries(
    profile: ClusterProfile,
    *,
    seed: int = 0,
    n_trials: int = 6,
    sync_epochs: int = 8,
    lam: float = 1e-5,
    cg_max_iter: int = 10,
) -> List[TournamentEntry]:
    """The standard field: hand-written incumbents + ``n_trials`` seeded draws.

    Incumbents (every schedule shape the repo ships hand-written): sync
    Newton-ADMM (the paper's 1-round plan), GIANT with and without the
    hand-tuned gradient overlap (3 rounds), and — when the profile declares
    stragglers or active faults — quorum async Newton-ADMM at its default
    knobs.  The seeded draws then search ADMM penalty policy /
    over-relaxation and GIANT's overlap flag, plus quorum size and staleness
    bound on perturbed profiles.

    Asynchrony enters the field only under declared perturbations: quorum
    schedules are the tuner's *response* to stragglers and faults (they trade
    staleness for not waiting), so on a clean profile they answer a question
    nobody asked — the interesting search there is over synchronous schedule
    shape and penalty knobs, and the paper's single-round plan should win it.

    Synchronous incumbents declare ``on_failure="stall"`` when the profile
    injects faults — the strict default would simply abort, and a tournament
    where the incumbents crash proves nothing.
    """
    from repro.admm.async_newton_admm import AsyncNewtonADMM
    from repro.admm.newton_admm import NewtonADMM
    from repro.baselines.giant import GIANT

    faults_active = profile.faults is not None and getattr(
        profile.faults, "active", False
    )
    sync_policy = "stall" if faults_active else "raise"
    perturbed = profile.straggler is not None or faults_active
    n = profile.n_workers
    async_epochs = 4 * sync_epochs
    shared = dict(lam=lam, record_accuracy=False)

    def admm(**kw):
        kwargs = dict(
            cg_max_iter=cg_max_iter, on_failure=sync_policy,
            max_epochs=sync_epochs, **shared,
        )
        kwargs.update(kw)
        return NewtonADMM(**kwargs)

    def giant(**kw):
        kwargs = dict(
            cg_max_iter=cg_max_iter, cg_tol=1e-4, on_failure=sync_policy,
            max_epochs=sync_epochs, **shared,
        )
        kwargs.update(kw)
        return GIANT(**kwargs)

    def async_admm(**kw):
        kwargs = dict(cg_max_iter=cg_max_iter, max_epochs=async_epochs, **shared)
        kwargs.update(kw)
        return AsyncNewtonADMM(**kwargs)

    entries = [
        TournamentEntry(
            "newton_admm", lambda: admm(), sync_epochs, hand_written=True,
            params={"solver": "newton_admm", "rounds_per_epoch": 1},
        ),
        TournamentEntry(
            "giant", lambda: giant(), sync_epochs, hand_written=True,
            params={"solver": "giant", "rounds_per_epoch": 3},
        ),
        TournamentEntry(
            "giant_overlap",
            lambda: giant(overlap_gradient=True),
            sync_epochs,
            hand_written=True,
            params={
                "solver": "giant", "overlap_gradient": True,
                "rounds_per_epoch": 3,
            },
        ),
    ]
    if perturbed:
        entries.append(
            TournamentEntry(
                "async_newton_admm",
                lambda: async_admm(),
                async_epochs,
                hand_written=True,
                params={"solver": "async_newton_admm", "quorum": "default"},
            )
        )

    families = ("admm_penalty", "giant_overlap")
    if perturbed:
        families = ("async_quorum",) + families
    rng = np.random.default_rng(seed)
    for trial in range(n_trials):
        family = rng.choice(families)
        if family == "async_quorum" and n >= 2:
            quorum = int(rng.integers(max(1, n // 2), n))  # in [n//2, n-1]
            staleness = int(rng.choice((2, 5, 10, 20)))
            params = {
                "solver": "async_newton_admm",
                "quorum": quorum,
                "max_staleness": staleness,
            }
            entries.append(
                TournamentEntry(
                    f"trial{trial}_async_q{quorum}_s{staleness}",
                    lambda q=quorum, s=staleness: async_admm(
                        quorum=q, max_staleness=s
                    ),
                    4 * sync_epochs,
                    params=params,
                )
            )
        elif family == "admm_penalty":
            penalty = str(rng.choice(("spectral", "residual_balancing", "fixed")))
            over_relaxation = float(rng.choice((1.0, 1.3, 1.5, 1.8)))
            params = {
                "solver": "newton_admm",
                "penalty": penalty,
                "over_relaxation": over_relaxation,
            }
            entries.append(
                TournamentEntry(
                    f"trial{trial}_admm_{penalty}_or{over_relaxation:g}",
                    lambda p=penalty, o=over_relaxation: admm(
                        penalty=p, over_relaxation=o
                    ),
                    sync_epochs,
                    params=params,
                )
            )
        else:
            overlap = bool(rng.integers(0, 2))
            cg = int(rng.choice((5, 10, 20)))
            params = {
                "solver": "giant",
                "overlap_gradient": overlap,
                "cg_max_iter": cg,
            }
            entries.append(
                TournamentEntry(
                    f"trial{trial}_giant_cg{cg}{'_ov' if overlap else ''}",
                    lambda o=overlap, c=cg: giant(
                        overlap_gradient=o, cg_max_iter=c
                    ),
                    sync_epochs,
                    params=params,
                )
            )
    return entries


def run_tournament(
    train,
    profile: ClusterProfile,
    *,
    entries: Optional[List[TournamentEntry]] = None,
    seed: int = 0,
    n_trials: int = 6,
    sync_epochs: int = 8,
    lam: float = 1e-5,
    test=None,
) -> TournamentResult:
    """Score every entry on the profile's event-engine cluster; crown a winner.

    The first hand-written entry (sync Newton-ADMM in the default field) sets
    the target objective: its own final objective after ``sync_epochs``.
    Every candidate is then scored by the modelled time at which it reaches
    that target (``inf`` if never, final objective as tiebreak).  The winner
    is the earliest-listed candidate no other candidate *strictly* beats —
    hand-written entries are listed first, so ties keep the incumbent.
    """
    if entries is None:
        entries = default_entries(
            profile, seed=seed, n_trials=n_trials,
            sync_epochs=sync_epochs, lam=lam,
        )
    if not entries:
        raise ValueError("tournament needs at least one entry")
    if not entries[0].hand_written:
        raise ValueError(
            "the first tournament entry must be a hand-written incumbent "
            "(it sets the target objective)"
        )
    from repro.metrics.traces import time_to_objective

    traces = {}
    records: List[dict] = []
    target: Optional[float] = None
    for entry in entries:
        cluster = _build_cluster(train, profile, seed)
        solver = entry.factory()
        trace = solver.fit(cluster, test=test)
        traces[entry.label] = trace
        if target is None:
            target = float(trace.final.objective)
        score = float(time_to_objective(trace, target))
        records.append(
            {
                "label": entry.label,
                "hand_written": entry.hand_written,
                "params": dict(entry.params),
                "epochs": trace.n_epochs,
                "score": score,
                "reached_target": math.isfinite(score),
                "final_objective": float(trace.final.objective),
                "total_modelled_time": float(trace.total_time()),
                "hyperparameters": solver.hyperparameters(),
            }
        )

    winner = records[0]
    for record in records[1:]:
        if (record["score"], record["final_objective"]) < (
            winner["score"], winner["final_objective"]
        ):
            winner = record
    assert target is not None
    result = TournamentResult(
        winner=winner["label"],
        winner_trace=traces[winner["label"]],
        target=target,
        candidates=records,
        traces=traces,
        profile=profile.describe(),
        seed=seed,
    )
    traces[winner["label"]].info["autotune"] = {
        **result.describe(),
        "n_entries": len(records),
        "beat_every_hand_written": all(
            winner["score"] < c["score"]
            or (winner["score"] == c["score"] and winner["label"] == c["label"])
            for c in records
            if c["hand_written"]
        ),
    }
    return result
