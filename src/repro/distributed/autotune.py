"""Schedule autotuner: propose overlap rewrites and tournament-search plans.

The IR can describe a schedule (:mod:`repro.distributed.schedule`), check it
(declared-round verification, in-flight guard), and diff and price it
(:mod:`repro.distributed.schedule_diff`).  This module closes the
prescriptive loop — it *improves* schedules:

:func:`propose_overlap`
    Walks a plan and flags every blocking :class:`Collective` whose result is
    not needed before the next :class:`LocalStep`; each flagged collective is
    rewritten to ``overlap=True`` with a :class:`Join` inserted after the
    local compute it can hide behind.  Legality is decided by the *existing*
    in-flight guard, not by a second analysis: when a probe cluster is
    supplied, each rewrite is trial-executed and kept only if the guard does
    not object (a consuming step reads the in-flight key → ``ScheduleError``
    → the rewrite is rolled back).  Rewrites never change the declared round
    count — ``overlap`` does not open rounds and ``Join`` is not a
    collective — which the proposer asserts.

:func:`run_tournament`
    A seeded search over quorum size, staleness bound, ADMM penalty /
    over-relaxation, and overlap flags.  Every entrant — the hand-written
    solver configurations first, then the seeded draws — runs on a fresh
    event-engine cluster built from the same declared
    :class:`~repro.distributed.schedule_diff.ClusterProfile`, and is scored
    on the engine's modelled clock: the time to reach the synchronous
    baseline's final objective (``inf`` when never reached, with the final
    objective as tiebreak).  A challenger must be *strictly* faster than the
    incumbent to take the title, so a no-op profile leaves Newton-ADMM's
    single-round plan unbeaten, and the full provenance record — profile,
    seed, every candidate's knobs and score — lands in
    ``trace.info["autotune"]`` on the winning trace.

Determinism: all draws come from one ``numpy`` generator seeded by the
caller, every candidate's cluster is rebuilt from the profile with the same
``random_state``, and the straggler/fault streams are seeded models — same
profile + same seed ⇒ bit-identical scores and the same winner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.schedule import (
    Collective,
    Join,
    LocalStep,
    RoundPlan,
    ScheduleError,
    execute_plan,
)
from repro.distributed.schedule_diff import ClusterProfile

__all__ = [
    "OverlapProposal",
    "propose_overlap",
    "TournamentEntry",
    "TournamentResult",
    "default_entries",
    "run_tournament",
]


# ---------------------------------------------------------------------------
# Cost-aware overlap proposal
# ---------------------------------------------------------------------------
@dataclass
class OverlapProposal:
    """Outcome of :func:`propose_overlap`.

    ``candidates`` records every flagged collective with its status:
    ``"proposed"`` (rewrite kept), ``"rejected"`` (the in-flight guard
    objected during trial execution; rolled back) or ``"unverified"``
    (no probe cluster supplied; rewrite kept but unchecked).
    """

    original: RoundPlan
    proposed: RoundPlan
    candidates: List[dict] = field(default_factory=list)
    verified: bool = False

    @property
    def n_applied(self) -> int:
        return sum(1 for c in self.candidates if c["status"] != "rejected")

    @property
    def changed(self) -> bool:
        return self.n_applied > 0

    def describe(self) -> dict:
        return {
            "plan": self.original.name,
            "verified": self.verified,
            "applied": self.n_applied,
            "candidates": [dict(c) for c in self.candidates],
        }


def _overlap_candidates(steps: Sequence) -> List[Tuple[int, int]]:
    """(collective index, following LocalStep index) pairs worth rewriting.

    A collective qualifies when it blocks today (``overlap=False``), the op
    supports overlap (``reduce_scalar`` does not), it opens its own round
    (a ``joint_with_previous`` collective shares the previous synchronization
    point — backgrounding it would break that pairing), and some
    :class:`LocalStep` follows before the next collective or join (otherwise
    there is no compute to hide the transfer behind and the rewrite gains
    nothing).  Consumption is *not* decided here — only the in-flight guard
    can, at trial execution.
    """
    pairs: List[Tuple[int, int]] = []
    for i, step in enumerate(steps):
        if not isinstance(step, Collective):
            continue
        if step.overlap or step.joint_with_previous or step.op == "reduce_scalar":
            continue
        for j in range(i + 1, len(steps)):
            nxt = steps[j]
            if isinstance(nxt, LocalStep):
                pairs.append((i, j))
                break
            if isinstance(nxt, (Collective, Join)):
                break
    return pairs


def propose_overlap(
    plan: RoundPlan,
    *,
    verify_on=None,
    profile: Optional[ClusterProfile] = None,
) -> OverlapProposal:
    """Rewrite ``plan`` to overlap collectives whose results can wait.

    Candidates are applied one at a time — most promising first when a
    ``profile`` prices the transfers (the biggest hide is attempted first) —
    and each application is trial-executed on ``verify_on`` (a throwaway
    cluster: execution runs the plan's thunks) and rolled back when the
    in-flight guard raises :class:`ScheduleError`.  Without a probe cluster
    the rewrites are returned unverified.

    Repeat bodies are left untouched: their steps execute ``times`` times,
    and a Join placed after the body would let transfers from earlier trips
    float across later ones — a different schedule than declared.
    """
    working = plan.structural_copy()
    candidates: List[dict] = []
    attempted: set = set()
    while True:
        pairs = [
            (i, j)
            for i, j in _overlap_candidates(working.steps)
            if working.steps[i].name not in attempted
        ]
        if not pairs:
            break
        if profile is not None:
            pairs.sort(
                key=lambda ij: -profile.collective_seconds(
                    working.steps[ij[0]].op
                )
            )
        coll_index, local_index = pairs[0]
        coll = working.steps[coll_index]
        attempted.add(coll.name)
        entry = {
            "name": coll.name,
            "op": coll.op,
            "index": coll_index,
            "status": "unverified" if verify_on is None else "proposed",
        }
        if profile is not None:
            entry["transfer_seconds"] = profile.collective_seconds(coll.op)
        trial = working.structural_copy()
        trial.steps[coll_index].overlap = True
        trial.steps.insert(local_index + 1, Join())
        if verify_on is not None:
            try:
                execute_plan(verify_on, trial)
            except ScheduleError as exc:
                entry["status"] = "rejected"
                entry["reason"] = str(exc)
                candidates.append(entry)
                continue
        working = trial
        candidates.append(entry)
    if plan.declared_rounds is not None:
        if working.declared_rounds != plan.declared_rounds:
            raise ScheduleError(
                f"overlap proposal changed the declared round count of "
                f"{plan.name!r}: {plan.declared_rounds} -> "
                f"{working.declared_rounds}"
            )
    return OverlapProposal(
        original=plan,
        proposed=working,
        candidates=candidates,
        verified=verify_on is not None,
    )


# ---------------------------------------------------------------------------
# Tournament search
# ---------------------------------------------------------------------------
@dataclass
class TournamentEntry:
    """One entrant: a label, a solver factory, and its epoch budget.

    ``hand_written=True`` marks the incumbent configurations the search must
    beat; they are always scored first and win ties.
    """

    label: str
    factory: Callable[[], object]  # -> DistributedSolver
    epochs: int
    hand_written: bool = False
    params: dict = field(default_factory=dict)


@dataclass
class TournamentResult:
    """Winner + full per-candidate provenance of one tournament."""

    winner: str
    winner_trace: object  # RunTrace
    target: float
    candidates: List[dict]
    traces: dict
    profile: dict
    seed: int

    @property
    def hand_written_scores(self) -> dict:
        return {
            c["label"]: c["score"]
            for c in self.candidates
            if c["hand_written"]
        }

    def describe(self) -> dict:
        return {
            "winner": self.winner,
            "target": self.target,
            "seed": self.seed,
            "profile": dict(self.profile),
            "candidates": [dict(c) for c in self.candidates],
        }


def _fresh_straggler(profile: ClusterProfile):
    """A fresh (unconsumed RNG) straggler model for one candidate's cluster."""
    if profile.straggler is None:
        return None
    return replace(profile.straggler)


def _build_cluster(train, profile: ClusterProfile, seed: int):
    from repro.distributed.cluster import SimulatedCluster

    return SimulatedCluster(
        train,
        profile.n_workers,
        network=profile.network,
        straggler=_fresh_straggler(profile),
        faults=profile.faults,
        engine="event",
        random_state=seed,
    )


def default_entries(
    profile: ClusterProfile,
    *,
    seed: int = 0,
    n_trials: int = 6,
    sync_epochs: int = 8,
    lam: float = 1e-5,
    cg_max_iter: int = 10,
) -> List[TournamentEntry]:
    """The standard field: hand-written incumbents + ``n_trials`` seeded draws.

    Incumbents (every schedule shape the repo ships hand-written): sync
    Newton-ADMM (the paper's 1-round plan), GIANT with and without the
    hand-tuned gradient overlap (3 rounds), and — when the profile declares
    stragglers or active faults — quorum async Newton-ADMM at its default
    knobs.  The seeded draws then search ADMM penalty policy /
    over-relaxation and GIANT's overlap flag, plus quorum size and staleness
    bound on perturbed profiles.

    Asynchrony enters the field only under declared perturbations: quorum
    schedules are the tuner's *response* to stragglers and faults (they trade
    staleness for not waiting), so on a clean profile they answer a question
    nobody asked — the interesting search there is over synchronous schedule
    shape and penalty knobs, and the paper's single-round plan should win it.

    Synchronous incumbents declare ``on_failure="stall"`` when the profile
    injects faults — the strict default would simply abort, and a tournament
    where the incumbents crash proves nothing.
    """
    from repro.admm.async_newton_admm import AsyncNewtonADMM
    from repro.admm.newton_admm import NewtonADMM
    from repro.baselines.giant import GIANT

    faults_active = profile.faults is not None and getattr(
        profile.faults, "active", False
    )
    sync_policy = "stall" if faults_active else "raise"
    perturbed = profile.straggler is not None or faults_active
    n = profile.n_workers
    async_epochs = 4 * sync_epochs
    shared = dict(lam=lam, record_accuracy=False)

    def admm(**kw):
        kwargs = dict(
            cg_max_iter=cg_max_iter, on_failure=sync_policy,
            max_epochs=sync_epochs, **shared,
        )
        kwargs.update(kw)
        return NewtonADMM(**kwargs)

    def giant(**kw):
        kwargs = dict(
            cg_max_iter=cg_max_iter, cg_tol=1e-4, on_failure=sync_policy,
            max_epochs=sync_epochs, **shared,
        )
        kwargs.update(kw)
        return GIANT(**kwargs)

    def async_admm(**kw):
        kwargs = dict(cg_max_iter=cg_max_iter, max_epochs=async_epochs, **shared)
        kwargs.update(kw)
        return AsyncNewtonADMM(**kwargs)

    entries = [
        TournamentEntry(
            "newton_admm", lambda: admm(), sync_epochs, hand_written=True,
            params={"solver": "newton_admm", "rounds_per_epoch": 1},
        ),
        TournamentEntry(
            "giant", lambda: giant(), sync_epochs, hand_written=True,
            params={"solver": "giant", "rounds_per_epoch": 3},
        ),
        TournamentEntry(
            "giant_overlap",
            lambda: giant(overlap_gradient=True),
            sync_epochs,
            hand_written=True,
            params={
                "solver": "giant", "overlap_gradient": True,
                "rounds_per_epoch": 3,
            },
        ),
    ]
    if perturbed:
        entries.append(
            TournamentEntry(
                "async_newton_admm",
                lambda: async_admm(),
                async_epochs,
                hand_written=True,
                params={"solver": "async_newton_admm", "quorum": "default"},
            )
        )

    families = ("admm_penalty", "giant_overlap")
    if perturbed:
        families = ("async_quorum",) + families
    rng = np.random.default_rng(seed)
    for trial in range(n_trials):
        family = rng.choice(families)
        if family == "async_quorum" and n >= 2:
            quorum = int(rng.integers(max(1, n // 2), n))  # in [n//2, n-1]
            staleness = int(rng.choice((2, 5, 10, 20)))
            params = {
                "solver": "async_newton_admm",
                "quorum": quorum,
                "max_staleness": staleness,
            }
            entries.append(
                TournamentEntry(
                    f"trial{trial}_async_q{quorum}_s{staleness}",
                    lambda q=quorum, s=staleness: async_admm(
                        quorum=q, max_staleness=s
                    ),
                    4 * sync_epochs,
                    params=params,
                )
            )
        elif family == "admm_penalty":
            penalty = str(rng.choice(("spectral", "residual_balancing", "fixed")))
            over_relaxation = float(rng.choice((1.0, 1.3, 1.5, 1.8)))
            params = {
                "solver": "newton_admm",
                "penalty": penalty,
                "over_relaxation": over_relaxation,
            }
            entries.append(
                TournamentEntry(
                    f"trial{trial}_admm_{penalty}_or{over_relaxation:g}",
                    lambda p=penalty, o=over_relaxation: admm(
                        penalty=p, over_relaxation=o
                    ),
                    sync_epochs,
                    params=params,
                )
            )
        else:
            overlap = bool(rng.integers(0, 2))
            cg = int(rng.choice((5, 10, 20)))
            params = {
                "solver": "giant",
                "overlap_gradient": overlap,
                "cg_max_iter": cg,
            }
            entries.append(
                TournamentEntry(
                    f"trial{trial}_giant_cg{cg}{'_ov' if overlap else ''}",
                    lambda o=overlap, c=cg: giant(
                        overlap_gradient=o, cg_max_iter=c
                    ),
                    sync_epochs,
                    params=params,
                )
            )
    return entries


def run_tournament(
    train,
    profile: ClusterProfile,
    *,
    entries: Optional[List[TournamentEntry]] = None,
    seed: int = 0,
    n_trials: int = 6,
    sync_epochs: int = 8,
    lam: float = 1e-5,
    test=None,
) -> TournamentResult:
    """Score every entry on the profile's event-engine cluster; crown a winner.

    The first hand-written entry (sync Newton-ADMM in the default field) sets
    the target objective: its own final objective after ``sync_epochs``.
    Every candidate is then scored by the modelled time at which it reaches
    that target (``inf`` if never, final objective as tiebreak).  The winner
    is the earliest-listed candidate no other candidate *strictly* beats —
    hand-written entries are listed first, so ties keep the incumbent.
    """
    if entries is None:
        entries = default_entries(
            profile, seed=seed, n_trials=n_trials,
            sync_epochs=sync_epochs, lam=lam,
        )
    if not entries:
        raise ValueError("tournament needs at least one entry")
    if not entries[0].hand_written:
        raise ValueError(
            "the first tournament entry must be a hand-written incumbent "
            "(it sets the target objective)"
        )
    from repro.metrics.traces import time_to_objective

    traces = {}
    records: List[dict] = []
    target: Optional[float] = None
    for entry in entries:
        cluster = _build_cluster(train, profile, seed)
        solver = entry.factory()
        trace = solver.fit(cluster, test=test)
        traces[entry.label] = trace
        if target is None:
            target = float(trace.final.objective)
        score = float(time_to_objective(trace, target))
        records.append(
            {
                "label": entry.label,
                "hand_written": entry.hand_written,
                "params": dict(entry.params),
                "epochs": trace.n_epochs,
                "score": score,
                "reached_target": math.isfinite(score),
                "final_objective": float(trace.final.objective),
                "total_modelled_time": float(trace.total_time()),
                "hyperparameters": solver.hyperparameters(),
            }
        )

    winner = records[0]
    for record in records[1:]:
        if (record["score"], record["final_objective"]) < (
            winner["score"], winner["final_objective"]
        ):
            winner = record
    assert target is not None
    result = TournamentResult(
        winner=winner["label"],
        winner_trace=traces[winner["label"]],
        target=target,
        candidates=records,
        traces=traces,
        profile=profile.describe(),
        seed=seed,
    )
    traces[winner["label"]].info["autotune"] = {
        **result.describe(),
        "n_entries": len(records),
        "beat_every_hand_written": all(
            winner["score"] < c["score"]
            or (winner["score"] == c["score"] and winner["label"] == c["label"])
            for c in records
            if c["hand_written"]
        ),
    }
    return result
