"""Discrete-event engine: one timeline per worker, an event queue, and
barrier / collective / background-transfer primitives.

The paper's systems claims are claims about *schedules* — one synchronization
point per Newton-ADMM iteration versus GIANT's three, asynchronous SGD's
staleness penalty — and a single global clock cannot express them.  This
engine gives every simulated worker its own clock
(:class:`~repro.metrics.timeline.WorkerTimeline`) and provides the
synchronization vocabulary the distributed layer is rebuilt on:

``run_round``
    The lock-step schedule: each participant is busy for its own modelled
    time, then all barrier.  The shared :class:`SimulatedClock` is advanced by
    exactly ``max(times)`` — the *same floating-point operation* the legacy
    lock-step accounting performed — so synchronous solvers produce
    bit-identical modelled times on either execution path.

``collective`` / ``background_collective``
    A blocking collective barriers every worker and charges each of them the
    modelled communication time.  The background variant models
    compute↔communication overlap: the transfer is posted at the barrier time
    and completes later, while workers keep computing; :meth:`join_background`
    charges only the part of the transfer that was *not* hidden.

``post`` / ``pop``
    The event queue used by the true asynchronous path: a worker posts a
    message (its clock keeps running or goes idle — the engine does not care),
    and the consumer pops events in global-time order.  Asynchronous SGD's
    staleness and async Newton-ADMM's quorum schedule *emerge* from this
    queue instead of being closed-form assumptions.

The engine deliberately shares the cluster's :class:`SimulatedClock` so every
trace keeps reporting one modelled cluster time; per-worker detail lives in
the timelines, exported to traces and the Gantt plot.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.metrics.timeline import WorkerTimeline, max_time
from repro.utils.timer import SimulatedClock


@dataclass(frozen=True, order=True)
class Event:
    """A message arriving at ``time`` from ``worker_id`` with a ``payload``.

    ``seq`` is the posting order and breaks time ties deterministically, so
    simultaneous arrivals resolve in the order they were scheduled (the heap
    never compares ``worker_id``/``payload``, which are excluded from
    ordering).
    """

    time: float
    seq: int
    worker_id: int = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventEngine:
    """Per-worker clocks + event queue over a shared simulated global clock.

    Parameters
    ----------
    n_workers:
        Number of worker timelines.
    clock:
        The cluster's :class:`SimulatedClock`; a private clock is created when
        omitted (unit tests).  The engine only ever *advances* it, keeping the
        modelled-time accounting of existing traces intact.

    Examples
    --------
    >>> engine = EventEngine(2)
    >>> engine.run_round({0: 1.0, 1: 3.0})   # lock-step round: barrier at max
    3.0
    >>> engine.collective(0.5)               # everyone pays the transfer
    3.5
    >>> engine.timelines[0].totals()["wait"] # the fast worker waited
    2.0
    """

    def __init__(self, n_workers: int, clock: Optional[SimulatedClock] = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.clock = clock if clock is not None else SimulatedClock()
        self.timelines: List[WorkerTimeline] = [
            WorkerTimeline(i) for i in range(self.n_workers)
        ]
        self._queue: List[Event] = []
        self._seq = 0
        self._background_until = 0.0

    # -- basic accessors ---------------------------------------------------
    @property
    def now(self) -> float:
        """The shared global clock (modelled cluster time)."""
        return self.clock.time

    def timeline(self, worker_id: int) -> WorkerTimeline:
        """The per-worker activity record (validates ``worker_id``)."""
        return self.timelines[self._check_worker(worker_id)]

    def time_of(self, worker_id: int) -> float:
        """Local clock of one worker."""
        return self.timeline(worker_id).t

    def _check_worker(self, worker_id: int) -> int:
        worker_id = int(worker_id)
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(
                f"worker_id must lie in [0, {self.n_workers}), got {worker_id}"
            )
        return worker_id

    # -- per-worker primitives ---------------------------------------------
    def compute(self, worker_id: int, seconds: float, label: str = "compute") -> float:
        """Advance one worker's clock by ``seconds`` of busy compute."""
        return self.timeline(worker_id).advance(seconds, "busy", label)

    def communicate(self, worker_id: int, seconds: float, label: str = "comm") -> float:
        """Advance one worker's clock by ``seconds`` of (blocking) transfer."""
        return self.timeline(worker_id).advance(seconds, "comm", label)

    def wait_until(self, worker_id: int, time: float, label: str = "wait") -> float:
        """Idle one worker until the absolute time ``time`` (no-op if past)."""
        return self.timeline(worker_id).wait_until(time, label)

    def mark_down(self, worker_id: int, until: float, label: str = "down") -> float:
        """Record a crash outage: the worker is ``down`` until ``until``.

        The fault injector uses this to draw a crashed worker's downtime onto
        its frozen timeline once the restart time is known; a target in the
        past is a no-op.
        """
        tl = self.timeline(worker_id)
        if until > tl.t:
            tl.advance(until - tl.t, "down", label)
        return tl.t

    def mark_unreachable(
        self, worker_id: int, until: float, label: str = "partition"
    ) -> float:
        """Record a partition window: the worker is ``unreachable`` until
        ``until``.

        Unlike :meth:`mark_down` the worker is alive (its state keeps
        advancing) — it just cannot exchange messages across the cut; a
        target in the past is a no-op.
        """
        tl = self.timeline(worker_id)
        if until > tl.t:
            tl.advance(until - tl.t, "unreachable", label)
        return tl.t

    # -- synchronization -----------------------------------------------------
    def barrier(
        self, worker_ids: Optional[Iterable[int]] = None, label: str = "barrier"
    ) -> float:
        """Wait all participants (default: everyone) to their common maximum.

        Returns the barrier time; fast participants get ``wait`` segments.
        The shared clock is *not* advanced — callers charge it explicitly
        (:meth:`run_round`, :meth:`collective`) so lock-step equivalence holds
        to the bit.
        """
        ids = (
            list(range(self.n_workers))
            if worker_ids is None
            else [self._check_worker(i) for i in worker_ids]
        )
        if not ids:
            raise ValueError("barrier needs at least one participant")
        t = max(self.timelines[i].t for i in ids)
        for i in ids:
            self.timelines[i].wait_until(t, label)
        return t

    def run_round(
        self,
        seconds_by_worker: Mapping[int, float],
        *,
        category: str = "compute",
        label: str = "compute",
    ) -> float:
        """One lock-step round: per-worker busy times, then a barrier.

        The shared clock advances by ``max(seconds_by_worker.values())`` — the
        identical floating-point value the legacy ``map_workers`` charged —
        which is what makes the event engine's modelled totals bit-identical
        to the lock-step path for synchronous solvers.
        """
        if not seconds_by_worker:
            raise ValueError("run_round needs at least one worker time")
        for worker_id, seconds in seconds_by_worker.items():
            self.compute(worker_id, seconds, label)
        self.barrier(seconds_by_worker.keys(), label=label)
        self.clock.advance(max(seconds_by_worker.values()), category=category)
        return self.now

    def collective(
        self,
        seconds: float,
        *,
        category: str = "communication",
        label: str = "collective",
        worker_ids: Optional[Iterable[int]] = None,
    ) -> float:
        """Blocking collective: barrier the participants, charge each ``seconds``.

        ``worker_ids`` defaults to every worker; a subset models a collective
        over the surviving members of a degraded round (crashed workers'
        timelines stay frozen).  Any still-pending background transfer is
        joined first (a blocking collective on the same interconnect cannot
        start before it drains).
        """
        self.join_background()
        ids = (
            list(range(self.n_workers))
            if worker_ids is None
            else [self._check_worker(i) for i in worker_ids]
        )
        self.barrier(ids, label=label)
        for i in ids:
            self.timelines[i].advance(seconds, "comm", label)
        self.clock.advance(seconds, category=category)
        return self.now

    # -- overlap (compute <-> communication) --------------------------------
    def background_collective(
        self,
        seconds: float,
        *,
        label: str = "overlap-collective",
    ) -> float:
        """Start a collective at the barrier time but complete it in the
        background, overlapping whatever the workers do next.

        Returns the completion time.  Workers' clocks and the shared clock are
        untouched; :meth:`join_background` (called explicitly, or implicitly
        by the next blocking :meth:`collective`) charges only the part of the
        transfer that subsequent compute did not hide.
        """
        t = self.barrier(label=label)
        completion = t
        for tl in self.timelines:
            completion = max(completion, tl.post_background(t, seconds, label))
        self._background_until = max(self._background_until, completion)
        return completion

    def join_background(self, *, category: str = "communication") -> float:
        """Block until all background transfers complete.

        Workers idle until the latest completion; the shared clock is charged
        only the *unhidden* remainder, which is the whole point of overlap.
        """
        completion = self._background_until
        if completion <= 0.0:
            return self.now
        self._background_until = 0.0
        t = self.barrier(label="join")
        for tl in self.timelines:
            tl.wait_until(completion, "join")
        remainder = completion - t
        if remainder > 0:
            self.clock.advance(remainder, category=category)
        return self.now

    @property
    def background_pending(self) -> bool:
        """True while an overlapped transfer has not been joined yet."""
        return self._background_until > 0.0

    # -- event queue -------------------------------------------------------
    def post(
        self,
        worker_id: int,
        delay: float,
        payload: Any = None,
        *,
        at: Optional[float] = None,
    ) -> Event:
        """Schedule an event ``delay`` seconds after ``at`` (default: the
        worker's current local time).

        The worker's clock is not advanced — the message is in flight while
        the worker does whatever it does next (this is the engine's
        compute↔communication overlap primitive for point-to-point traffic).
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        worker_id = self._check_worker(worker_id)
        start = self.time_of(worker_id) if at is None else float(at)
        event = Event(start + delay, self._seq, worker_id, payload)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending event (ties: post order)."""
        if not self._queue:
            raise RuntimeError("event queue is empty — nothing was scheduled")
        return heapq.heappop(self._queue)

    def peek_time(self) -> float:
        """Arrival time of the earliest pending event (without removing it)."""
        if not self._queue:
            raise RuntimeError("event queue is empty — nothing was scheduled")
        return self._queue[0].time

    @property
    def n_pending(self) -> int:
        """Number of posted events not yet popped."""
        return len(self._queue)

    # -- global clock helpers ------------------------------------------------
    def advance_global_to(
        self, time: float, *, comm_seconds: float = 0.0
    ) -> float:
        """Advance the shared clock to the absolute time ``time``.

        ``comm_seconds`` of the delta is attributed to ``"communication"``
        (clamped to the delta), the rest to ``"compute"`` — the split used by
        the asynchronous schedules, where the critical path interleaves both.
        A target in the past is a no-op.
        """
        delta = time - self.clock.time
        if delta <= 0:
            return self.now
        comm = min(max(comm_seconds, 0.0), delta)
        if delta - comm > 0:
            self.clock.advance(delta - comm, category="compute")
        if comm > 0:
            self.clock.advance(comm, category="communication")
        return self.now

    def sync_global(self, *, category: str = "compute") -> float:
        """Advance the shared clock to the latest worker clock."""
        delta = max_time(self.timelines) - self.clock.time
        if delta > 0:
            self.clock.advance(delta, category=category)
        return self.now

    # -- bookkeeping -------------------------------------------------------
    def describe(self) -> Dict[str, float]:
        """Engine state snapshot (worker count, clocks, pending events)."""
        return {
            "n_workers": float(self.n_workers),
            "now": float(self.now),
            "pending_events": float(self.n_pending),
            "max_worker_time": float(max_time(self.timelines)),
        }

    def reset(self) -> None:
        """Fresh timelines and an empty queue (the shared clock is reset by
        its owner, normally ``SimulatedCluster.reset_accounting``)."""
        self.timelines = [WorkerTimeline(i) for i in range(self.n_workers)]
        self._queue = []
        self._seq = 0
        self._background_until = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventEngine(n_workers={self.n_workers}, now={self.now:.6g}, "
            f"pending={self.n_pending})"
        )


def timelines_dict(timelines: Sequence[WorkerTimeline]) -> List[dict]:
    """Serializable form of the timelines (see ``RunTrace.info['timelines']``)."""
    return [tl.to_dict() for tl in timelines]
