"""Communicator: collective operations with traffic and time accounting.

The communicator performs the actual data movement in-process (plain NumPy)
and *models* what the same collective would cost on the configured
interconnect, advancing the cluster's :class:`~repro.utils.timer.SimulatedClock`.
It also counts *communication rounds*: the paper's central systems claim is
that Newton-ADMM needs exactly one round (a gather + a scatter) per outer
iteration versus GIANT's three; integration tests assert those counts through
this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backend.ops import copy_array as _copy
from repro.backend.ops import ensure_float_array
from repro.distributed.faults import PartitionError
from repro.distributed.network import NetworkModel
from repro.utils.timer import SimulatedClock


@dataclass
class CommunicationLog:
    """Running totals of communication activity."""

    n_rounds: int = 0
    n_collectives: int = 0
    bytes_transferred: float = 0.0
    modelled_time: float = 0.0
    by_operation: Dict[str, int] = field(default_factory=dict)

    def record(self, operation: str, nbytes: float, seconds: float, *, new_round: bool) -> None:
        self.n_collectives += 1
        if new_round:
            self.n_rounds += 1
        self.bytes_transferred += nbytes
        self.modelled_time += seconds
        self.by_operation[operation] = self.by_operation.get(operation, 0) + 1


def _nbytes(array) -> float:
    if hasattr(array, "nbytes"):  # numpy / cupy
        return float(array.nbytes)
    if hasattr(array, "element_size"):  # torch
        return float(array.numel() * array.element_size())
    return float(np.asarray(array).nbytes)


class Communicator:
    """Collectives over ``n_workers`` simulated workers.

    Parameters
    ----------
    n_workers:
        Number of workers (the master is co-located with worker 0, as in the
        paper's implementation).
    network:
        Interconnect cost model.
    clock:
        Cluster clock to advance with the modelled communication time.
    engine:
        Optional :class:`~repro.distributed.engine.EventEngine`.  When set,
        every collective is a barrier event on the engine: all workers wait
        to the synchronization point (fast workers accrue ``wait`` segments)
        and each is charged the collective's modelled time; the shared clock
        receives exactly the same ``advance`` calls as the engine-less path,
        keeping modelled totals bit-identical.  ``overlap=True`` on a
        collective posts the transfer in the background instead (see
        :meth:`~repro.distributed.engine.EventEngine.background_collective`).

    Notes
    -----
    A *round* is a synchronization point in the algorithm: a gather+scatter
    pair executed back-to-back counts as one round (use
    ``joint_with_previous=True`` on the second collective), matching the
    paper's "one round of communication per iteration" accounting.

    Every collective accepts ``participants`` — a subset of worker ids taking
    part in a *degraded* round after worker failures (see
    :mod:`repro.distributed.faults`).  Buffers must then be one per
    participant; the cost model and the engine barrier cover only the
    participants, and crashed workers' frozen timelines are untouched.
    """

    def __init__(
        self,
        n_workers: int,
        network: NetworkModel,
        clock: SimulatedClock,
        *,
        engine=None,
        fault_state=None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.network = network
        self.clock = clock
        self.engine = engine
        #: optional :class:`~repro.distributed.faults.FaultInjector`; when its
        #: model declares network partitions, every collective asserts that
        #: all participants are reachable at the collective instant and raises
        #: a structured PartitionError otherwise.  The schedule executor's
        #: fault guard normally stalls or degrades the membership *before*
        #: the collective runs, so this is the backstop that keeps imperative
        #: callers from silently communicating across a cut link.
        self.fault_state = fault_state
        self.log = CommunicationLog()
        #: optional real transport (process engine).  While active, every
        #: collective moves its buffers between OS processes for real: each
        #: rank contributes its own buffer and receives the full rank-ordered
        #: list, which then flows through the *same* reduction code as the
        #: simulated path — the fold order is what keeps fp64 iterates
        #: bit-identical across engines.  Modelled accounting is unchanged.
        self.transport = None

    # -- internals -------------------------------------------------------
    def _transport_active(self) -> bool:
        t = self.transport
        return t is not None and t.active

    def _exchange(self, buffers, participants, label: str):
        """Swap locally built buffers for really-transported ones (process
        engine); the simulated engines return them unchanged."""
        if not self._transport_active():
            return buffers
        if participants is not None:
            raise RuntimeError(
                "the process engine does not support degraded membership; "
                "simulate faults on engine='event'"
            )
        t = self.transport
        return t.allgather(buffers[t.rank], label=label)
    def _check_reachable(self, participants: Optional[Sequence[int]]) -> None:
        """Raise PartitionError when a participant sits behind an open cut."""
        fs = self.fault_state
        if fs is None or not fs.has_partitions:
            return
        now = self.clock.time
        members = (
            range(self.n_workers) if participants is None else participants
        )
        for wid in members:
            if fs.is_cut(wid, now):
                fs.note_partition(wid, fs.cut_start(wid, now))
                raise PartitionError(
                    int(wid),
                    now,
                    heals_at=fs.heal_time(wid, now),
                    round=fs.round,
                    reason="collective participant unreachable (network partition)",
                )

    def _account(
        self,
        operation: str,
        nbytes: float,
        seconds: float,
        *,
        joint_with_previous: bool,
        overlap: bool = False,
        participants: Optional[Sequence[int]] = None,
    ) -> None:
        self._check_reachable(participants)
        if self.engine is not None:
            if overlap:
                self.engine.background_collective(seconds, label=operation)
            else:
                self.engine.collective(
                    seconds,
                    category="communication",
                    label=operation,
                    worker_ids=participants,
                )
        else:
            # Overlap needs per-worker timelines; without an engine the cost
            # model has a single clock and the transfer is charged in full.
            self.clock.advance(seconds, category="communication")
        self.log.record(
            operation, nbytes, seconds, new_round=not joint_with_previous
        )

    def join(self) -> None:
        """Block until overlapped (``overlap=True``) collectives complete.

        Charges only the part of the transfer that following compute did not
        hide; a no-op without an engine or pending background transfers.
        """
        if self.engine is not None:
            self.engine.join_background()

    @staticmethod
    def _check_buffers(buffers: Sequence[np.ndarray], n_expected: int) -> List[np.ndarray]:
        if len(buffers) != n_expected:
            raise ValueError(
                f"expected {n_expected} buffers (one per worker), got {len(buffers)}"
            )
        # Backend-native float buffers (numpy/cupy/torch) pass through
        # untouched so collectives never bounce device arrays through host
        # memory; host integer/untyped inputs keep the historical float64
        # coercion (integer allreduce would otherwise crash or change
        # semantics).
        return [ensure_float_array(b) for b in buffers]

    def _membership(
        self, participants: Optional[Sequence[int]], overlap: bool
    ) -> tuple:
        """Resolve a degraded membership: (participant ids or None, count)."""
        if participants is None:
            return None, self.n_workers
        if overlap:
            raise ValueError(
                "overlapped collectives do not support degraded membership"
            )
        ids = [int(i) for i in participants]
        if not ids:
            raise ValueError("a collective needs at least one participant")
        return ids, len(ids)

    # -- collectives -------------------------------------------------------
    def gather(
        self,
        buffers: Sequence[np.ndarray],
        *,
        joint_with_previous: bool = False,
        overlap: bool = False,
        participants: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Gather one buffer per (participating) worker at the master."""
        ids, n = self._membership(participants, overlap)
        buffers = self._check_buffers(buffers, n)
        buffers = self._exchange(buffers, ids, "gather")
        per_worker = max(_nbytes(b) for b in buffers)
        seconds = self.network.gather(n, per_worker)
        self._account("gather", per_worker * n, seconds,
                      joint_with_previous=joint_with_previous, overlap=overlap,
                      participants=ids)
        return [_copy(b) for b in buffers]

    def scatter(
        self,
        buffers: Sequence[np.ndarray],
        *,
        joint_with_previous: bool = False,
        overlap: bool = False,
        participants: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Send a distinct buffer from the master to each (participating) worker."""
        ids, n = self._membership(participants, overlap)
        buffers = self._check_buffers(buffers, n)
        if self._transport_active():
            if ids is not None:
                raise RuntimeError(
                    "the process engine does not support degraded membership; "
                    "simulate faults on engine='event'"
                )
            # Master-authoritative: rank 0's buffers are the ones scattered.
            buffers = self.transport.broadcast(buffers, label="scatter")
        per_worker = max(_nbytes(b) for b in buffers)
        seconds = self.network.scatter(n, per_worker)
        self._account("scatter", per_worker * n, seconds,
                      joint_with_previous=joint_with_previous, overlap=overlap,
                      participants=ids)
        return [_copy(b) for b in buffers]

    def broadcast(
        self,
        buffer: np.ndarray,
        *,
        joint_with_previous: bool = False,
        overlap: bool = False,
        participants: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Replicate a master buffer on every (participating) worker."""
        ids, n = self._membership(participants, overlap)
        buffer = ensure_float_array(buffer)
        if self._transport_active():
            if ids is not None:
                raise RuntimeError(
                    "the process engine does not support degraded membership; "
                    "simulate faults on engine='event'"
                )
            buffer = self.transport.broadcast(buffer, label="broadcast")
        seconds = self.network.broadcast(n, _nbytes(buffer))
        self._account("broadcast", _nbytes(buffer) * n, seconds,
                      joint_with_previous=joint_with_previous, overlap=overlap,
                      participants=ids)
        return [_copy(buffer) for _ in range(n)]

    def allreduce(
        self,
        buffers: Sequence[np.ndarray],
        *,
        joint_with_previous: bool = False,
        overlap: bool = False,
        participants: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Element-wise sum of one buffer per worker, result visible everywhere."""
        ids, n = self._membership(participants, overlap)
        buffers = self._check_buffers(buffers, n)
        buffers = self._exchange(buffers, ids, "allreduce")
        shapes = {b.shape for b in buffers}
        if len(shapes) != 1:
            raise ValueError(f"allreduce buffers must share a shape, got {shapes}")
        if len({str(b.dtype) for b in buffers}) > 1:
            # Mixed precisions: accumulate in float64 (the historical
            # behavior) rather than silently truncating to buffers[0]'s dtype.
            buffers = [
                b.astype(np.float64) if hasattr(b, "astype") else b.double()
                for b in buffers
            ]
        nbytes = _nbytes(buffers[0])
        seconds = self.network.allreduce(n, nbytes)
        self._account("allreduce", nbytes * n, seconds,
                      joint_with_previous=joint_with_previous, overlap=overlap,
                      participants=ids)
        total = _copy(buffers[0])
        for b in buffers[1:]:
            total += b
        return total

    def allgather(
        self,
        buffers: Sequence[np.ndarray],
        *,
        joint_with_previous: bool = False,
        overlap: bool = False,
        participants: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Every (participating) worker receives every participant's buffer."""
        ids, n = self._membership(participants, overlap)
        buffers = self._check_buffers(buffers, n)
        buffers = self._exchange(buffers, ids, "allgather")
        per_worker = max(_nbytes(b) for b in buffers)
        seconds = self.network.allgather(n, per_worker)
        self._account("allgather", per_worker * n, seconds,
                      joint_with_previous=joint_with_previous, overlap=overlap,
                      participants=ids)
        return [_copy(b) for b in buffers]

    def reduce_scalar(
        self,
        values: Sequence[float],
        *,
        joint_with_previous: bool = False,
        participants: Optional[Sequence[int]] = None,
    ) -> float:
        """Sum one scalar per (participating) worker at the master."""
        ids, n = self._membership(participants, overlap=False)
        if len(values) != n:
            raise ValueError(
                f"expected {n} scalars, got {len(values)}"
            )
        if self._transport_active():
            if ids is not None:
                raise RuntimeError(
                    "the process engine does not support degraded membership; "
                    "simulate faults on engine='event'"
                )
            values = self.transport.allgather(
                float(values[self.transport.rank]), label="reduce_scalar"
            )
        seconds = self.network.reduce(n, 8.0)
        self._account("reduce_scalar", 8.0 * n, seconds,
                      joint_with_previous=joint_with_previous,
                      participants=ids)
        return float(np.sum(np.asarray(values, dtype=np.float64)))

    # -- reporting -------------------------------------------------------
    @property
    def rounds(self) -> int:
        return self.log.n_rounds

    def reset_log(self) -> None:
        self.log = CommunicationLog()
