"""A simulated compute node holding one shard of the training data."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.backend import ArrayBackend, BackendLike, copy_array, get_backend
from repro.datasets.base import ClassificationDataset
from repro.distributed.device import DeviceModel
from repro.objectives.base import Objective
from repro.solvers.base import CountingObjective


class Worker:
    """One node of the simulated cluster.

    Attributes
    ----------
    worker_id:
        0-based rank; rank 0 doubles as the master, as in the paper.
    shard:
        This worker's partition ``D_i`` of the training data.
    objective:
        Counting wrapper around the worker's local objective ``f_i``; the
        wrapper's FLOP counter feeds the device cost model.
    device:
        Device cost model used to convert FLOPs into modelled compute time.
    backend:
        Array backend the worker's state vectors (and its objective) live on;
        defaults to the objective's backend, so per-worker x-updates run on
        the configured device.
    state:
        Algorithm-specific per-worker state (e.g. ADMM's ``x_i``/``y_i``).
    """

    def __init__(
        self,
        worker_id: int,
        shard: ClassificationDataset,
        objective: Objective,
        device: DeviceModel,
        *,
        backend: BackendLike = None,
    ):
        if worker_id < 0:
            raise ValueError(f"worker_id must be >= 0, got {worker_id}")
        self.worker_id = int(worker_id)
        self.shard = shard
        self.objective = (
            objective
            if isinstance(objective, CountingObjective)
            else CountingObjective(objective)
        )
        self.device = device
        if backend is None:
            self.backend: ArrayBackend = self.objective.backend
        else:
            self.backend = get_backend(backend)
        self.state: Dict[str, object] = {}
        self._flops_mark = 0.0

    @property
    def n_local_samples(self) -> int:
        return self.shard.n_samples

    @property
    def dim(self) -> int:
        return self.objective.dim

    # -- modelled-time accounting ------------------------------------------
    def mark_flops(self) -> None:
        """Record the current FLOP counter; the next :meth:`modelled_compute_time`
        call measures work done since this mark."""
        self._flops_mark = self.objective.flops

    def flops_since_mark(self) -> float:
        return self.objective.flops - self._flops_mark

    def modelled_compute_time(self) -> float:
        """Modelled seconds for the work performed since the last mark."""
        return self.device.compute_time(self.flops_since_mark())

    # -- state helpers -------------------------------------------------------
    def get_vector(self, key: str, default: Optional[np.ndarray] = None) -> np.ndarray:
        value = self.state.get(key, default)
        if value is None:
            raise KeyError(f"worker {self.worker_id} has no state {key!r}")
        return self.backend.as_vector(value, name=key)

    def set_vector(self, key: str, value: np.ndarray) -> None:
        value = self.backend.as_vector(value, name=key)
        self.state[key] = copy_array(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Worker(id={self.worker_id}, n_local={self.n_local_samples}, "
            f"dim={self.dim})"
        )
