"""Structural + modelled-cost diffing of round plans, without running them.

The schedule IR (:mod:`repro.distributed.schedule`) made a solver's round
structure a first-class object; this module makes *changes* to that structure
first-class.  :func:`diff_plans` compares two :class:`RoundPlan`\\ s node by
node (positionally, after unrolling :class:`Repeat` bodies — so the diff of a
plan against itself is empty and the diff is symmetric up to direction) and,
given a declared :class:`ClusterProfile`, prices both plans on the same static
cost model the simulator charges at runtime:

- every :class:`Collective` is charged exactly the
  :class:`~repro.distributed.network.NetworkModel` formula the
  :class:`~repro.distributed.comm.Communicator` would charge for a payload of
  ``profile.payload_bytes`` (``reduce_scalar`` moves 8 bytes, as at runtime);
- every :class:`LocalStep` is charged ``profile.local_step_seconds`` inflated
  by the *expected synchronous straggler factor* — a closed-form estimate of
  ``E[max_i factor_i]`` under the profile's
  :class:`~repro.distributed.stragglers.StragglerModel`, since a synchronous
  round completes at the pace of its slowest worker;
- ``overlap=True`` collectives post their cost in flight; subsequent local
  compute hides it and a :class:`Join` (or a blocking collective, or the end
  of the plan) charges the unhidden remainder — mirroring the event engine's
  accounting shape;
- an attached fault spec adds an *expected stall per synchronization round*
  for seeded MTBF crash processes (deterministic one-shot crash specs have no
  steady-state per-round cost and contribute nothing).

The numbers are estimates — the event engine remains the ground truth — but
they rank schedules the way the engine does (fewer rounds, less unhidden
communication, fewer barriers exposed to stragglers), which is what the
autotuner's proposal stage needs: a reason to prefer one rewrite over another
before paying for a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.distributed.network import NetworkModel, ethernet_10g
from repro.distributed.schedule import (
    Collective,
    DynamicStep,
    Join,
    LocalStep,
    RoundPlan,
    step_signature,
)
from repro.distributed.stragglers import StragglerModel

#: bytes a reduce_scalar moves per worker (matches Communicator.reduce_scalar)
_SCALAR_BYTES = 8.0


# ---------------------------------------------------------------------------
# Cluster profile
# ---------------------------------------------------------------------------
@dataclass
class ClusterProfile:
    """A declared cluster against which plans are priced without running.

    Attributes
    ----------
    n_workers:
        Cluster size the collectives span.
    network:
        Interconnect cost model (defaults to 10 GbE).
    straggler:
        Optional straggler model; applied analytically (expected max factor
        at each synchronous barrier), not by sampling.
    faults:
        Optional :class:`~repro.distributed.faults.FailureModel` (or a
        ``--faults`` spec string); only its seeded MTBF component has a
        steady-state per-round expected cost.
    payload_bytes:
        Bytes of one collective buffer (one worker's payload).  For the
        softmax solvers this is ``dim * 8`` — features x classes, fp64.
    local_step_seconds:
        Modelled seconds of one :class:`LocalStep` before straggler
        inflation.  A constant per step is deliberate: the diff ranks
        *schedules*, and every candidate plan for a given problem shares the
        same local kernels.
    """

    n_workers: int
    network: NetworkModel = field(default_factory=ethernet_10g)
    straggler: Optional[StragglerModel] = None
    faults: Optional[Union[str, object]] = None
    payload_bytes: float = 8.0 * 1024
    local_step_seconds: float = 1e-3

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be >= 0, got {self.payload_bytes}"
            )
        if self.local_step_seconds < 0:
            raise ValueError(
                f"local_step_seconds must be >= 0, got {self.local_step_seconds}"
            )
        if isinstance(self.faults, str):
            from repro.distributed.faults import FailureModel

            self.faults = FailureModel.from_spec(self.faults)

    # -- analytic straggler / fault expectations ---------------------------
    def expected_sync_factor(self) -> float:
        """Closed-form estimate of ``E[max_i factor_i]`` at a barrier.

        A persistent straggler pins the max at ``slowdown``; otherwise the
        transient hit contributes ``1 + (slowdown - 1) * P(any straggles)``;
        lognormal jitter contributes the standard extreme-value factor
        ``exp(sigma * sqrt(2 ln n))`` for ``n > 1``.
        """
        model = self.straggler
        if model is None:
            return 1.0
        n = self.n_workers
        persistent = [
            w for w in model.persistent_stragglers if 0 <= w < n
        ]
        factor = model.slowdown if persistent else 1.0
        transient = n - len(persistent)
        if model.probability > 0.0 and transient > 0:
            p_any = 1.0 - (1.0 - model.probability) ** transient
            factor = max(factor, 1.0 + (model.slowdown - 1.0) * p_any)
        if model.jitter > 0.0 and n > 1:
            factor *= math.exp(model.jitter * math.sqrt(2.0 * math.log(n)))
        return factor

    def expected_fault_stall_per_round(self) -> float:
        """Expected extra seconds a sync round pays to the fault spec.

        Steady state of the per-worker MTBF renewal process: each worker is
        down a ``restart / (mtbf + restart)`` fraction of the time, and a
        barrier that finds any worker down stalls about half a restart on
        average.  Crash specs without a restart (or without an MTBF process)
        have no per-round steady state and price at zero.
        """
        model = self.faults
        if model is None:
            return 0.0
        mtbf = getattr(model, "mtbf", None)
        restart = getattr(model, "restart_after", None)
        if not mtbf or not restart:
            return 0.0
        p_down = restart / (mtbf + restart)
        p_any = 1.0 - (1.0 - p_down) ** self.n_workers
        return p_any * restart / 2.0

    def collective_seconds(self, op: str, nbytes: Optional[float] = None) -> float:
        """Price one collective exactly as the Communicator charges it."""
        n = self.n_workers
        nbytes = self.payload_bytes if nbytes is None else nbytes
        if op == "allreduce":
            return self.network.allreduce(n, nbytes)
        if op == "broadcast":
            return self.network.broadcast(n, nbytes)
        if op == "gather":
            return self.network.gather(n, nbytes)
        if op == "scatter":
            return self.network.scatter(n, nbytes)
        if op == "allgather":
            return self.network.allgather(n, nbytes)
        if op == "reduce_scalar":
            return self.network.reduce(n, _SCALAR_BYTES)
        raise ValueError(f"unknown collective op {op!r}")

    def describe(self) -> dict:
        """JSON-serializable profile (recorded in autotune provenance)."""
        return {
            "n_workers": self.n_workers,
            "network": {
                "name": self.network.name,
                "latency": self.network.latency,
                "bandwidth": self.network.bandwidth,
            },
            "straggler": (
                self.straggler.describe() if self.straggler is not None else None
            ),
            "faults": (
                self.faults.describe()
                if self.faults is not None and hasattr(self.faults, "describe")
                else None
            ),
            "payload_bytes": self.payload_bytes,
            "local_step_seconds": self.local_step_seconds,
            "expected_sync_factor": self.expected_sync_factor(),
            "expected_fault_stall_per_round": self.expected_fault_stall_per_round(),
        }


# ---------------------------------------------------------------------------
# Static plan pricing
# ---------------------------------------------------------------------------
@dataclass
class PlanCostEstimate:
    """Modelled cost of one plan epoch under a :class:`ClusterProfile`."""

    plan: str
    seconds: float
    compute_seconds: float
    comm_seconds: float
    hidden_seconds: float
    fault_stall_seconds: float
    rounds: int
    collectives: int
    dynamic: bool

    def describe(self) -> dict:
        return {
            "plan": self.plan,
            "seconds": self.seconds,
            "compute_seconds": self.compute_seconds,
            "comm_seconds": self.comm_seconds,
            "hidden_seconds": self.hidden_seconds,
            "fault_stall_seconds": self.fault_stall_seconds,
            "rounds": self.rounds,
            "collectives": self.collectives,
            "dynamic": self.dynamic,
        }


def estimate_plan_time(plan: RoundPlan, profile: ClusterProfile) -> PlanCostEstimate:
    """Price one epoch of ``plan`` on ``profile`` without executing it.

    Walks the flattened steps with the same accounting shape the engine
    uses: blocking collectives drain any in-flight transfer first, overlapped
    collectives post their cost in flight, local compute hides in-flight
    bytes, a :class:`Join` (or the plan's end) charges the remainder.
    :class:`DynamicStep` sections are unpriceable and are flagged instead of
    silently costing zero — the estimate is then a lower bound.
    """
    sync_factor = profile.expected_sync_factor()
    stall_per_round = profile.expected_fault_stall_per_round()
    compute = comm = hidden = 0.0
    in_flight = 0.0
    rounds = collectives = 0
    dynamic = False
    for step in plan.flattened():
        if isinstance(step, LocalStep):
            dt = profile.local_step_seconds * sync_factor
            compute += dt
            absorbed = min(in_flight, dt)
            in_flight -= absorbed
            hidden += absorbed
        elif isinstance(step, Collective):
            cost = profile.collective_seconds(step.op)
            collectives += 1
            if step.opens_round:
                rounds += 1
            if step.overlap:
                in_flight += cost
            else:
                # A blocking collective drains the background transfer first.
                comm += in_flight + cost
                in_flight = 0.0
        elif isinstance(step, DynamicStep):
            dynamic = True
        elif isinstance(step, Join):
            comm += in_flight
            in_flight = 0.0
        # GlobalStep / Barrier: uncharged, as at runtime.
    comm += in_flight  # plans must end joined; charge any remainder anyway
    fault_stall = stall_per_round * rounds
    total = compute + comm + fault_stall
    return PlanCostEstimate(
        plan=plan.name,
        seconds=total,
        compute_seconds=compute,
        comm_seconds=comm,
        hidden_seconds=hidden,
        fault_stall_seconds=fault_stall,
        rounds=rounds,
        collectives=collectives,
        dynamic=dynamic,
    )


# ---------------------------------------------------------------------------
# Structural diff
# ---------------------------------------------------------------------------
@dataclass
class DiffEntry:
    """One node-level difference between two plans at the same position."""

    kind: str  # "changed" | "added" | "removed"
    index: int
    a: Optional[dict] = None
    b: Optional[dict] = None
    fields: dict = field(default_factory=dict)

    def describe(self) -> dict:
        out = {"kind": self.kind, "index": self.index}
        if self.a is not None:
            out["a"] = self.a
        if self.b is not None:
            out["b"] = self.b
        if self.fields:
            out["fields"] = {
                k: {"a": va, "b": vb} for k, (va, vb) in self.fields.items()
            }
        return out


@dataclass
class PlanDiff:
    """Outcome of :func:`diff_plans`: structural deltas + modelled delta."""

    plan_a: str
    plan_b: str
    entries: List[DiffEntry]
    header: dict
    estimate_a: Optional[PlanCostEstimate] = None
    estimate_b: Optional[PlanCostEstimate] = None

    @property
    def is_empty(self) -> bool:
        """True when the two plans declare identical schedules."""
        return not self.entries and not self.header

    @property
    def modelled_delta(self) -> Optional[float]:
        """``seconds(b) - seconds(a)`` under the profile (None without one)."""
        if self.estimate_a is None or self.estimate_b is None:
            return None
        return self.estimate_b.seconds - self.estimate_a.seconds

    def describe(self) -> dict:
        out = {
            "plan_a": self.plan_a,
            "plan_b": self.plan_b,
            "empty": self.is_empty,
            "header": dict(self.header),
            "entries": [e.describe() for e in self.entries],
        }
        if self.estimate_a is not None and self.estimate_b is not None:
            out["estimate_a"] = self.estimate_a.describe()
            out["estimate_b"] = self.estimate_b.describe()
            out["modelled_delta"] = self.modelled_delta
        return out


def _describe_step(step) -> dict:
    return step.describe()


def diff_plans(
    plan_a: RoundPlan,
    plan_b: RoundPlan,
    profile: Optional[ClusterProfile] = None,
) -> PlanDiff:
    """Node-by-node comparison of two plans, priced under ``profile``.

    The comparison is positional over the flattened (Repeat-unrolled) step
    lists, so it is symmetric up to direction by construction: an entry that
    is ``added`` in ``diff(a, b)`` is ``removed`` in ``diff(b, a)``, and a
    ``changed`` entry swaps its ``a``/``b`` sides.  ``diff(p, p)`` is empty.
    """
    steps_a = plan_a.flattened()
    steps_b = plan_b.flattened()
    entries: List[DiffEntry] = []
    for i in range(min(len(steps_a), len(steps_b))):
        sa, sb = steps_a[i], steps_b[i]
        if step_signature(sa) == step_signature(sb):
            continue
        da, db = _describe_step(sa), _describe_step(sb)
        fields = {
            k: (da.get(k), db.get(k))
            for k in sorted(set(da) | set(db))
            if da.get(k) != db.get(k)
        }
        entries.append(DiffEntry("changed", i, a=da, b=db, fields=fields))
    for i in range(len(steps_b), len(steps_a)):
        entries.append(DiffEntry("removed", i, a=_describe_step(steps_a[i])))
    for i in range(len(steps_a), len(steps_b)):
        entries.append(DiffEntry("added", i, b=_describe_step(steps_b[i])))

    header: dict = {}
    for key, va, vb in (
        ("on_failure", plan_a.on_failure, plan_b.on_failure),
        ("returns", plan_a.returns_key, plan_b.returns_key),
        ("declared_rounds", plan_a.declared_rounds, plan_b.declared_rounds),
        (
            "declared_collectives",
            plan_a.declared_collectives,
            plan_b.declared_collectives,
        ),
        ("overlapped", plan_a.n_overlapped, plan_b.n_overlapped),
    ):
        if va != vb:
            header[key] = {"a": va, "b": vb}

    estimate_a = estimate_b = None
    if profile is not None:
        estimate_a = estimate_plan_time(plan_a, profile)
        estimate_b = estimate_plan_time(plan_b, profile)
    return PlanDiff(
        plan_a=plan_a.name,
        plan_b=plan_b.name,
        entries=entries,
        header=header,
        estimate_a=estimate_a,
        estimate_b=estimate_b,
    )
