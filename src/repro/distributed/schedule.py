"""Declarative round-schedule IR: compile a solver epoch into an engine plan.

The paper's central systems claim is *schedule-shaped*: Newton-ADMM needs one
communication round per outer iteration where GIANT needs three and DiSCO one
per CG matvec.  Before this module, every distributed solver encoded its
schedule imperatively — ad-hoc ``cluster.map_workers`` and ``cluster.comm.*``
calls whose round count was an emergent property of call order.  The IR here
makes the round structure a first-class, inspectable object:

``LocalStep``
    One parallel compute phase: a per-worker thunk ``fn(worker, ctx)`` whose
    modelled cost (max over workers of FLOPs-derived time, straggler factors
    applied) is charged exactly as ``map_workers`` always charged it.

``Collective``
    One engine collective (``allreduce`` / ``broadcast`` / ``gather`` /
    ``scatter`` / ``allgather`` / ``reduce_scalar``) with the round-accounting
    flags of :class:`~repro.distributed.comm.Communicator`:
    ``joint_with_previous=True`` merges it into the preceding collective's
    synchronization point (the paper's "one round" for a back-to-back
    reduce+broadcast pair), ``overlap=True`` posts the transfer in the
    background so subsequent :class:`LocalStep` compute hides it (event
    engine; the lock-step path charges it in full, keeping both modes
    comparable).

``GlobalStep``
    Master-side glue (the ADMM z-update, a line-search argmin): pure Python on
    already-communicated values, charged to nobody — the same accounting the
    imperative solvers used.

``Barrier`` / ``Join``
    An explicit synchronization point, and the blocking join of previously
    overlapped collectives (charges only the unhidden remainder).

``Repeat``
    A body of steps executed a known number of times (sync-SGD's
    per-mini-batch round): declared counts multiply through while the
    description stays one body long.

``DynamicStep``
    Escape hatch for data-dependent inner loops (DiSCO's distributed CG runs
    one allreduce per matvec until convergence): the thunk receives the
    cluster and may issue rounds itself.  A plan containing one cannot declare
    a static round count; its collectives are still logged and reported.

A :class:`RoundPlan` is an ordered list of steps plus an initial context.
:func:`execute_plan` runs it against a :class:`SimulatedCluster` on either
execution path (the steps call the same ``map_workers`` / ``comm`` primitives
the imperative code called, so iterates and modelled times are bit-identical)
and *checks the declared structure*: if the observed communication rounds
differ from the plan's declared count, a :class:`ScheduleError` is raised.
``RunTrace.info["schedule"]`` records the declared plan and the per-epoch
observations for the harness and plotting to consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.distributed.faults import (
    FAULT_POLICIES,
    PartitionError,
    WorkerLostError,
)

#: collective operations a :class:`Collective` step may name
COLLECTIVE_OPS = (
    "allreduce",
    "broadcast",
    "gather",
    "scatter",
    "allgather",
    "reduce_scalar",
)


class ScheduleError(RuntimeError):
    """A plan's declared round structure disagreed with what the engine ran."""


# ---------------------------------------------------------------------------
# IR nodes
# ---------------------------------------------------------------------------

#: declared effect footprint of a step's thunk: ``{"reads": [...], "writes":
#: [...]}`` over context keys plus ``worker:<key>`` pseudo-keys for per-worker
#: state.  ``None`` means "infer from the thunk's source" (see
#: :mod:`repro.analysis.effects`).  Deliberately excluded from
#: :func:`step_signature` and ``describe()`` — effects annotate the schedule,
#: they are not part of its structural identity.
EffectSpec = Dict[str, Sequence[str]]


@dataclass
class LocalStep:
    """Per-worker compute thunk ``fn(worker, ctx)``; results bind to ``name``."""

    name: str
    fn: Callable[..., Any]
    label: str = "compute"
    #: optional subset of worker ids (default: every worker)
    workers: Optional[Sequence[int]] = None
    effects: Optional[EffectSpec] = None

    def describe(self) -> dict:
        return {"step": "local", "name": self.name, "label": self.label}


@dataclass
class Collective:
    """One communicator collective; ``payload(ctx)`` builds the buffers.

    ``on_failure`` optionally overrides the plan's fault policy for this one
    synchronization point (e.g. a plan that stalls its compute rounds but
    degrades a final diagnostic gather); ``None`` inherits the plan's policy.
    """

    name: str
    op: str
    payload: Callable[[dict], Any]
    joint_with_previous: bool = False
    overlap: bool = False
    on_failure: Optional[str] = None
    effects: Optional[EffectSpec] = None

    def __post_init__(self) -> None:
        if self.op not in COLLECTIVE_OPS:
            raise ValueError(
                f"unknown collective op {self.op!r}; expected one of {COLLECTIVE_OPS}"
            )
        if self.overlap and self.op == "reduce_scalar":
            raise ValueError("reduce_scalar does not support overlap")
        if self.on_failure is not None and self.on_failure not in FAULT_POLICIES:
            raise ValueError(
                f"on_failure must be one of {FAULT_POLICIES}, got {self.on_failure!r}"
            )

    @property
    def opens_round(self) -> bool:
        return not self.joint_with_previous

    def describe(self) -> dict:
        out = {
            "step": "collective",
            "name": self.name,
            "op": self.op,
            "joint_with_previous": self.joint_with_previous,
            "overlap": self.overlap,
        }
        if self.on_failure is not None:
            out["on_failure"] = self.on_failure
        return out


@dataclass
class GlobalStep:
    """Uncharged master-side glue ``fn(ctx)``; the result binds to ``name``."""

    fn: Callable[[dict], Any]
    name: Optional[str] = None
    effects: Optional[EffectSpec] = None

    def describe(self) -> dict:
        return {"step": "global", "name": self.name or ""}


@dataclass
class Barrier:
    """Explicit synchronization point (event engine; no-op under lock-step)."""

    label: str = "barrier"

    def describe(self) -> dict:
        return {"step": "barrier", "label": self.label}


@dataclass
class Join:
    """Block on previously overlapped collectives (charges the unhidden part)."""

    def describe(self) -> dict:
        return {"step": "join"}


@dataclass
class DynamicStep:
    """Data-dependent section ``fn(cluster, ctx)`` issuing its own rounds."""

    name: str
    fn: Callable[..., Any]
    rounds: str = "data-dependent"
    effects: Optional[EffectSpec] = None

    def describe(self) -> dict:
        return {"step": "dynamic", "name": self.name, "rounds": self.rounds}


@dataclass
class Repeat:
    """A body of steps executed ``times`` times (one trip through per round).

    Keeps the declared structure compact when an epoch is a known number of
    identical rounds (sync-SGD's per-mini-batch step): the description holds
    the body once plus the count, however many times it runs, and the declared
    round total multiplies through.
    """

    times: int
    steps: List["Step"]

    def __post_init__(self) -> None:
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")

    def describe(self) -> dict:
        return {
            "step": "repeat",
            "times": self.times,
            "steps": [s.describe() for s in self.steps],
        }


Step = Union[LocalStep, Collective, GlobalStep, Barrier, Join, DynamicStep, Repeat]


# ---------------------------------------------------------------------------
# Introspection hooks (consumed by schedule_diff / autotune)
# ---------------------------------------------------------------------------
def step_signature(step: Step) -> tuple:
    """Hashable structural identity of a step.

    Two steps with equal signatures occupy the same schedule position for
    diffing purposes: same kind, same binding name, same round-accounting
    flags.  Thunks are deliberately excluded — a plan rebuilt each epoch
    closes over fresh state, but its *schedule* is unchanged.
    """
    if isinstance(step, LocalStep):
        return ("local", step.name, step.label)
    if isinstance(step, Collective):
        return (
            "collective",
            step.op,
            step.name,
            bool(step.joint_with_previous),
            bool(step.overlap),
            step.on_failure,
        )
    if isinstance(step, GlobalStep):
        return ("global", step.name or "")
    if isinstance(step, Barrier):
        return ("barrier", step.label)
    if isinstance(step, Join):
        return ("join",)
    if isinstance(step, DynamicStep):
        return ("dynamic", step.name, step.rounds)
    if isinstance(step, Repeat):
        return ("repeat", step.times) + tuple(step_signature(s) for s in step.steps)
    raise TypeError(f"unknown plan step {step!r}")


def iter_steps(steps: Sequence[Step], *, expand_repeat: bool = True) -> Iterator[Step]:
    """Yield steps in execution order, unrolling :class:`Repeat` bodies.

    With ``expand_repeat=False`` the :class:`Repeat` node itself is yielded
    (one body, not ``times`` copies), matching the declared description.
    """
    for step in steps:
        if isinstance(step, Repeat) and expand_repeat:
            for _ in range(step.times):
                yield from iter_steps(step.steps, expand_repeat=True)
        else:
            yield step


def copy_step(step: Step) -> Step:
    """Structural copy of a step: new node objects, shared thunks."""
    if isinstance(step, Repeat):
        return Repeat(step.times, [copy_step(s) for s in step.steps])
    return _dc_replace(step)


def _count(steps: Sequence[Step], measure: Callable[[Collective], int]) -> Optional[int]:
    """Sum ``measure`` over the collectives of ``steps``; ``None`` if dynamic."""
    total = 0
    for step in steps:
        if isinstance(step, DynamicStep):
            return None
        if isinstance(step, Collective):
            total += measure(step)
        elif isinstance(step, Repeat):
            inner = _count(step.steps, measure)
            if inner is None:
                return None
            total += step.times * inner
    return total


# ---------------------------------------------------------------------------
# RoundPlan
# ---------------------------------------------------------------------------
class RoundPlan:
    """An ordered, inspectable schedule for one solver epoch.

    Built with the fluent helpers below and executed by :func:`execute_plan`.
    Steps communicate through a per-execution context dictionary: a
    :class:`LocalStep` binds the list of per-worker results to its name, a
    :class:`Collective` binds the reduced/distributed value, a
    :class:`GlobalStep` binds its return value.  ``returns`` names the context
    key whose value is the epoch's resulting iterate.

    ``on_failure`` declares how the plan reacts when an attached
    :class:`~repro.distributed.faults.FailureModel` takes a worker down at
    one of its synchronization points: ``"raise"`` (default) aborts with a
    structured :class:`~repro.distributed.faults.WorkerLostError`, ``"stall"``
    idles the cluster until the worker restarts (re-running the lost round),
    ``"degrade"`` proceeds with the surviving workers — their ids are bound
    to ``ctx["alive_workers"]`` so payload/master steps can reweight.

    Examples
    --------
    >>> plan = RoundPlan("mean-of-ones", on_failure="stall")
    >>> _ = plan.local("ones", lambda worker, ctx: 1.0)
    >>> _ = plan.allreduce("total", lambda ctx: ctx["ones"]).returns("total")
    >>> plan.declared_rounds
    1
    """

    def __init__(
        self,
        name: str,
        *,
        context: Optional[dict] = None,
        on_failure: str = "raise",
    ):
        self.name = name
        self.steps: List[Step] = []
        self.context: Dict[str, Any] = dict(context or {})
        self.returns_key: Optional[str] = None
        if on_failure not in FAULT_POLICIES:
            raise ValueError(
                f"on_failure must be one of {FAULT_POLICIES}, got {on_failure!r}"
            )
        self.on_failure = on_failure

    # -- builders ----------------------------------------------------------
    def add(self, step: Step) -> "RoundPlan":
        """Append an already-constructed step; returns the plan (fluent)."""
        self.steps.append(step)
        return self

    def local(
        self,
        name: str,
        fn: Callable[..., Any],
        *,
        label: str = "compute",
        workers: Optional[Sequence[int]] = None,
        effects: Optional[EffectSpec] = None,
    ) -> "RoundPlan":
        """Append a :class:`LocalStep`: run ``fn(worker, ctx)`` on every
        worker (or the ``workers`` subset) in parallel; the list of results
        binds to ``ctx[name]``."""
        return self.add(
            LocalStep(name, fn, label=label, workers=workers, effects=effects)
        )

    def collective(
        self,
        name: str,
        op: str,
        payload: Callable[[dict], Any],
        *,
        joint_with_previous: bool = False,
        overlap: bool = False,
        effects: Optional[EffectSpec] = None,
    ) -> "RoundPlan":
        """Append a :class:`Collective` of kind ``op`` (see
        :data:`COLLECTIVE_OPS`); ``payload(ctx)`` builds the buffers and the
        reduced/distributed value binds to ``ctx[name]``."""
        return self.add(
            Collective(
                name,
                op,
                payload,
                joint_with_previous=joint_with_previous,
                overlap=overlap,
                effects=effects,
            )
        )

    def allreduce(self, name: str, payload, **kwargs) -> "RoundPlan":
        """Append an all-reduce collective (element-wise sum, visible everywhere)."""
        return self.collective(name, "allreduce", payload, **kwargs)

    def broadcast(self, name: str, payload, **kwargs) -> "RoundPlan":
        """Append a master-to-everyone broadcast collective."""
        return self.collective(name, "broadcast", payload, **kwargs)

    def gather(self, name: str, payload, **kwargs) -> "RoundPlan":
        """Append a gather-at-the-master collective (one buffer per worker)."""
        return self.collective(name, "gather", payload, **kwargs)

    def scatter(self, name: str, payload, **kwargs) -> "RoundPlan":
        """Append a master-to-each-worker scatter collective."""
        return self.collective(name, "scatter", payload, **kwargs)

    def allgather(self, name: str, payload, **kwargs) -> "RoundPlan":
        """Append an all-gather collective (everyone receives every buffer)."""
        return self.collective(name, "allgather", payload, **kwargs)

    def reduce_scalar(self, name: str, payload, **kwargs) -> "RoundPlan":
        """Append a scalar reduction (one float per worker, summed at the
        master) — typically joined to the preceding collective's round via
        ``joint_with_previous=True``."""
        return self.collective(name, "reduce_scalar", payload, **kwargs)

    def master(
        self,
        fn: Callable[[dict], Any],
        *,
        name: Optional[str] = None,
        effects: Optional[EffectSpec] = None,
    ) -> "RoundPlan":
        """Append a :class:`GlobalStep`: uncharged master-side glue ``fn(ctx)``
        whose return value binds to ``ctx[name]`` when named."""
        return self.add(GlobalStep(fn, name=name, effects=effects))

    def barrier(self, label: str = "barrier") -> "RoundPlan":
        """Append an explicit synchronization point (event engine only)."""
        return self.add(Barrier(label))

    def join(self) -> "RoundPlan":
        """Append a :class:`Join`: block on previously overlapped collectives,
        charging only the part of the transfer compute did not hide."""
        return self.add(Join())

    def dynamic(
        self,
        name: str,
        fn: Callable[..., Any],
        *,
        rounds: str = "data-dependent",
        effects: Optional[EffectSpec] = None,
    ) -> "RoundPlan":
        """Append a :class:`DynamicStep` ``fn(cluster, ctx)`` issuing its own
        data-dependent rounds; makes the plan's round count undeclarable."""
        return self.add(DynamicStep(name, fn, rounds=rounds, effects=effects))

    def repeat(self, times: int, build: Callable[["RoundPlan"], Any]) -> "RoundPlan":
        """Append a body of steps executed ``times`` times.

        ``build`` receives a fresh builder and adds the body's steps to it;
        the description stays one body long regardless of ``times``.
        """
        body = RoundPlan(f"{self.name}-body")
        build(body)
        return self.add(Repeat(times, body.steps))

    def returns(self, key: str) -> "RoundPlan":
        """Name the context key whose value is the epoch's resulting iterate."""
        self.returns_key = key
        return self

    # -- declared structure ------------------------------------------------
    @property
    def is_static(self) -> bool:
        """True when the plan's round count is known before execution."""
        return _count(self.steps, lambda c: 0) is not None

    @property
    def declared_rounds(self) -> Optional[int]:
        """Communication rounds this plan opens (``None`` for dynamic plans)."""
        return _count(self.steps, lambda c: int(c.opens_round))

    @property
    def declared_collectives(self) -> Optional[int]:
        return _count(self.steps, lambda c: 1)

    @property
    def n_overlapped(self) -> int:
        """Overlapped collectives declared in the plan's static structure.

        Unlike the round counts, a :class:`DynamicStep` does not make this
        unknowable — the static collectives' flags are declared either way —
        so dynamic sections simply contribute nothing.
        """

        def count(steps: Sequence[Step]) -> int:
            total = 0
            for s in steps:
                if isinstance(s, Collective) and s.overlap:
                    total += 1
                elif isinstance(s, Repeat):
                    total += s.times * count(s.steps)
            return total

        return count(self.steps)

    def describe(self) -> dict:
        """Serializable declared structure (``RunTrace.info['schedule']``)."""

        def count_local(steps) -> int:
            total = 0
            for s in steps:
                if isinstance(s, LocalStep):
                    total += 1
                elif isinstance(s, Repeat):
                    total += s.times * count_local(s.steps)
            return total

        return {
            "plan": self.name,
            "rounds": self.declared_rounds,
            "collectives": self.declared_collectives,
            "overlapped": self.n_overlapped,
            "local_steps": count_local(self.steps),
            "dynamic": not self.is_static,
            "on_failure": self.on_failure,
            "steps": [s.describe() for s in self.steps],
        }

    # -- introspection -----------------------------------------------------
    def flattened(self) -> List[Step]:
        """Steps in execution order with :class:`Repeat` bodies unrolled."""
        return list(iter_steps(self.steps))

    def signature(self) -> tuple:
        """Structural identity of the whole plan (see :func:`step_signature`)."""
        return tuple(step_signature(s) for s in self.steps)

    def structural_copy(self, name: Optional[str] = None) -> "RoundPlan":
        """A plan with fresh step nodes (shared thunks) safe to rewrite.

        The autotuner's overlap proposer mutates step flags and inserts
        :class:`Join` nodes; copying first keeps the solver-built original
        intact.
        """
        clone = RoundPlan(
            name or self.name, context=self.context, on_failure=self.on_failure
        )
        clone.steps = [copy_step(s) for s in self.steps]
        clone.returns_key = self.returns_key
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rounds = self.declared_rounds
        return (
            f"RoundPlan({self.name!r}, steps={len(self.steps)}, "
            f"rounds={'dynamic' if rounds is None else rounds})"
        )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
@dataclass
class PlanExecution:
    """Outcome of one :func:`execute_plan` call: result + observed schedule."""

    result: Any
    context: dict = field(repr=False, default_factory=dict)
    rounds: int = 0
    collectives: int = 0
    bytes_transferred: float = 0.0
    overlapped: int = 0

    def summary(self) -> dict:
        """Observed per-epoch schedule facts (logged to ``trace.info``)."""
        return {
            "rounds": self.rounds,
            "collectives": self.collectives,
            "bytes": self.bytes_transferred,
            "overlapped": self.overlapped,
        }


class _PlanContext(dict):
    """Execution context that enforces overlap data dependencies.

    The simulator moves a collective's bytes immediately and models the
    transfer time separately, so the *value* of an overlapped collective is
    available in the context long before the modelled transfer completes.  A
    plan that reads it before a :class:`Join` (or a blocking collective, which
    drains the background implicitly) would therefore describe a schedule
    with a data dependency no real cluster can satisfy — compute consuming
    bytes still on the wire.  Reading an in-flight key raises
    :class:`ScheduleError` instead, making unrealizable overlap a structural
    error rather than a silently optimistic timing.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.in_flight: set = set()

    def __getitem__(self, key):
        if key in self.in_flight:
            raise ScheduleError(
                f"context key {key!r} is the result of an overlapped "
                "collective whose modelled transfer has not completed; "
                "add a Join() (or a blocking collective) before reading it"
            )
        return super().__getitem__(key)

    def get(self, key, default=None):
        # Same contract as indexing — .get must not be a guard bypass.
        if key in self.in_flight:
            self[key]  # raises ScheduleError
        return super().get(key, default)


def _guard_collective(cluster, policy: str, members: Optional[List[int]]):
    """Apply the fault policy at a collective's synchronization point.

    Returns ``(participants, base)``: the participant ids to hand the
    communicator (``None`` = full membership, the fault-free fast path) and
    the membership the payload's buffers were built for (the survivors of the
    most recent local round when one ran, every worker otherwise) — the
    executor uses ``base`` to slice per-worker buffers down to the
    participants.  ``"raise"`` aborts if any worker is down (or any member is
    behind a network partition: :class:`PartitionError`), ``"stall"`` idles
    the cluster until every down worker restarts and every cut link heals,
    ``"degrade"`` proceeds over the members still alive *and reachable* at
    the collective instant (a worker that crashed after computing but before
    the barrier is dropped: its contribution is in flight when it dies; a
    partitioned worker keeps computing but its buffer cannot cross the cut).
    """
    fs = getattr(cluster, "fault_state", None)
    base = members if members is not None else list(range(cluster.n_workers))
    if fs is None:
        return None, base
    now = cluster.clock.time
    # Cut workers whose window closed since the last synchronization point
    # rejoin here: the heal event is recorded and (event engine) their
    # unreachable window is drawn before a barrier would render it as wait.
    fs.rejoin_healed(
        now, engine=cluster.engine if cluster.event_accounting else None
    )
    down = [
        wid for wid in range(cluster.n_workers) if fs.is_down(wid, now)
    ]
    for wid in down:
        fs.note_crash(wid, fs.crash_time_of(wid, now))
    # Like ``down``, the cut set spans *all* workers, not just the current
    # membership: the Communicator backstop scans the full cluster when it
    # receives participants=None, so a cut worker outside ``base`` must be
    # stalled for (or raised on) here rather than aborting there.
    cut = [
        wid for wid in range(cluster.n_workers)
        if wid not in down and fs.is_cut(wid, now)
    ]
    if down and policy == "raise":
        raise WorkerLostError(
            down[0], now, round=fs.round,
            reason="down at collective (policy 'raise')",
        )
    if cut and policy == "raise":
        wid = cut[0]
        fs.note_partition(wid, fs.cut_start(wid, now))
        raise PartitionError(
            wid, now, heals_at=fs.heal_time(wid, now), round=fs.round,
            reason="unreachable at collective (policy 'raise')",
        )
    if (down or cut) and policy == "stall":
        while down or cut:
            if down:
                cluster.stall_for_restart(down, label="collective-stall")
            else:
                cluster.stall_for_heal(cut, label="collective-stall")
            now = cluster.clock.time
            down = [
                wid for wid in range(cluster.n_workers)
                if fs.is_down(wid, now)
            ]
            cut = [
                wid for wid in range(cluster.n_workers)
                if wid not in down and fs.is_cut(wid, now)
            ]
        # After the stall everyone needed is back, but the payload buffers
        # were built for ``base`` — a membership an earlier degraded local
        # round may have shrunk — so the collective must run over it.
        if len(base) == cluster.n_workers:
            return None, base
        return list(base), base
    if policy != "degrade":
        return None, base
    for wid in cut:
        fs.note_partition(wid, fs.cut_start(wid, now))
    alive = [wid for wid in base if wid not in down and wid not in cut]
    if not alive:
        lost = down[0] if down else (cut[0] if cut else base[0])
        raise WorkerLostError(
            lost, now, round=fs.round,
            reason="no surviving workers",
        )
    if len(alive) == cluster.n_workers:
        return None, base
    return alive, base


def _execute_steps(
    cluster,
    steps: Sequence[Step],
    ctx: _PlanContext,
    *,
    policy: str = "raise",
    state: Optional[Dict[str, Any]] = None,
) -> int:
    """Run ``steps`` in order; returns the number of overlapped collectives."""
    comm = cluster.comm
    degraded = (
        policy == "degrade" and getattr(cluster, "fault_state", None) is not None
    )
    if state is None:
        # ``members`` tracks the degraded membership of the current epoch:
        # the survivors of the most recent local round, or None for "all".
        state = {"members": None}
    overlapped = 0
    for step in steps:
        if isinstance(step, LocalStep):
            fn = step.fn
            targets = None
            if step.workers is not None:
                targets = [cluster.workers[int(i)] for i in step.workers]
            elif degraded:
                # A degraded round runs on the workers that are both alive
                # and reachable: a partitioned worker could compute, but the
                # master cannot dispatch to it or hear back across the cut.
                alive = cluster.reachable_worker_ids()
                if not alive:
                    raise WorkerLostError(
                        0, cluster.clock.time, reason="no surviving workers"
                    )
                if len(alive) < cluster.n_workers:
                    targets = [cluster.workers[i] for i in alive]
            results = cluster.map_workers(
                lambda worker, _fn=fn: _fn(worker, ctx), workers=targets
            )
            ctx[step.name] = results
            if degraded:
                state["members"] = list(cluster.last_round_survivors)
                ctx["alive_workers"] = list(cluster.last_round_survivors)
        elif isinstance(step, Collective):
            participants, base = _guard_collective(
                cluster, step.on_failure or policy, state["members"]
            )
            buffers = step.payload(ctx)
            if (
                participants is not None
                and step.op != "broadcast"  # broadcast takes ONE buffer
                and hasattr(buffers, "__len__")
                and len(buffers) == len(base)
            ):
                # Per-worker buffers were built for ``base`` (in id order);
                # slice them down to the workers still participating.
                buffers = [buffers[base.index(wid)] for wid in participants]
            kwargs: Dict[str, Any] = {
                "joint_with_previous": step.joint_with_previous
            }
            if step.op != "reduce_scalar":
                kwargs["overlap"] = step.overlap
            if participants is not None:
                kwargs["participants"] = participants
            ctx[step.name] = getattr(comm, step.op)(buffers, **kwargs)
            if step.overlap:
                overlapped += 1
                ctx.in_flight.add(step.name)
            else:
                # A blocking collective drains any background transfer before
                # it starts (see Communicator/EventEngine), so previously
                # overlapped results are safe to read from here on.
                ctx.in_flight.clear()
        elif isinstance(step, GlobalStep):
            value = step.fn(ctx)
            if step.name is not None:
                ctx[step.name] = value
        elif isinstance(step, Barrier):
            if cluster.event_accounting:
                cluster.engine.barrier(label=step.label)
        elif isinstance(step, Join):
            comm.join()
            ctx.in_flight.clear()
        elif isinstance(step, DynamicStep):
            ctx[step.name] = step.fn(cluster, ctx)
        elif isinstance(step, Repeat):
            for _ in range(step.times):
                overlapped += _execute_steps(
                    cluster, step.steps, ctx, policy=policy, state=state
                )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown plan step {step!r}")
    return overlapped


def execute_plan(cluster, plan: RoundPlan, *, check: bool = True) -> PlanExecution:
    """Run ``plan`` on ``cluster`` and verify its declared round structure.

    The executor issues the *same* ``map_workers`` / ``comm`` calls, in the
    same order with the same buffers, that the imperative solver code issued —
    which is what makes the port bit-identical in iterates and modelled times
    on both the lock-step and the event path (pinned by the golden-trace
    fixtures in ``tests/test_schedule.py``).

    When the cluster carries a :class:`~repro.distributed.faults.FailureModel`,
    the plan's ``on_failure`` policy governs every synchronization point for
    the duration of the execution (local rounds via ``map_workers``,
    collectives via the guard here).

    Examples
    --------
    ::

        plan = RoundPlan("one-allreduce")
        plan.local("g", lambda worker, ctx: worker.objective.gradient(w))
        plan.allreduce("g_sum", lambda ctx: ctx["g"])
        plan.returns("g_sum")
        execution = execute_plan(cluster, plan)   # raises ScheduleError on a
        execution.rounds                          # declared-round mismatch
    """
    comm = cluster.comm
    rounds0 = comm.log.n_rounds
    collectives0 = comm.log.n_collectives
    bytes0 = comm.log.bytes_transferred
    ctx = _PlanContext(plan.context)
    fault_state = getattr(cluster, "fault_state", None)
    if fault_state is not None and plan.on_failure == "degrade":
        ctx["alive_workers"] = cluster.reachable_worker_ids()
    with cluster.fault_policy(plan.on_failure):
        overlapped = _execute_steps(
            cluster, plan.steps, ctx, policy=plan.on_failure
        )
    if ctx.in_flight:
        # An unjoined transfer would silently drain into the *next* epoch's
        # first blocking collective, undercharging this epoch and
        # overcharging the next — per-epoch modelled times are the one thing
        # this simulator must get right, so the plan must end joined.
        raise ScheduleError(
            f"plan {plan.name!r} ended with overlapped collective(s) "
            f"{sorted(ctx.in_flight)} still in flight; add a trailing Join()"
        )

    # Indexing (not .get) so a typoed returns key fails here, at the plan,
    # and an unjoined overlapped result trips the in-flight guard.
    result = ctx[plan.returns_key] if plan.returns_key else None
    execution = PlanExecution(
        result=result,
        context=ctx,
        rounds=comm.log.n_rounds - rounds0,
        collectives=comm.log.n_collectives - collectives0,
        bytes_transferred=comm.log.bytes_transferred - bytes0,
        overlapped=overlapped,
    )
    if check and plan.declared_rounds is not None:
        if execution.rounds != plan.declared_rounds:
            raise ScheduleError(
                f"plan {plan.name!r} declares {plan.declared_rounds} "
                f"communication round(s) per epoch but executed "
                f"{execution.rounds}"
            )
        if execution.collectives != plan.declared_collectives:
            raise ScheduleError(
                f"plan {plan.name!r} declares {plan.declared_collectives} "
                f"collective(s) per epoch but executed {execution.collectives}"
            )
    return execution
