"""Real execution engine: every worker is an OS process (``engine="process"``).

The two simulated engines (``lockstep``, ``event``) run all workers on one
thread and *model* time; every speedup the repo reports through them is
modelled, not measured.  This module executes the same solver schedules on
real parallelism so the paper's wall-clock claims can be measured:

SPMD replication
    Round plans carry closures over solver state (the ADMM x-update closes
    over ``z``), which cannot be shipped to another process.  Instead of
    shipping steps, the runtime ships the *solver* (hyper-parameters only —
    cheap and picklable) and every rank runs the identical ``fit`` loop on its
    own replica of the cluster, computing only its own worker's
    :class:`~repro.distributed.schedule.LocalStep` and exchanging results
    through real collectives.  This is exactly how the paper's mpi4py
    implementation is structured: one program, N ranks, rank 0 doubling as
    the master.  The parent process *is* rank 0; ``n_workers - 1`` children
    are spawned (never forked — see the fork-safety notes below).

Determinism contract
    Every collective gathers the per-rank contributions into a list ordered
    by rank and reduces it with the *same left-fold* the simulated
    :class:`~repro.distributed.comm.Communicator` uses, so fp64 iterates are
    bit-identical to the ``event``/``lockstep`` engines.  Modelled clocks and
    per-worker timelines keep running exactly as on the ``event`` engine
    (every rank drives an identical :class:`EventEngine` replica); real time
    is recorded separately, as per-rank wall-clock timelines.

Zero-copy shards
    The parent places the full training set plus every worker's shard into
    ``multiprocessing.shared_memory`` once, at spawn; children attach NumPy
    views.  Shard bytes never travel through the command pipes, and the
    placement counter (``ProcessRuntime.shm_placements``) is asserted in
    tests.

Fork safety
    The runtime always uses the ``spawn`` start method, so children inherit
    *no* module state.  Session defaults mutated by the CLI
    (:func:`repro.backend.set_default_precision`,
    :func:`repro.harness.config.set_default_engine`, the backend registry
    default) are re-applied in the child bootstrap from explicit bootstrap
    values — never read from inherited globals.

Failure semantics (the chaos harness)
    A ``kill -9`` of a worker process is detected at the next
    synchronization point (pipe EOF / liveness probe) and surfaces as the
    same structured :class:`~repro.distributed.faults.WorkerLostError` the
    modelled fault injector raises, with the executing plan's ``on_failure``
    policy in the reason: a real process cannot be restarted mid-collective,
    so ``"stall"`` and ``"degrade"`` report *why* they cannot apply rather
    than hanging.  Modelled :class:`~repro.distributed.faults.FailureModel`
    injection and straggler models stay with the simulated engines.

A ``torch.distributed`` (gloo) transport is probed by
:func:`process_engine_info` and reported by ``python -m repro engines``; on
NumPy-only installs the pipe transport below is the implementation.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import sys
import time
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional

import numpy as np

from repro.datasets.base import ClassificationDataset
from repro.distributed.faults import WorkerLostError
from repro.metrics.timeline import WorkerTimeline, wall_clock_summary

#: seconds a blocked rank waits for a peer before declaring it hung
DEFAULT_SYNC_TIMEOUT = float(os.environ.get("REPRO_PROCESS_TIMEOUT", "120"))

#: polling granularity of the liveness watchdog (seconds)
_POLL_INTERVAL = 0.02

#: set in children by :func:`_worker_main`; lets the cluster distinguish the
#: driving parent (which owns a ProcessRuntime) from a rank-local replica
_IN_WORKER_PROCESS = False


def in_worker_process() -> bool:
    """True inside a spawned worker process (rank >= 1)."""
    return _IN_WORKER_PROCESS


def process_engine_info() -> Dict[str, Any]:
    """Introspection for ``python -m repro engines``: what real parallelism
    is available on this host."""
    try:
        cpu_count = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpu_count = os.cpu_count() or 1
    try:
        import torch.distributed as dist  # type: ignore

        if dist.is_available():
            gloo = getattr(dist, "is_gloo_available", lambda: False)()
            torch_distributed = "gloo" if gloo else "available (no gloo)"
        else:  # pragma: no cover - torch built without distributed
            torch_distributed = "built without distributed"
    except ImportError:
        torch_distributed = "not installed"
    return {
        "start_method": "spawn",
        "cpu_count": int(cpu_count),
        "torch_distributed": torch_distributed,
        "shared_memory": True,
        "sync_timeout": DEFAULT_SYNC_TIMEOUT,
    }


# ---------------------------------------------------------------------------
# Shared-memory placement (zero-copy shard handoff)
# ---------------------------------------------------------------------------
class ShmArena:
    """Owns shared-memory blocks holding datasets; parent side.

    ``place_dataset`` copies a dataset's arrays into fresh blocks exactly
    once and returns a picklable *spec* children use to attach zero-copy
    views.  ``placements`` counts blocks ever created — the transfer counter
    the zero-copy tests assert stays constant across fits.
    """

    def __init__(self) -> None:
        self._blocks: List[shared_memory.SharedMemory] = []
        self.placements = 0
        self.bytes_placed = 0

    def _place_array(self, array: np.ndarray) -> Dict[str, Any]:
        array = np.ascontiguousarray(array)
        block = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        self._blocks.append(block)
        self.placements += 1
        self.bytes_placed += int(array.nbytes)
        return {"name": block.name, "shape": array.shape, "dtype": str(array.dtype)}

    def place_dataset(self, dataset: ClassificationDataset) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "n_classes": int(dataset.n_classes),
            "name": dataset.name,
            "metadata": dict(dataset.metadata),
            "y": self._place_array(np.asarray(dataset.y)),
        }
        if dataset.is_sparse:
            X = dataset.X.tocsr()
            spec["kind"] = "csr"
            spec["X"] = {
                "data": self._place_array(X.data),
                "indices": self._place_array(X.indices),
                "indptr": self._place_array(X.indptr),
                "shape": tuple(X.shape),
            }
        else:
            spec["kind"] = "dense"
            spec["X"] = self._place_array(np.asarray(dataset.X))
        return spec

    def close(self) -> None:
        """Release and unlink every block (parent owns the lifetime)."""
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._blocks = []


#: child-side: attached blocks must outlive the views built on their buffers
_ATTACHED_BLOCKS: List[shared_memory.SharedMemory] = []  # repro-lint: ignore[RPR003] per-child-process by design


def _attach_array(spec: Dict[str, Any]) -> np.ndarray:
    # Spawned children inherit the parent's resource-tracker process, whose
    # registry is a set: the attach-side register is a no-op and the parent's
    # unlink() unregisters exactly once.  (Python 3.11 has no track= yet;
    # an explicit child-side unregister here would strip the parent's entry
    # and make its unlink() double-unregister.)
    block = shared_memory.SharedMemory(name=spec["name"])
    _ATTACHED_BLOCKS.append(block)
    return np.ndarray(
        tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=block.buf
    )


def attach_dataset(spec: Dict[str, Any]) -> ClassificationDataset:
    """Rebuild a dataset in a child as zero-copy views over shared memory."""
    if spec["kind"] == "csr":
        import scipy.sparse as sp

        xs = spec["X"]
        X = sp.csr_matrix(
            (
                _attach_array(xs["data"]),
                _attach_array(xs["indices"]),
                _attach_array(xs["indptr"]),
            ),
            shape=tuple(xs["shape"]),
        )
    else:
        X = _attach_array(spec["X"])
    return ClassificationDataset(
        X,
        _attach_array(spec["y"]),
        spec["n_classes"],
        name=spec["name"],
        metadata=dict(spec["metadata"]),
    )


# ---------------------------------------------------------------------------
# Pipe transport: deterministic star-topology collectives rooted at rank 0
# ---------------------------------------------------------------------------
class ProcessTransportError(RuntimeError):
    """A worker process failed (exception in a child, protocol desync)."""


class _Transport:
    """Collective primitives every rank calls symmetrically.

    The topology is a star rooted at rank 0 (the parent — the master is
    co-located with worker 0, as in the paper): an ``allgather`` is a gather
    of each child's contribution in rank order followed by a broadcast of
    the assembled list.  Gathering *in rank order* is what makes the
    left-fold reductions downstream bit-identical to the simulated engines.

    ``active`` is toggled by the runtime around each fit; an inactive
    transport makes the Communicator fall back to its simulated (local)
    data path, which is how the same cluster object also serves async
    solvers that cannot run SPMD.
    """

    rank: int = 0
    n_ranks: int = 1

    def __init__(self) -> None:
        self.active = False
        self.seq = 0
        self.wall: Optional[WorkerTimeline] = None
        self.bytes_exchanged = 0

    # -- wall-clock recording ---------------------------------------------
    def _record(self, t0: float, kind: str, label: str) -> None:
        if self.wall is not None:
            self.wall.advance(time.perf_counter() - t0, kind, label)  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract

    def reset(self, wall: Optional[WorkerTimeline]) -> None:
        self.seq = 0
        self.wall = wall
        self.bytes_exchanged = 0

    def allgather(self, value: Any, *, label: str = "allgather") -> List[Any]:
        raise NotImplementedError

    def broadcast(self, value: Any, *, label: str = "broadcast") -> Any:
        raise NotImplementedError


class MasterTransport(_Transport):
    """Rank 0's side of the star: owned by the parent's :class:`ProcessRuntime`."""

    def __init__(self, runtime: "ProcessRuntime") -> None:
        super().__init__()
        self._runtime = weakref.proxy(runtime)
        self.rank = 0
        self.n_ranks = runtime.n_ranks

    def _recv_tx(self, rank: int) -> Any:
        tag, seq, payload = self._runtime.recv_from(rank)
        if tag == "error":
            raise ProcessTransportError(
                f"worker process {rank} failed:\n{payload}"
            )
        if tag != "tx" or seq != self.seq:
            raise ProcessTransportError(
                f"worker {rank} desynchronized: expected tx #{self.seq}, "
                f"got {tag!r} #{seq}"
            )
        return payload

    def allgather(self, value: Any, *, label: str = "allgather") -> List[Any]:
        t0 = time.perf_counter()  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
        parts: List[Any] = [value] + [None] * (self.n_ranks - 1)
        for rank in range(1, self.n_ranks):
            parts[rank] = self._recv_tx(rank)
        for rank in range(1, self.n_ranks):
            self._runtime.send_to(rank, ("tx", self.seq, parts))
        self.seq += 1
        self._record(t0, "comm", label)
        return parts

    def broadcast(self, value: Any, *, label: str = "broadcast") -> Any:
        t0 = time.perf_counter()  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
        for rank in range(1, self.n_ranks):
            self._runtime.send_to(rank, ("tx", self.seq, value))
        self.seq += 1
        self._record(t0, "comm", label)
        return value


class ChildTransport(_Transport):
    """A child rank's side of the star (one duplex pipe to the parent)."""

    def __init__(self, rank: int, n_ranks: int, conn, timeout: float) -> None:
        super().__init__()
        self.rank = int(rank)
        self.n_ranks = int(n_ranks)
        self.conn = conn
        self.timeout = float(timeout)

    def _recv(self) -> Any:
        deadline = time.monotonic() + self.timeout  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
        parent = mp.parent_process()
        while not self.conn.poll(_POLL_INTERVAL):
            if parent is not None and not parent.is_alive():
                sys.exit(1)  # orphaned: the driver is gone
            if time.monotonic() > deadline:  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
                raise ProcessTransportError(
                    f"rank {self.rank}: no message from the driver within "
                    f"{self.timeout:.0f}s"
                )
        try:
            return self.conn.recv()
        except EOFError:
            sys.exit(1)

    def _recv_tx(self) -> Any:
        tag, seq, payload = self._recv()
        if tag != "tx" or seq != self.seq:
            raise ProcessTransportError(
                f"rank {self.rank} desynchronized: expected tx #{self.seq}, "
                f"got {tag!r} #{seq}"
            )
        return payload

    def allgather(self, value: Any, *, label: str = "allgather") -> List[Any]:
        t0 = time.perf_counter()  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
        self.conn.send(("tx", self.seq, value))
        parts = self._recv_tx()
        self.seq += 1
        self._record(t0, "comm", label)
        return list(parts)

    def broadcast(self, value: Any, *, label: str = "broadcast") -> Any:
        t0 = time.perf_counter()  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
        value = self._recv_tx()
        self.seq += 1
        self._record(t0, "comm", label)
        return value


# ---------------------------------------------------------------------------
# The per-rank role: SPMD map_workers + wall-clock timelines
# ---------------------------------------------------------------------------
class ProcessRole:
    """What one rank does during an SPMD fit.

    Attached to a cluster (parent or rank-local replica); while ``active``,
    :meth:`map_workers` computes only this rank's worker and allgathers
    ``(result, modelled_time, flops)`` triples so every rank binds the full
    per-worker result list — and advances the *same* modelled clocks the
    ``event`` engine would.
    """

    def __init__(self, transport: _Transport) -> None:
        self.transport = transport
        self.rank = transport.rank
        self.wall = WorkerTimeline(self.rank)

    @property
    def active(self) -> bool:
        return self.transport.active

    def activate(self) -> None:
        self.wall = WorkerTimeline(self.rank)
        self.transport.reset(self.wall)
        self.transport.active = True

    def deactivate(self) -> None:
        self.transport.active = False

    def map_workers(self, cluster, fn, targets, advance_clock: bool) -> List[Any]:
        local = next(
            (w for w in targets if w.worker_id == self.rank), None
        )
        payload = None
        if local is not None:
            t0 = time.perf_counter()  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
            result = fn(local)
            self.wall.advance(time.perf_counter() - t0, "busy", "map_workers")  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
            payload = (
                result,
                local.modelled_compute_time(),
                local.flops_since_mark(),
            )
        gathered = self.transport.allgather(payload, label="map_workers")
        entries = []
        for w in targets:
            entry = gathered[w.worker_id]
            if entry is None:  # pragma: no cover - defensive SPMD check
                raise ProcessTransportError(
                    f"rank {w.worker_id} produced no result for a local round "
                    "— the replicas diverged"
                )
            entries.append(entry)
        if cluster._process_flops is None:
            cluster._process_flops = np.zeros(cluster.n_workers)
        for w, (_, _, flops) in zip(targets, entries):
            cluster._process_flops[w.worker_id] += flops
        if advance_clock:
            cluster.engine.run_round(
                {w.worker_id: t for w, (_, t, _) in zip(targets, entries)},
                category="compute",
            )
            cluster.last_round_survivors = [w.worker_id for w in targets]
        return [result for result, _, _ in entries]


# ---------------------------------------------------------------------------
# Parent-side runtime: spawn, dispatch fits, chaos detection, teardown
# ---------------------------------------------------------------------------
class ProcessRuntime:
    """Drives ``n_workers - 1`` spawned worker processes for one cluster.

    Created lazily by ``SimulatedCluster(engine="process")`` in the parent.
    Children are spawned on the first fit and reused across fits; a detected
    worker loss tears the pool down (the next fit respawns it).
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.n_ranks = cluster.n_workers
        self.timeout = DEFAULT_SYNC_TIMEOUT
        self.in_fit = False
        self.role = ProcessRole(MasterTransport(self))
        self.arena: Optional[ShmArena] = None
        self._procs: Dict[int, mp.process.BaseProcess] = {}
        self._conns: Dict[int, Any] = {}
        self.child_info: Dict[int, dict] = {}
        self._finalizer = weakref.finalize(self, _finalize_runtime, self)
        cluster._process_role = self.role
        cluster.comm.transport = self.role.transport

    # -- lifecycle ---------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs) or self.n_ranks == 1

    @property
    def shm_placements(self) -> int:
        return self.arena.placements if self.arena is not None else 0

    @property
    def shm_bytes(self) -> int:
        return self.arena.bytes_placed if self.arena is not None else 0

    def worker_pids(self) -> Dict[int, int]:
        """rank -> OS pid of every live *spawned* worker process.

        Rank 0 is this process (the master, co-located with worker 0 as in
        the paper's deployment) and is deliberately not listed: the chaos
        harness targets these pids with ``kill -9``, and killing rank 0 is
        killing the caller.
        """
        return {r: p.pid for r, p in self._procs.items() if p.is_alive()}

    def ensure_started(self) -> None:
        if self._procs or self.n_ranks == 1:
            return
        cluster = self.cluster
        ctx = mp.get_context("spawn")
        if self.arena is None:
            self.arena = ShmArena()
        arena = self.arena
        train_spec = arena.place_dataset(cluster.train)
        shard_specs = [arena.place_dataset(w.shard) for w in cluster.workers]
        session = {
            "backend": cluster.backend.name,
            "precision": cluster.precision,
            "engine": "process",
        }
        base = {
            "n_workers": self.n_ranks,
            "train": train_spec,
            "shards": shard_specs,
            "loss": cluster._loss_factory_spec(),
            "network": cluster.network,
            "devices": cluster.devices,
            "session": session,
            "timeout": self.timeout,
        }
        try:
            pickle.dumps(base)
        except Exception as exc:
            raise ValueError(
                "engine='process' must ship the cluster configuration to "
                f"spawned workers, but it does not pickle: {exc!r}. Use a "
                "named loss ('softmax'/'logistic') or a module-level factory."
            ) from exc
        for rank in range(1, self.n_ranks):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(rank, child_conn, base),
                daemon=True,
                name=f"repro-worker-{rank}",
            )
            proc.start()
            child_conn.close()
            self._procs[rank] = proc
            self._conns[rank] = parent_conn
        for rank in range(1, self.n_ranks):
            tag, _, info = self.recv_from(rank)
            if tag != "ready":
                raise ProcessTransportError(
                    f"worker {rank} failed to start: {info}"
                )
            self.child_info[rank] = info

    def shutdown(self, *, kill: bool = False) -> None:
        """Stop children and release shared memory; safe to call twice."""
        for rank, conn in list(self._conns.items()):
            proc = self._procs.get(rank)
            if not kill and proc is not None and proc.is_alive():
                try:
                    conn.send(("cmd", 0, ("stop", None)))
                except (BrokenPipeError, OSError):
                    pass
        for proc in list(self._procs.values()):
            proc.join(timeout=None if kill else 5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._procs = {}
        self._conns = {}
        self.child_info = {}
        if self.arena is not None:
            self.arena.close()
            self.arena = None

    # -- wire primitives (used by MasterTransport) --------------------------
    def send_to(self, rank: int, message) -> None:
        try:
            self._conns[rank].send(message)
        except (BrokenPipeError, OSError):
            self._lost(rank, reason_suffix="its pipe closed mid-send")

    def recv_from(self, rank: int):
        conn = self._conns[rank]
        proc = self._procs[rank]
        deadline = time.monotonic() + self.timeout  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
        while not conn.poll(_POLL_INTERVAL):
            if not proc.is_alive():
                self._lost(rank)
            if time.monotonic() > deadline:  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
                self._lost(
                    rank,
                    reason_suffix=(
                        f"it sent nothing for {self.timeout:.0f}s "
                        "(hung worker watchdog)"
                    ),
                )
        try:
            return conn.recv()
        except (EOFError, OSError):
            # EOFError: clean close; ConnectionResetError/OSError: the peer
            # was SIGKILLed with bytes in flight.  Same structured loss.
            self._lost(rank)

    def _lost(self, rank: int, *, reason_suffix: Optional[str] = None) -> None:
        """Raise the structured loss for a dead/hung worker process.

        The active plan's ``on_failure`` policy shapes the message: unlike
        the modelled fault injector, a killed OS process cannot be restarted
        or voted out of the membership mid-collective, so every policy ends
        the run — but each reports *its own* reason, which is what the chaos
        tests pin down.
        """
        policy = getattr(self.cluster, "_fault_policy", "raise")
        proc = self._procs.get(rank)
        if proc is not None and proc.exitcode is None:
            proc.join(timeout=0.5)  # reap so the exit code is readable
        exitcode = proc.exitcode if proc is not None else None
        died = reason_suffix or (
            f"its process died (exit code {exitcode})"
        )
        if policy == "stall":
            reason = (
                f"{died}; a real OS process cannot restart — "
                "policy 'stall' cannot complete"
            )
        elif policy == "degrade":
            reason = (
                f"{died}; the process engine does not support degraded "
                "membership (policy 'degrade') — simulate crashes on "
                "engine='event' with a FailureModel instead"
            )
        else:
            reason = f"{died} at a synchronization point (policy 'raise')"
        error = WorkerLostError(
            rank, self.cluster.clock.time, reason=reason
        )
        # The surviving replicas are mid-collective and cannot make
        # progress; tear the pool down so the next fit starts clean.
        self.shutdown(kill=True)
        raise error

    # -- fit dispatch --------------------------------------------------------
    def should_dispatch(self, solver) -> bool:
        """Whether ``solver.fit`` should run SPMD on real processes.

        Asynchronous solvers (event-queue schedules, not round plans) fall
        back to the in-process simulated path on the same cluster.
        """
        return (not self.in_fit) and getattr(
            solver, "supports_process_engine", True
        )

    def run_fit(self, solver, cluster, *, test=None, w0=None, reset_cluster=True):
        self.ensure_started()
        dead = [r for r, p in self._procs.items() if not p.is_alive()]
        if dead:
            with cluster.fault_policy(solver.on_failure):
                self._lost(dead[0])
        # Children skip accuracy evaluation (it never feeds control flow);
        # everything that does — gradients, tolerances, stop flags — is
        # recomputed identically by every replica.
        child_solver = pickle.loads(pickle.dumps(solver))
        child_solver.record_accuracy = False
        w0_wire = None if w0 is None else np.asarray(w0, dtype=np.float64)
        command = (
            "fit",
            {"solver": child_solver, "w0": w0_wire, "reset": reset_cluster},
        )
        for rank in range(1, self.n_ranks):
            self.send_to(rank, ("cmd", 0, command))
        self.in_fit = True
        self.role.activate()
        t0 = time.perf_counter()  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
        try:
            trace = solver.fit(
                cluster, test=test, w0=w0, reset_cluster=reset_cluster
            )
        except BaseException:
            self.shutdown(kill=True)
            raise
        finally:
            self.in_fit = False
            self.role.deactivate()
        elapsed = time.perf_counter() - t0  # repro-lint: ignore[RPR002] measured wall-clock is this engine's contract
        walls: Dict[int, dict] = {0: self.role.wall.to_dict()}
        for rank in range(1, self.n_ranks):
            tag, _, payload = self.recv_from(rank)
            if tag == "error":
                self.shutdown(kill=True)
                raise ProcessTransportError(
                    f"worker process {rank} failed:\n{payload}"
                )
            if tag != "done":  # pragma: no cover - defensive
                self.shutdown(kill=True)
                raise ProcessTransportError(
                    f"worker {rank}: expected fit completion, got {tag!r}"
                )
            walls[rank] = payload["wall"]
        rows = [walls[r] for r in sorted(walls)]
        trace.info["wall_clock"] = {
            "engine": "process",
            "n_processes": self.n_ranks,
            "start_method": "spawn",
            "elapsed_seconds": float(elapsed),
            "workers": rows,
            "summary": wall_clock_summary(rows),
        }
        return trace


def _finalize_runtime(runtime: ProcessRuntime) -> None:
    try:
        runtime.shutdown(kill=True)
    except Exception:  # pragma: no cover - interpreter teardown # repro-lint: ignore[RPR004]
        pass


# ---------------------------------------------------------------------------
# Child bootstrap
# ---------------------------------------------------------------------------
def _worker_main(rank: int, conn, bootstrap: Dict[str, Any]) -> None:
    """Entry point of a spawned worker process (top-level: spawn-picklable).

    Builds this rank's replica of the cluster over shared-memory data, then
    serves ``fit`` commands until stopped.  Session defaults are applied
    from explicit bootstrap values — under ``spawn`` nothing is inherited,
    and nothing is read from the parent's module globals.
    """
    global _IN_WORKER_PROCESS
    _IN_WORKER_PROCESS = True
    try:
        from repro.backend import set_default_backend, set_default_precision
        from repro.distributed.cluster import SimulatedCluster
        from repro.harness.config import set_default_engine

        session = bootstrap["session"]
        set_default_backend(session["backend"])
        set_default_precision(session["precision"])
        set_default_engine(session["engine"])

        train = attach_dataset(bootstrap["train"])
        shards = [attach_dataset(spec) for spec in bootstrap["shards"]]
        cluster = SimulatedCluster(
            train,
            bootstrap["n_workers"],
            loss=bootstrap["loss"],
            network=bootstrap["network"],
            device=bootstrap["devices"],
            backend=session["backend"],
            precision=session["precision"],
            engine="process",
            shards=shards,
        )
        transport = ChildTransport(
            rank, bootstrap["n_workers"], conn, bootstrap["timeout"]
        )
        role = ProcessRole(transport)
        cluster._process_role = role
        cluster.comm.transport = transport
        conn.send(
            (
                "ready",
                0,
                {
                    "rank": rank,
                    "pid": os.getpid(),
                    "start_method": mp.get_start_method(),
                    "session": dict(session),
                },
            )
        )
    except Exception:
        try:
            conn.send(("error", 0, traceback.format_exc()))
        finally:
            return

    while True:
        try:
            tag, _, payload = transport._recv()
        except ProcessTransportError:
            return
        if tag != "cmd":
            conn.send(("error", 0, f"rank {rank}: unexpected message {tag!r}"))
            continue
        op, arg = payload
        if op == "stop":
            return
        if op != "fit":
            conn.send(("error", 0, f"rank {rank}: unknown command {op!r}"))
            continue
        solver = arg["solver"]
        role.activate()
        try:
            solver.fit(
                cluster,
                test=None,
                w0=arg["w0"],
                reset_cluster=arg["reset"],
            )
        except SystemExit:
            raise
        except BaseException:
            role.deactivate()
            try:
                conn.send(("error", 0, traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return
            continue
        role.deactivate()
        try:
            conn.send(("done", 0, {"wall": role.wall.to_dict()}))
        except (BrokenPipeError, OSError):
            return
