"""Compute-device cost model.

Converts FLOP counts (from :class:`repro.solvers.base.CountingObjective`) into
modelled execution time on an accelerator.  The model is the usual roofline
simplification: time = kernel launch overhead + max(compute time, memory
time), with an efficiency factor because dense-but-skinny ML kernels rarely
reach peak throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceModel:
    """A simple roofline-style device model.

    Attributes
    ----------
    name:
        Label used in reports.
    peak_flops:
        Peak floating-point throughput in FLOP/s.
    memory_bandwidth:
        Peak memory bandwidth in bytes/s.
    efficiency:
        Fraction of peak sustained by the workloads modelled here.
    kernel_overhead:
        Fixed per-invocation overhead in seconds (kernel launches, Python
        dispatch); charged once per :meth:`compute_time` call.
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    efficiency: float = 0.35
    kernel_overhead: float = 5e-5

    def __post_init__(self) -> None:
        check_positive(self.peak_flops, name="peak_flops")
        check_positive(self.memory_bandwidth, name="memory_bandwidth")
        check_positive(self.efficiency, name="efficiency")
        check_positive(self.kernel_overhead, name="kernel_overhead", strict=False)

    def compute_time(self, flops: float, bytes_moved: float = 0.0) -> float:
        """Modelled seconds to execute ``flops`` FLOPs moving ``bytes_moved`` bytes."""
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        if flops == 0.0 and bytes_moved == 0.0:
            return 0.0
        compute = flops / (self.peak_flops * self.efficiency)
        memory = bytes_moved / self.memory_bandwidth
        return self.kernel_overhead + max(compute, memory)

    def sustained_flops(self) -> float:
        """Sustained throughput (peak x efficiency) in FLOP/s."""
        return self.peak_flops * self.efficiency


def tesla_p100() -> DeviceModel:
    """NVIDIA Tesla P100 (the accelerator used in the paper's cluster).

    10.6 TFLOP/s single precision, 732 GB/s HBM2.  The efficiency factor
    reflects that the solvers' GEMMs are tall-skinny; the overhead is the
    amortized per-round launch cost (a round fuses a handful of kernels).
    """
    return DeviceModel(
        name="tesla_p100",
        peak_flops=10.6e12,
        memory_bandwidth=732e9,
        efficiency=0.30,
        kernel_overhead=2e-6,
    )


def cpu_xeon_gold() -> DeviceModel:
    """A 12-core Xeon Gold socket (the paper's host CPU), ~1 TFLOP/s fp64."""
    return DeviceModel(
        name="cpu_xeon_gold",
        peak_flops=1.0e12,
        memory_bandwidth=120e9,
        efficiency=0.5,
        kernel_overhead=1e-6,
    )


def device_for_backend(backend=None) -> DeviceModel:
    """The :class:`DeviceModel` matching where the active array backend's
    data lives.

    Keys cost accounting off the execution substrate: the NumPy default keeps
    modelling the paper's P100 cluster (the simulation stands in for the GPUs
    while computing on the host), CuPy maps to the P100, and Torch maps to
    the P100 or the host CPU depending on CUDA availability.  This is what
    ``device="auto"`` resolves through in the harness.
    """
    from repro.backend import get_backend

    return get_backend(backend).default_device_model()
