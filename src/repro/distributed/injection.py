"""Seeded RNG plumbing shared by the injection models (stragglers, faults).

Both :class:`~repro.distributed.stragglers.StragglerModel` and
:class:`~repro.distributed.faults.FailureModel` draw their schedules from a
seed, and both are routinely attached to the *same* cluster with the *same*
seed.  If they derived their generators identically, their draw sequences
would be perfectly correlated — a straggler round would silently consume the
failure schedule's randomness (or vice versa) and neither schedule would be
reproducible on its own.  This module is the one place that derivation lives:

* ``injection_rng(seed)`` reproduces the historical
  :func:`~repro.utils.rng.check_random_state` derivation bit-for-bit, so
  existing straggler schedules are unchanged;
* ``injection_rng(seed, stream="...")`` derives a statistically independent
  child keyed by the stream name, so differently-named consumers of one seed
  never share draws;
* ``injection_worker_rngs(seed, n, stream="...")`` derives one independent
  generator *per worker*, which makes per-worker schedules (stochastic MTBF
  crash sequences) order-independent: querying worker 3's schedule never
  perturbs worker 0's.

Examples
--------
>>> a = injection_rng(0)                      # StragglerModel's stream
>>> b = injection_rng(0, stream="failures")   # FailureModel's stream
>>> float(a.random()) != float(b.random())    # same seed, independent draws
True
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.rng import RandomStateLike, check_random_state, spawn_rngs


def _stream_salt(stream: str) -> List[int]:
    """Stable integer words for a stream name (no hash(): PYTHONHASHSEED-proof)."""
    return [int(b) for b in stream.encode("utf-8")]


def injection_rng(
    random_state: RandomStateLike, stream: Optional[str] = None
) -> np.random.Generator:
    """Normalize a seed into a generator, optionally on a named stream.

    ``stream=None`` is exactly :func:`~repro.utils.rng.check_random_state`
    (the derivation :class:`StragglerModel` has always used, kept so existing
    straggler schedules stay bit-identical).  A string stream derives an
    independent child via :class:`numpy.random.SeedSequence` salting, so two
    models sharing one seed draw from disjoint sequences.
    """
    if stream is None:
        return check_random_state(random_state)
    return spawn_rngs(random_state, 1, salt=_stream_salt(stream))[0]


def injection_worker_rngs(
    random_state: RandomStateLike, n_workers: int, stream: str
) -> List[np.random.Generator]:
    """One independent generator per worker on a named stream.

    Per-worker streams make lazily-sampled schedules deterministic regardless
    of query order: extending worker ``i``'s schedule consumes only worker
    ``i``'s generator.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return spawn_rngs(random_state, n_workers, salt=_stream_salt(stream))
