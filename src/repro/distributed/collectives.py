"""Alternative collective-communication algorithms and their cost models.

The base :class:`~repro.distributed.network.NetworkModel` charges binomial-tree
collectives (the paper's ``O(log N)`` claim).  Real MPI/NCCL stacks switch
algorithms with message size and node count — latency-bound small messages
favour trees or recursive doubling, bandwidth-bound large messages favour
rings — and the choice visibly moves the epoch-time breakdown of every method
in this library.  :class:`TunedNetworkModel` exposes that choice as a
configuration knob so the communication-sensitivity ablation can sweep it
without touching any solver code.

Cost conventions (alpha-beta model, ``alpha`` = latency, ``beta`` = 1/bandwidth):

* tree reduce/broadcast: ``ceil(log2 N) * (alpha + n*beta)``
* recursive-doubling allreduce: ``ceil(log2 N) * (alpha + n*beta)``
* ring allreduce: ``2 (N-1) * (alpha + (n/N)*beta)`` — bandwidth optimal
* ring allgather: ``(N-1) * (alpha + (n/N)*beta)``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.distributed.network import NetworkModel

#: Algorithms understood by :class:`TunedNetworkModel` for allreduce.
ALLREDUCE_ALGORITHMS = ("tree", "ring", "recursive_doubling")

#: Algorithms understood by :class:`TunedNetworkModel` for allgather.
ALLGATHER_ALGORITHMS = ("ring", "bruck")


def tree_allreduce_time(network: NetworkModel, n_workers: int, nbytes: float) -> float:
    """Reduce-then-broadcast over a binomial tree (the base model's default)."""
    return network.reduce(n_workers, nbytes) + network.broadcast(n_workers, nbytes)


def recursive_doubling_allreduce_time(
    network: NetworkModel, n_workers: int, nbytes: float
) -> float:
    """Recursive-doubling allreduce: ``log2 N`` exchange rounds of the full buffer."""
    if n_workers <= 1:
        return 0.0
    rounds = int(math.ceil(math.log2(n_workers)))
    return rounds * network.point_to_point(nbytes)


def ring_allreduce_time(network: NetworkModel, n_workers: int, nbytes: float) -> float:
    """Bandwidth-optimal ring allreduce (reduce-scatter + allgather phases)."""
    if n_workers <= 1:
        return 0.0
    chunk = nbytes / n_workers
    return 2.0 * (n_workers - 1) * network.point_to_point(chunk)


def ring_allgather_time(network: NetworkModel, n_workers: int, nbytes_per_worker: float) -> float:
    """Ring allgather: ``N - 1`` steps, each moving one worker's buffer."""
    if n_workers <= 1:
        return 0.0
    return (n_workers - 1) * network.point_to_point(nbytes_per_worker)


def bruck_allgather_time(network: NetworkModel, n_workers: int, nbytes_per_worker: float) -> float:
    """Bruck allgather: ``log2 N`` rounds with doubling payloads (latency optimal)."""
    if n_workers <= 1:
        return 0.0
    rounds = int(math.ceil(math.log2(n_workers)))
    total = 0.0
    payload = nbytes_per_worker
    for _ in range(rounds):
        total += network.point_to_point(payload)
        payload = min(payload * 2, nbytes_per_worker * n_workers)
    return total


@dataclass(frozen=True)
class TunedNetworkModel(NetworkModel):
    """A :class:`NetworkModel` with selectable allreduce / allgather algorithms.

    Attributes
    ----------
    allreduce_algorithm:
        ``"tree"`` (default, reduce + broadcast), ``"ring"`` or
        ``"recursive_doubling"``.
    allgather_algorithm:
        ``"ring"`` (default) or ``"bruck"``.
    """

    allreduce_algorithm: str = "tree"
    allgather_algorithm: str = "ring"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.allreduce_algorithm not in ALLREDUCE_ALGORITHMS:
            raise ValueError(
                f"unknown allreduce algorithm {self.allreduce_algorithm!r}; "
                f"expected one of {ALLREDUCE_ALGORITHMS}"
            )
        if self.allgather_algorithm not in ALLGATHER_ALGORITHMS:
            raise ValueError(
                f"unknown allgather algorithm {self.allgather_algorithm!r}; "
                f"expected one of {ALLGATHER_ALGORITHMS}"
            )

    def allreduce(self, n_workers: int, nbytes: float) -> float:
        if self.allreduce_algorithm == "ring":
            return ring_allreduce_time(self, n_workers, nbytes)
        if self.allreduce_algorithm == "recursive_doubling":
            return recursive_doubling_allreduce_time(self, n_workers, nbytes)
        return tree_allreduce_time(self, n_workers, nbytes)

    def allgather(self, n_workers: int, nbytes_per_worker: float) -> float:
        if self.allgather_algorithm == "bruck":
            return bruck_allgather_time(self, n_workers, nbytes_per_worker)
        return ring_allgather_time(self, n_workers, nbytes_per_worker)


def tuned_network(
    base: NetworkModel,
    *,
    allreduce_algorithm: str = "tree",
    allgather_algorithm: str = "ring",
) -> TunedNetworkModel:
    """Copy an existing network model with different collective algorithms."""
    return TunedNetworkModel(
        name=f"{base.name}[{allreduce_algorithm}]",
        latency=base.latency,
        bandwidth=base.bandwidth,
        allreduce_algorithm=allreduce_algorithm,
        allgather_algorithm=allgather_algorithm,
    )


# ---------------------------------------------------------------------------
# Real-transport (process engine) IPC cost model
# ---------------------------------------------------------------------------
#: pickle + pipe throughput of a star-topology allgather on one host
#: (order-of-magnitude; measured on local unix pipes, not tuned per machine)
PIPE_BANDWIDTH_BYTES_PER_S = 1.5e9

#: per-message overhead of one pipe send/recv (syscalls + pickle framing)
PIPE_MESSAGE_OVERHEAD_S = 40e-6


def star_allgather_ipc_seconds(
    n_workers: int,
    nbytes: float,
    *,
    bandwidth: float = PIPE_BANDWIDTH_BYTES_PER_S,
    overhead: float = PIPE_MESSAGE_OVERHEAD_S,
) -> float:
    """Estimated real IPC cost of the process engine's pipe allgather.

    The transport in :mod:`repro.distributed.process_engine` is a star rooted
    at rank 0: ``N - 1`` sequential receives of one buffer each, then
    ``N - 1`` sends of the assembled ``N``-buffer list — ``O(N)`` messages
    and ``O(N^2)`` bytes per collective, the price paid for a deterministic
    rank-ordered reduction on pipes.  This estimator is the "when do modelled
    and wall-clock times diverge" half of ``docs/performance.md``: a solver
    whose per-round compute sits below this cost cannot show real speedup,
    no matter what the modelled interconnect says.
    """
    if n_workers <= 1:
        return 0.0
    inbound = (n_workers - 1) * (overhead + nbytes / bandwidth)
    outbound = (n_workers - 1) * (overhead + n_workers * nbytes / bandwidth)
    return inbound + outbound
