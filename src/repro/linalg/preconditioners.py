"""Preconditioners for the inner Krylov solves.

On ill-conditioned problems (the CIFAR-10-like workload) the unpreconditioned
CG budget of 10 iterations leaves a large relative residual; a cheap diagonal
(Jacobi) preconditioner built from a stochastic Hessian-diagonal estimate
recovers most of the lost accuracy without ever materializing the Hessian.
These helpers stay within the Hessian-free contract: everything is built from
Hessian-vector products.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.operators import DiagonalOperator, LinearOperator
from repro.objectives.base import Objective
from repro.utils.rng import check_random_state


def estimate_hessian_diagonal(
    objective: Objective,
    w: np.ndarray,
    *,
    n_probes: int = 10,
    random_state=None,
) -> np.ndarray:
    """Stochastic estimate of ``diag(H(w))`` from Hessian-vector products.

    Uses the Bekas-Kokiopoulou-Saad estimator: for Rademacher probes ``v``,
    ``E[v * (H v)] = diag(H)``.  Costs ``n_probes`` Hessian-vector products.

    Parameters
    ----------
    objective:
        Objective exposing ``hvp``.
    w:
        Point at which the Hessian is taken.
    n_probes:
        Number of Rademacher probe vectors.
    random_state:
        Seed for the probes.

    Returns
    -------
    numpy.ndarray
        Length-``dim`` estimate of the Hessian diagonal.
    """
    if n_probes < 1:
        raise ValueError(f"n_probes must be >= 1, got {n_probes}")
    rng = check_random_state(random_state)
    backend = getattr(objective, "backend", None)
    if backend is None:
        from repro.backend import get_backend

        backend = get_backend("numpy")
    w = objective.check_weights(w) if hasattr(objective, "check_weights") else w
    dtype = getattr(w, "dtype", None)
    diag = backend.zeros(objective.dim, dtype=dtype)
    for _ in range(n_probes):
        # Probes are drawn on the host (via the backend helper) for
        # determinism across backends and follow the weight dtype so the
        # resulting Jacobi preconditioner can be applied inside a
        # same-precision CG solve.
        v = backend.rademacher(objective.dim, rng, dtype=dtype)
        diag = diag + v * objective.hvp(w, v)
    return diag / n_probes


def jacobi_preconditioner(
    diagonal: np.ndarray,
    *,
    damping: float = 0.0,
    floor: float = 1e-12,
) -> DiagonalOperator:
    """Inverse-diagonal (Jacobi) preconditioner ``M^{-1} = diag(1 / (d + damping))``.

    Parameters
    ----------
    diagonal:
        (Estimated) diagonal of the operator to precondition.
    damping:
        Added to every diagonal entry before inversion (use the L2
        regularization strength, or the ADMM penalty, to keep the
        preconditioner SPD even when the estimate has small/negative entries).
    floor:
        Entries below this after damping are clamped to it.
    """
    from repro.backend.ops import ensure_float_array

    diagonal = ensure_float_array(diagonal).ravel()
    if damping < 0:
        raise ValueError(f"damping must be >= 0, got {damping}")
    from repro.backend import infer_backend

    xp = infer_backend(diagonal).xp
    d = xp.maximum(diagonal + damping, floor)
    return DiagonalOperator(1.0 / d)


def hessian_jacobi_preconditioner(
    objective: Objective,
    w: np.ndarray,
    *,
    n_probes: int = 10,
    damping: float = 0.0,
    random_state=None,
) -> DiagonalOperator:
    """Convenience wrapper: estimate ``diag(H(w))`` and build a Jacobi preconditioner."""
    diag = estimate_hessian_diagonal(
        objective, w, n_probes=n_probes, random_state=random_state
    )
    return jacobi_preconditioner(diag, damping=damping)


class RegularizerPreconditioner(LinearOperator):
    """Preconditioner ``(lam + rho)^{-1} I`` for proximally augmented objectives.

    The ADMM subproblem Hessian is ``H_loss + (lam + rho) I``; when the loss
    Hessian is small relative to the shift (strong penalties / late
    iterations) the scaled identity is already an effective preconditioner and
    costs nothing to build.
    """

    def __init__(self, dim: int, shift: float):
        if shift <= 0:
            raise ValueError(f"shift must be positive, got {shift}")
        self.shift = float(shift)
        # No cast: dtype and backend of the incoming vector are preserved.
        super().__init__(dim, lambda v: v / self.shift)


def make_preconditioner(
    kind: Optional[str],
    objective: Objective,
    w: np.ndarray,
    *,
    damping: float = 0.0,
    n_probes: int = 10,
    random_state=None,
) -> Optional[LinearOperator]:
    """Build a named preconditioner (or ``None``).

    Parameters
    ----------
    kind:
        ``None`` / ``"none"`` (no preconditioning), ``"jacobi"`` (stochastic
        Hessian-diagonal Jacobi), or ``"shift"`` (inverse of the damping
        shift alone).
    """
    if kind is None or kind == "none":
        return None
    if kind == "jacobi":
        return hessian_jacobi_preconditioner(
            objective, w, n_probes=n_probes, damping=damping, random_state=random_state
        )
    if kind == "shift":
        return RegularizerPreconditioner(objective.dim, max(damping, 1e-12))
    raise ValueError(
        f"unknown preconditioner {kind!r}; expected None, 'none', 'jacobi' or 'shift'"
    )
