"""Lanczos tridiagonalization and spectrum estimation.

Power iteration (:mod:`repro.linalg.condition`) estimates the extreme
eigenvalues one at a time; the Lanczos process approximates *both* ends of the
spectrum of a symmetric operator simultaneously from a single Krylov sweep,
which is what the conditioning studies and the spectral-penalty diagnostics
use on larger problems.  It is also the building block behind the sub-sampled
Newton solvers' Hessian-spectrum checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.linalg.operators import LinearOperator
from repro.utils.rng import check_random_state


@dataclass
class LanczosResult:
    """Outcome of a Lanczos tridiagonalization.

    Attributes
    ----------
    alphas:
        Diagonal of the tridiagonal matrix ``T`` (length ``k``).
    betas:
        Off-diagonal of ``T`` (length ``k - 1``).
    basis:
        Orthonormal Lanczos vectors as columns, shape ``(dim, k)`` — only kept
        when ``store_basis=True``.
    n_iterations:
        Number of Lanczos steps actually performed (may stop early on
        breakdown, i.e. when an invariant subspace is found).
    """

    alphas: np.ndarray
    betas: np.ndarray
    basis: Optional[np.ndarray]
    n_iterations: int

    def tridiagonal(self) -> np.ndarray:
        """The ``k x k`` symmetric tridiagonal matrix ``T``."""
        k = self.alphas.shape[0]
        T = np.diag(self.alphas)
        if k > 1:
            T += np.diag(self.betas, 1) + np.diag(self.betas, -1)
        return T

    def ritz_values(self) -> np.ndarray:
        """Eigenvalues of ``T`` — Ritz approximations to the operator spectrum."""
        if self.alphas.size == 0:
            return np.empty(0)
        return np.linalg.eigvalsh(self.tridiagonal())


def lanczos(
    A: LinearOperator,
    *,
    max_iter: int = 30,
    store_basis: bool = False,
    reorthogonalize: bool = True,
    breakdown_tol: float = 1e-12,
    random_state=None,
) -> LanczosResult:
    """Run ``max_iter`` steps of the Lanczos process on a symmetric operator.

    Parameters
    ----------
    A:
        Symmetric linear operator.
    max_iter:
        Number of Lanczos steps (the Krylov dimension).
    store_basis:
        Keep the Lanczos vectors (memory ``dim * max_iter``); needed only when
        Ritz *vectors* are wanted.
    reorthogonalize:
        Apply full reorthogonalization against all previous vectors.  Costs
        ``O(dim * k)`` per step but keeps the Ritz values accurate — cheap at
        the Krylov sizes used here.
    breakdown_tol:
        Stop when the next off-diagonal entry falls below this (an invariant
        subspace has been found).
    random_state:
        Seed for the random start vector.

    Returns
    -------
    LanczosResult
    """
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    rng = check_random_state(random_state)
    dim = A.dim
    max_iter = min(max_iter, dim)

    v = rng.standard_normal(dim)
    v /= np.linalg.norm(v)
    v_old = np.zeros(dim)
    beta = 0.0

    alphas = []
    betas = []
    vectors = [v.copy()] if (store_basis or reorthogonalize) else []

    for k in range(max_iter):
        w = A.matvec(v)
        alpha = float(v @ w)
        alphas.append(alpha)
        w = w - alpha * v - beta * v_old
        if reorthogonalize and vectors:
            # Classical Gram-Schmidt against all previous Lanczos vectors.
            V = np.column_stack(vectors)
            w = w - V @ (V.T @ w)
        beta = float(np.linalg.norm(w))
        if k == max_iter - 1 or beta <= breakdown_tol:
            break
        betas.append(beta)
        v_old = v
        v = w / beta
        if store_basis or reorthogonalize:
            vectors.append(v.copy())

    basis = None
    if store_basis and vectors:
        basis = np.column_stack(vectors[: len(alphas)])
    return LanczosResult(
        alphas=np.asarray(alphas, dtype=np.float64),
        betas=np.asarray(betas, dtype=np.float64),
        basis=basis,
        n_iterations=len(alphas),
    )


def lanczos_extreme_eigenvalues(
    A: LinearOperator,
    *,
    max_iter: int = 30,
    random_state=None,
) -> Tuple[float, float]:
    """Estimate ``(lambda_min, lambda_max)`` of a symmetric operator.

    The extreme Ritz values of a ``max_iter``-step Lanczos run converge to the
    extreme eigenvalues first, so a modest Krylov dimension gives useful
    bounds for conditioning studies.
    """
    result = lanczos(A, max_iter=max_iter, random_state=random_state)
    ritz = result.ritz_values()
    return float(ritz.min()), float(ritz.max())


def lanczos_condition_estimate(
    A: LinearOperator,
    *,
    max_iter: int = 30,
    floor: float = 1e-12,
    random_state=None,
) -> float:
    """Condition-number estimate ``lambda_max / max(lambda_min, floor)``.

    For PSD operators (an unregularized softmax Hessian) the smallest Ritz
    value can be numerically zero or slightly negative; ``floor`` keeps the
    estimate finite, mirroring
    :func:`repro.linalg.condition.condition_number_estimate`.
    """
    lo, hi = lanczos_extreme_eigenvalues(A, max_iter=max_iter, random_state=random_state)
    return float(hi / max(lo, floor))


def spectral_norm_estimate(
    A: LinearOperator,
    *,
    max_iter: int = 20,
    random_state=None,
) -> float:
    """Largest-magnitude eigenvalue estimate (for symmetric operators)."""
    result = lanczos(A, max_iter=max_iter, random_state=random_state)
    ritz = result.ritz_values()
    if ritz.size == 0:
        return 0.0
    return float(np.max(np.abs(ritz)))
