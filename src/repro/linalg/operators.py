"""Matrix-free linear operators.

Second-order solvers in this library only ever touch the Hessian through
matrix-vector products (the "Hessian-free" approach of the paper), so all of
them are written against the tiny :class:`LinearOperator` protocol below.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np


class LinearOperator:
    """A square linear map defined by its matrix-vector product.

    Parameters
    ----------
    dim:
        Dimension of the (square) operator.
    matvec:
        Callable computing ``A @ v`` for a 1-D vector ``v``.
    """

    def __init__(self, dim: int, matvec: Callable[[np.ndarray], np.ndarray]):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self._matvec = matvec
        #: number of matrix-vector products evaluated through this operator
        self.n_matvecs = 0

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.shape[0] != self.dim:
            raise ValueError(f"vector has length {v.shape[0]}, expected {self.dim}")
        self.n_matvecs += 1
        out = np.asarray(self._matvec(v), dtype=np.float64).ravel()
        if out.shape[0] != self.dim:
            raise ValueError(
                f"matvec returned length {out.shape[0]}, expected {self.dim}"
            )
        return out

    def __matmul__(self, v: np.ndarray) -> np.ndarray:
        return self.matvec(v)

    def to_dense(self) -> np.ndarray:
        """Materialize the operator (intended for small dims / tests only)."""
        A = np.empty((self.dim, self.dim))
        e = np.zeros(self.dim)
        for j in range(self.dim):
            e[j] = 1.0
            A[:, j] = self.matvec(e)
            e[j] = 0.0
        return A


class MatrixOperator(LinearOperator):
    """Wrap an explicit dense (or scipy-sparse) square matrix."""

    def __init__(self, A):
        A_shape = A.shape
        if A_shape[0] != A_shape[1]:
            raise ValueError(f"matrix must be square, got shape {A_shape}")
        self.A = A
        super().__init__(A_shape[0], lambda v: np.asarray(A @ v).ravel())


class HessianOperator(LinearOperator):
    """The Hessian of an objective at a fixed point ``w`` as a linear operator."""

    def __init__(self, objective, w: np.ndarray):
        self.objective = objective
        self.w = np.asarray(w, dtype=np.float64).ravel()
        super().__init__(objective.dim, lambda v: objective.hvp(self.w, v))


class DiagonalOperator(LinearOperator):
    """Diagonal operator, e.g. a Jacobi preconditioner."""

    def __init__(self, diagonal: np.ndarray):
        diagonal = np.asarray(diagonal, dtype=np.float64).ravel()
        self.diagonal = diagonal
        super().__init__(diagonal.shape[0], lambda v: diagonal * v)


class ShiftedOperator(LinearOperator):
    """``A + shift * I`` — used for Levenberg-style damping and ADMM penalties."""

    def __init__(self, base: LinearOperator, shift: float):
        self.base = base
        self.shift = float(shift)
        super().__init__(base.dim, lambda v: base.matvec(v) + self.shift * v)
