"""Matrix-free linear operators.

Second-order solvers in this library only ever touch the Hessian through
matrix-vector products (the "Hessian-free" approach of the paper), so all of
them are written against the tiny :class:`LinearOperator` protocol below.

Operators are dtype- and backend-agnostic: vectors flow through ``matvec``
without being cast (float32 stays float32, device arrays stay on device).
When an operator declares a ``dtype``, applying it to a vector of a
*different* floating dtype raises — silent cross-precision matvecs are how
float32 pipelines quietly degrade to float64 round-trips.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.backend.ops import ensure_float_array, is_float_dtype as _is_float_dtype


def _dtype_of(x):
    return getattr(x, "dtype", None)


def check_dtype_match(op_dtype, vec_dtype, *, context: str = "matvec") -> None:
    """Raise a clear error for mixed-float operator/vector pairs.

    Dtypes from different type systems (a NumPy dtype vs a torch dtype) are
    not comparable and are left alone — only same-system float mismatches
    (float32 vs float64) are rejected.
    """
    if op_dtype is None or vec_dtype is None:
        return
    op_is_np = getattr(op_dtype, "kind", None) is not None
    vec_is_np = getattr(vec_dtype, "kind", None) is not None
    if op_is_np != vec_is_np:  # e.g. numpy dtype vs torch dtype
        return
    if _is_float_dtype(op_dtype) and _is_float_dtype(vec_dtype) and op_dtype != vec_dtype:
        raise TypeError(
            f"mixed dtypes in {context}: operator has dtype {op_dtype} but "
            f"vector has dtype {vec_dtype}; cast one side explicitly"
        )


class LinearOperator:
    """A square linear map defined by its matrix-vector product.

    Parameters
    ----------
    dim:
        Dimension of the (square) operator.
    matvec:
        Callable computing ``A @ v`` for a 1-D vector ``v``.
    dtype:
        Optional dtype this operator is defined over.  When set, applying the
        operator to a vector of a different floating dtype raises
        :class:`TypeError` instead of silently up/down-casting.
    """

    def __init__(
        self, dim: int, matvec: Callable[[np.ndarray], np.ndarray], *, dtype=None
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.dtype = dtype
        self._matvec = matvec
        #: number of matrix-vector products evaluated through this operator
        self.n_matvecs = 0

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = ensure_float_array(v, dtype=self.dtype).ravel()
        if v.shape[0] != self.dim:
            raise ValueError(f"vector has length {v.shape[0]}, expected {self.dim}")
        check_dtype_match(self.dtype, _dtype_of(v))
        self.n_matvecs += 1
        out = self._matvec(v)
        out = out.ravel() if hasattr(out, "ravel") else np.asarray(out).ravel()
        if out.shape[0] != self.dim:
            raise ValueError(
                f"matvec returned length {out.shape[0]}, expected {self.dim}"
            )
        return out

    def __matmul__(self, v: np.ndarray) -> np.ndarray:
        return self.matvec(v)

    def to_dense(self) -> np.ndarray:
        """Materialize the operator (intended for small dims / tests only).

        Host-only: probe vectors are NumPy basis vectors, so operators over
        backend-native arrays (torch/cupy dtypes) are rejected rather than
        fed host probes their matvec cannot multiply.
        """
        if self.dtype is not None and getattr(self.dtype, "kind", None) is None:
            raise NotImplementedError(
                "to_dense() builds host probe vectors and does not support "
                "backend-native operators; apply the operator to backend "
                "arrays instead"
            )
        dtype = self.dtype if self.dtype is not None else np.float64
        A = np.empty((self.dim, self.dim), dtype=np.float64)
        e = np.zeros(self.dim, dtype=dtype)
        for j in range(self.dim):
            e[j] = 1.0
            A[:, j] = np.asarray(self.matvec(e), dtype=np.float64)
            e[j] = 0.0
        return A


class MatrixOperator(LinearOperator):
    """Wrap an explicit dense (or scipy-sparse) square matrix."""

    def __init__(self, A):
        A_shape = A.shape
        if A_shape[0] != A_shape[1]:
            raise ValueError(f"matrix must be square, got shape {A_shape}")
        self.A = A

        def _mv(v):
            out = A @ v
            return out if hasattr(out, "ravel") else np.asarray(out)

        super().__init__(A_shape[0], _mv, dtype=getattr(A, "dtype", None))


class HessianOperator(LinearOperator):
    """The Hessian of an objective at a fixed point ``w`` as a linear operator."""

    def __init__(self, objective, w: np.ndarray):
        self.objective = objective
        self.w = objective.check_weights(w) if hasattr(objective, "check_weights") else w
        # No declared dtype: the HVP's output dtype is set by the objective's
        # data, not by ``w``, so claiming ``w.dtype`` here would reject valid
        # pairings (e.g. float32 weights against float64-validated data).
        super().__init__(objective.dim, lambda v: objective.hvp(self.w, v))


class BatchedHessianOperator(HessianOperator):
    """Hessian at a fixed iterate with a batched multi-vector product.

    Returned by :meth:`Objective.value_and_gradient_and_hvp_operator`: the
    operator is bound to the *same object* ``w`` the value/gradient were
    computed at (``check_weights`` is identity-preserving for 1-D arrays), so
    every ``matvec``/``matmat`` against it reuses the objective's per-iterate
    forward cache instead of recomputing logits.

    ``matmat`` applies the Hessian to all columns of ``V`` at once — for
    softmax objectives this is one GEMM per CG iteration instead of one GEMV
    per class (see :func:`repro.linalg.cg.block_conjugate_gradient`).
    """

    def matmat(self, V):
        if getattr(V, "ndim", None) != 2:
            raise ValueError("matmat expects a 2-D block of column vectors")
        if V.shape[0] != self.dim:
            raise ValueError(
                f"block has leading dimension {V.shape[0]}, expected {self.dim}"
            )
        check_dtype_match(self.dtype, _dtype_of(V), context="matmat")
        self.n_matvecs += int(V.shape[1])
        out = self.objective.hvp_mat(self.w, V)
        if out.shape != V.shape:
            raise ValueError(
                f"matmat returned shape {tuple(out.shape)}, expected {tuple(V.shape)}"
            )
        return out


class DiagonalOperator(LinearOperator):
    """Diagonal operator, e.g. a Jacobi preconditioner."""

    def __init__(self, diagonal: np.ndarray):
        diagonal = ensure_float_array(diagonal).ravel()
        self.diagonal = diagonal
        super().__init__(
            diagonal.shape[0],
            lambda v: diagonal * v,
            dtype=_dtype_of(diagonal),
        )


class ShiftedOperator(LinearOperator):
    """``A + shift * I`` — used for Levenberg-style damping and ADMM penalties."""

    def __init__(self, base: LinearOperator, shift: float):
        self.base = base
        self.shift = float(shift)
        super().__init__(
            base.dim,
            lambda v: base.matvec(v) + self.shift * v,
            dtype=base.dtype,
        )
