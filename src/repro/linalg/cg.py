"""Conjugate gradient with relative-residual early stopping.

This is the inner solver of the inexact Newton iteration (paper eq. 3b/4):
CG is run on ``H p = -g`` until ``||H p + g|| <= theta * ||g||`` or the
iteration budget is exhausted.  The paper uses 10 CG iterations with a 1e-4
tolerance in Figure 1 and sweeps 10/20/30 iterations in Figure 4.

The solve is dtype- and backend-agnostic: vectors keep the dtype they arrive
with (float32 stays float32 — no silent ``float64`` round-trip through host
memory for GPU arrays) and every reduction runs on the backend that owns
``b`` (see :mod:`repro.backend`).  Scalar recurrence coefficients are Python
floats, which multiply into any dtype without promotion.

Two extensions serve the kernel-speed work:

* ``precision="mixed"`` accumulates the recurrence dot products and residual
  norms in float64 (:meth:`~repro.backend.base.ArrayBackend.dot_hp`) while
  the vectors stay at their storage dtype.  The default (``None``) keeps the
  historical bit-reproducible reductions.
* :func:`block_conjugate_gradient` solves ``A X = B`` for ``s``
  right-hand sides in lockstep — one batched ``matmat`` per iteration (a
  single GEMM when ``A`` is a :class:`~repro.linalg.operators.\
BatchedHessianOperator`) instead of ``s`` sequential solves.  Each column
  runs the exact scalar CG recurrence with its own coefficients; columns
  converge (or hit negative curvature) independently and freeze while the
  rest continue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.backend import ArrayBackend, infer_backend, resolve_precision
from repro.backend.ops import copy_array as _copy
from repro.linalg.operators import LinearOperator, check_dtype_match


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient solve.

    Attributes
    ----------
    x:
        Approximate solution.
    converged:
        Whether the relative-residual tolerance was met.
    n_iterations:
        Number of CG iterations actually performed.
    residual_norm:
        Final ``||b - A x||``.
    relative_residual:
        ``residual_norm / ||b||`` (``0`` when ``b == 0``).
    residual_history:
        Residual norm after every iteration (including iteration 0).
    """

    x: np.ndarray
    converged: bool
    n_iterations: int
    residual_norm: float
    relative_residual: float
    residual_history: List[float] = field(default_factory=list)


@dataclass
class BlockCGResult:
    """Outcome of a block conjugate-gradient solve over ``s`` right-hand sides.

    Attributes
    ----------
    X:
        ``(dim, s)`` solution block (column ``j`` solves ``A x = B[:, j]``).
    converged:
        Whether *every* column met the relative-residual tolerance.
    n_iterations:
        Lockstep iterations performed (the max over columns).
    residual_norms / relative_residuals / column_converged:
        Per-column host arrays of shape ``(s,)``.
    residual_history:
        Per-iteration ``(s,)`` residual-norm arrays (including iteration 0).
    """

    X: np.ndarray
    converged: bool
    n_iterations: int
    residual_norms: np.ndarray
    relative_residuals: np.ndarray
    column_converged: np.ndarray
    residual_history: List[np.ndarray] = field(default_factory=list)


MatvecLike = Union[LinearOperator, Callable[[np.ndarray], np.ndarray]]


def _as_vec(out):
    """Flatten a matvec/preconditioner result, tolerating bare callables that
    return plain sequences (coerced on the host, like the pre-backend code)."""
    if hasattr(out, "ravel"):
        return out.ravel()
    return np.asarray(out, dtype=np.float64).ravel()


def conjugate_gradient(
    A: MatvecLike,
    b: np.ndarray,
    *,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-4,
    max_iter: int = 10,
    preconditioner: Optional[MatvecLike] = None,
    backend: Optional[ArrayBackend] = None,
    precision: Optional[str] = None,
    block: bool = False,
) -> Union[CGResult, "BlockCGResult"]:
    """Solve ``A x = b`` for symmetric positive (semi-)definite ``A``.

    Parameters
    ----------
    A:
        A :class:`LinearOperator` or a bare matvec callable.
    b:
        Right-hand side; its dtype and backend are preserved throughout.
    x0:
        Starting point (zeros by default); must match ``b``'s dtype.
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    max_iter:
        Iteration budget (early stopping is the point — the Newton step only
        needs a ``theta``-relative solution).
    preconditioner:
        Optional SPD preconditioner ``M^{-1}`` applied as a matvec.
    backend:
        Array backend owning the vectors (inferred from ``b`` when omitted).
    precision:
        ``"mixed"`` accumulates recurrence dots / norms in float64;
        ``None`` resolves the session default (see
        :mod:`repro.backend.precision`).
    block:
        Accept a 2-D ``b`` of stacked right-hand sides and solve them in
        lockstep via :func:`block_conjugate_gradient` (returns a
        :class:`BlockCGResult`).  A 1-D ``b`` always takes the scalar path,
        so single-RHS solves are bitwise independent of this flag.
    """
    bk = backend if backend is not None else infer_backend(b)
    b = bk.asarray(b)
    if getattr(b, "ndim", 1) == 2:
        if not block:
            raise ValueError(
                "b is 2-D; pass block=True to solve stacked right-hand sides"
            )
        return block_conjugate_gradient(
            A,
            b,
            x0=x0,
            tol=tol,
            max_iter=max_iter,
            preconditioner=preconditioner,
            backend=bk,
            precision=precision,
        )
    b = bk.as_vector(b, name="b")
    dim = b.shape[0]
    matvec = A.matvec if isinstance(A, LinearOperator) else A
    if preconditioner is None:
        apply_prec = None
    else:
        apply_prec = (
            preconditioner.matvec
            if isinstance(preconditioner, LinearOperator)
            else preconditioner
        )
    if max_iter < 0:
        raise ValueError(f"max_iter must be >= 0, got {max_iter}")
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    if isinstance(A, LinearOperator):
        check_dtype_match(A.dtype, b.dtype, context="conjugate_gradient")
    high_precision = resolve_precision(precision) == "mixed"
    _dot = bk.dot_hp if high_precision else bk.dot
    _norm = bk.norm_hp if high_precision else bk.norm

    if x0 is None:
        x = bk.zeros(dim, dtype=b.dtype)
    else:
        x = _copy(bk.as_vector(x0, dim, name="x0"))
        check_dtype_match(b.dtype, x.dtype, context="conjugate_gradient(x0)")
    b_norm = _norm(b)
    if b_norm == 0.0:
        zero = bk.zeros(dim, dtype=b.dtype)
        return CGResult(
            x=zero,
            converged=True,
            n_iterations=0,
            residual_norm=0.0,
            relative_residual=0.0,
            residual_history=[0.0],
        )

    r = b - _as_vec(matvec(x)) if bk.any_nonzero(x) else _copy(b)
    z = _as_vec(apply_prec(r)) if apply_prec is not None else r
    p = _copy(z)
    rz = _dot(r, z)
    history = [_norm(r)]
    threshold = tol * b_norm
    converged = history[-1] <= threshold
    n_iter = 0

    while not converged and n_iter < max_iter:
        Ap = _as_vec(matvec(p))
        pAp = _dot(p, Ap)
        if pAp <= 0.0:
            # Negative / zero curvature: the operator is not PD along p.  For
            # the convex problems here this only happens from round-off on a
            # nearly-singular Hessian; fall back to the current iterate (or
            # the steepest-descent direction if nothing was done yet).
            if n_iter == 0:
                x = _copy(b)
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        n_iter += 1
        res_norm = _norm(r)
        history.append(res_norm)
        if res_norm <= threshold:
            converged = True
            break
        z = _as_vec(apply_prec(r)) if apply_prec is not None else r
        rz_new = _dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    res_norm = history[-1]
    return CGResult(
        x=x,
        converged=bool(converged or res_norm <= threshold),
        n_iterations=n_iter,
        residual_norm=res_norm,
        relative_residual=res_norm / b_norm,
        residual_history=history,
    )


def _is_float32(x) -> bool:
    """Dtype-system-agnostic float32 test ("float32" vs "torch.float32")."""
    return str(getattr(x, "dtype", "")).endswith("float32")


def block_conjugate_gradient(
    A: MatvecLike,
    B,
    *,
    x0=None,
    tol: float = 1e-4,
    max_iter: int = 10,
    preconditioner: Optional[MatvecLike] = None,
    backend: Optional[ArrayBackend] = None,
    precision: Optional[str] = None,
) -> BlockCGResult:
    """Solve ``A X = B`` for ``s`` stacked right-hand sides in lockstep.

    Each column runs the standard CG recurrence with its own scalar
    coefficients; the only coupling is that all columns share each
    iteration's operator application, so an ``A`` exposing a batched
    ``matmat`` (e.g. :class:`~repro.linalg.operators.BatchedHessianOperator`)
    turns ``s`` matvecs into one GEMM per iteration.  Columns that converge
    — or hit non-positive curvature, mirroring the scalar fallback — freeze
    (their coefficients are forced to zero) while the rest continue.

    Per-column coefficients are accumulated on the host in float64
    (``precision="mixed"`` additionally runs the device-side reductions in
    float64) and are demoted to float32 before re-entering float32 vector
    updates, so single-precision blocks stay single-precision.
    """
    bk = backend if backend is not None else infer_backend(B)
    xp = bk.xp
    B = bk.asarray(B)
    if getattr(B, "ndim", None) != 2:
        raise ValueError(
            f"block CG expects a 2-D right-hand side, got ndim={getattr(B, 'ndim', None)}"
        )
    if max_iter < 0:
        raise ValueError(f"max_iter must be >= 0, got {max_iter}")
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    high_precision = resolve_precision(precision) == "mixed"
    dim, s = int(B.shape[0]), int(B.shape[1])
    if isinstance(A, LinearOperator):
        if A.dim != dim:
            raise ValueError(
                f"operator has dim {A.dim}, right-hand sides have {dim} rows"
            )
        check_dtype_match(A.dtype, B.dtype, context="block_conjugate_gradient")

    if hasattr(A, "matmat"):
        matmat = A.matmat
    else:
        _mv = A.matvec if isinstance(A, LinearOperator) else A

        def matmat(P):
            cols = [_as_vec(_mv(P[:, j])).reshape(-1, 1) for j in range(s)]
            return xp.hstack(cols) if s > 1 else cols[0]

    if preconditioner is None:
        apply_prec = None
    else:
        _pmv = (
            preconditioner.matvec
            if isinstance(preconditioner, LinearOperator)
            else preconditioner
        )

        def apply_prec(R):
            cols = [_as_vec(_pmv(R[:, j])).reshape(-1, 1) for j in range(s)]
            return xp.hstack(cols) if s > 1 else cols[0]

    keep_f32 = _is_float32(B)

    def _coeffs(host_vals: np.ndarray):
        """Host float64 per-column coefficients -> device row at storage dtype."""
        dev = bk.asarray(host_vals)
        return bk.demote_fp32(dev) if keep_f32 else dev

    def _coldots(U, V) -> np.ndarray:
        return bk.to_numpy(
            bk.colwise_dot(U, V, high_precision=high_precision)
        ).astype(np.float64, copy=False)

    def _colnorms(R) -> np.ndarray:
        return np.sqrt(np.maximum(_coldots(R, R), 0.0))  # repro-lint: ignore[RPR001] host-side by contract

    if x0 is None:
        X = bk.zeros((dim, s), dtype=B.dtype)
        R = _copy(B)
    else:
        X = _copy(bk.asarray(x0))
        if getattr(X, "ndim", None) != 2 or tuple(X.shape) != (dim, s):
            raise ValueError(
                f"x0 must have shape ({dim}, {s}), got {tuple(getattr(X, 'shape', ()))}"
            )
        check_dtype_match(B.dtype, X.dtype, context="block_conjugate_gradient(x0)")
        R = B - matmat(X) if bk.any_nonzero(X) else _copy(B)

    b_norms = _colnorms(B)
    res = _colnorms(R)
    history = [res.copy()]
    threshold = tol * b_norms
    active = res > threshold
    n_iter = 0

    if active.any():
        Z = apply_prec(R) if apply_prec is not None else R
        P = _copy(Z)
        rz = _coldots(R, Z)

        while active.any() and n_iter < max_iter:
            AP = matmat(P)
            pAp = _coldots(P, AP)
            negative = active & (pAp <= 0.0)
            if negative.any():
                # Mirror the scalar fallback: a column that sees non-positive
                # curvature before doing any work takes the steepest-descent
                # direction; otherwise it keeps its current iterate.
                if n_iter == 0:
                    for j in np.flatnonzero(negative):  # repro-lint: ignore[RPR001] host-side by contract
                        X[:, j] = B[:, j]
                active &= ~negative
                if not active.any():
                    break
            safe = np.where(active, pAp, 1.0)  # repro-lint: ignore[RPR001] host-side by contract
            alpha = np.where(active, rz / safe, 0.0)  # repro-lint: ignore[RPR001] host-side by contract
            alpha_dev = _coeffs(alpha)
            X = X + P * alpha_dev
            R = R - AP * alpha_dev
            n_iter += 1
            res = _colnorms(R)
            history.append(res.copy())
            active &= res > threshold
            if not active.any():
                break
            Z = apply_prec(R) if apply_prec is not None else R
            rz_new = _coldots(R, Z)
            beta = np.where(active, rz_new / np.where(rz != 0.0, rz, 1.0), 0.0)  # repro-lint: ignore[RPR001] host-side by contract
            rz = rz_new
            P = Z + P * _coeffs(beta)

    res = history[-1]
    column_converged = res <= threshold
    relative = np.where(b_norms > 0.0, res / np.where(b_norms > 0.0, b_norms, 1.0), 0.0)  # repro-lint: ignore[RPR001] host-side by contract
    return BlockCGResult(
        X=X,
        converged=bool(column_converged.all()),
        n_iterations=n_iter,
        residual_norms=res,
        relative_residuals=relative,
        column_converged=column_converged,
        residual_history=history,
    )
