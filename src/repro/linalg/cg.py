"""Conjugate gradient with relative-residual early stopping.

This is the inner solver of the inexact Newton iteration (paper eq. 3b/4):
CG is run on ``H p = -g`` until ``||H p + g|| <= theta * ||g||`` or the
iteration budget is exhausted.  The paper uses 10 CG iterations with a 1e-4
tolerance in Figure 1 and sweeps 10/20/30 iterations in Figure 4.

The solve is dtype- and backend-agnostic: vectors keep the dtype they arrive
with (float32 stays float32 — no silent ``float64`` round-trip through host
memory for GPU arrays) and every reduction runs on the backend that owns
``b`` (see :mod:`repro.backend`).  Scalar recurrence coefficients are Python
floats, which multiply into any dtype without promotion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.backend import ArrayBackend, infer_backend
from repro.backend.ops import copy_array as _copy
from repro.linalg.operators import LinearOperator, check_dtype_match


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient solve.

    Attributes
    ----------
    x:
        Approximate solution.
    converged:
        Whether the relative-residual tolerance was met.
    n_iterations:
        Number of CG iterations actually performed.
    residual_norm:
        Final ``||b - A x||``.
    relative_residual:
        ``residual_norm / ||b||`` (``0`` when ``b == 0``).
    residual_history:
        Residual norm after every iteration (including iteration 0).
    """

    x: np.ndarray
    converged: bool
    n_iterations: int
    residual_norm: float
    relative_residual: float
    residual_history: List[float] = field(default_factory=list)


MatvecLike = Union[LinearOperator, Callable[[np.ndarray], np.ndarray]]


def _as_vec(out):
    """Flatten a matvec/preconditioner result, tolerating bare callables that
    return plain sequences (coerced on the host, like the pre-backend code)."""
    if hasattr(out, "ravel"):
        return out.ravel()
    return np.asarray(out, dtype=np.float64).ravel()


def conjugate_gradient(
    A: MatvecLike,
    b: np.ndarray,
    *,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-4,
    max_iter: int = 10,
    preconditioner: Optional[MatvecLike] = None,
    backend: Optional[ArrayBackend] = None,
) -> CGResult:
    """Solve ``A x = b`` for symmetric positive (semi-)definite ``A``.

    Parameters
    ----------
    A:
        A :class:`LinearOperator` or a bare matvec callable.
    b:
        Right-hand side; its dtype and backend are preserved throughout.
    x0:
        Starting point (zeros by default); must match ``b``'s dtype.
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    max_iter:
        Iteration budget (early stopping is the point — the Newton step only
        needs a ``theta``-relative solution).
    preconditioner:
        Optional SPD preconditioner ``M^{-1}`` applied as a matvec.
    backend:
        Array backend owning the vectors (inferred from ``b`` when omitted).
    """
    bk = backend if backend is not None else infer_backend(b)
    b = bk.as_vector(b, name="b")
    dim = b.shape[0]
    matvec = A.matvec if isinstance(A, LinearOperator) else A
    if preconditioner is None:
        apply_prec = None
    else:
        apply_prec = (
            preconditioner.matvec
            if isinstance(preconditioner, LinearOperator)
            else preconditioner
        )
    if max_iter < 0:
        raise ValueError(f"max_iter must be >= 0, got {max_iter}")
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    if isinstance(A, LinearOperator):
        check_dtype_match(A.dtype, b.dtype, context="conjugate_gradient")

    if x0 is None:
        x = bk.zeros(dim, dtype=b.dtype)
    else:
        x = _copy(bk.as_vector(x0, dim, name="x0"))
        check_dtype_match(b.dtype, x.dtype, context="conjugate_gradient(x0)")
    b_norm = bk.norm(b)
    if b_norm == 0.0:
        zero = bk.zeros(dim, dtype=b.dtype)
        return CGResult(
            x=zero,
            converged=True,
            n_iterations=0,
            residual_norm=0.0,
            relative_residual=0.0,
            residual_history=[0.0],
        )

    r = b - _as_vec(matvec(x)) if bk.any_nonzero(x) else _copy(b)
    z = _as_vec(apply_prec(r)) if apply_prec is not None else r
    p = _copy(z)
    rz = bk.dot(r, z)
    history = [bk.norm(r)]
    threshold = tol * b_norm
    converged = history[-1] <= threshold
    n_iter = 0

    while not converged and n_iter < max_iter:
        Ap = _as_vec(matvec(p))
        pAp = bk.dot(p, Ap)
        if pAp <= 0.0:
            # Negative / zero curvature: the operator is not PD along p.  For
            # the convex problems here this only happens from round-off on a
            # nearly-singular Hessian; fall back to the current iterate (or
            # the steepest-descent direction if nothing was done yet).
            if n_iter == 0:
                x = _copy(b)
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        n_iter += 1
        res_norm = bk.norm(r)
        history.append(res_norm)
        if res_norm <= threshold:
            converged = True
            break
        z = _as_vec(apply_prec(r)) if apply_prec is not None else r
        rz_new = bk.dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    res_norm = history[-1]
    return CGResult(
        x=x,
        converged=bool(converged or res_norm <= threshold),
        n_iterations=n_iter,
        residual_norm=res_norm,
        relative_residual=res_norm / b_norm,
        residual_history=history,
    )
