"""Spectrum estimation for Hessian operators.

The paper repeatedly attributes behaviour (HIGGS converging in one iteration,
GIANT's blow-up on CIFAR-10) to problem conditioning; these helpers let the
experiments and tests measure the conditioning of our synthetic stand-ins.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.linalg.operators import LinearOperator
from repro.utils.rng import check_random_state


def power_iteration(
    A: LinearOperator,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    random_state=None,
) -> Tuple[float, np.ndarray]:
    """Largest eigenvalue (and eigenvector) of a symmetric PSD operator.

    Returns
    -------
    (eigenvalue, eigenvector)
    """
    rng = check_random_state(random_state)
    v = rng.standard_normal(A.dim)
    v /= np.linalg.norm(v)
    eigval = 0.0
    for _ in range(max_iter):
        w = A.matvec(v)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0, v
        v_new = w / norm
        new_eigval = float(v_new @ A.matvec(v_new))
        if abs(new_eigval - eigval) <= tol * max(abs(new_eigval), 1.0):
            return new_eigval, v_new
        eigval, v = new_eigval, v_new
    return eigval, v


def smallest_eigenvalue(
    A: LinearOperator,
    *,
    largest: Optional[float] = None,
    max_iter: int = 200,
    tol: float = 1e-8,
    random_state=None,
) -> float:
    """Smallest eigenvalue of a symmetric PSD operator via spectral shift.

    Runs power iteration on ``largest * I - A``, whose dominant eigenvalue is
    ``largest - lambda_min``.
    """
    if largest is None:
        largest, _ = power_iteration(A, max_iter=max_iter, tol=tol, random_state=random_state)
    shifted = LinearOperator(A.dim, lambda v: largest * v - A.matvec(v))
    mu, _ = power_iteration(shifted, max_iter=max_iter, tol=tol, random_state=random_state)
    return float(largest - mu)


def condition_number_estimate(
    A: LinearOperator,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    floor: float = 1e-12,
    random_state=None,
) -> float:
    """Estimate ``lambda_max / lambda_min`` of a symmetric PSD operator.

    ``floor`` guards against a numerically zero smallest eigenvalue (the
    unregularized softmax Hessian is only PSD); regularized objectives have
    ``lambda_min >= lam`` and give meaningful values.
    """
    rng = check_random_state(random_state)
    lam_max, _ = power_iteration(A, max_iter=max_iter, tol=tol, random_state=rng)
    lam_min = smallest_eigenvalue(
        A, largest=lam_max, max_iter=max_iter, tol=tol, random_state=rng
    )
    return float(lam_max / max(lam_min, floor))
