"""Randomized sketching operators.

These support the Newton-Sketch solver (:mod:`repro.solvers.newton_sketch`),
which the paper's related-work section cites (Berahas et al., "An
Investigation of Newton-Sketch and Subsampled Newton Methods") as the other
family of approximate second-order methods.  A sketch ``S`` of shape
``(m, n)`` with ``m << n`` compresses the ``n``-row square-root factor
``A(w)`` of a Gauss-Newton Hessian ``H = A^T A`` into ``S A``, so that
``(S A)^T (S A)`` approximates ``H`` at a fraction of the cost.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import check_random_state


def gaussian_sketch(
    sketch_size: int, n_rows: int, *, random_state=None
) -> np.ndarray:
    """Dense Gaussian sketch ``S`` with i.i.d. ``N(0, 1/m)`` entries.

    ``E[S^T S] = I`` so ``(S A)^T (S A)`` is an unbiased estimate of
    ``A^T A``.  Cost of applying it to an ``(n, d)`` matrix is ``O(m n d)``.
    """
    _validate_sizes(sketch_size, n_rows)
    rng = check_random_state(random_state)
    return rng.standard_normal((sketch_size, n_rows)) / np.sqrt(sketch_size)


def count_sketch(
    sketch_size: int, n_rows: int, *, random_state=None
) -> sp.csr_matrix:
    """Count sketch (sparse embedding): one ``+-1`` entry per column.

    Applying it costs ``O(nnz(A))`` — much cheaper than a Gaussian sketch —
    at the price of a slightly larger sketch size for the same accuracy.
    """
    _validate_sizes(sketch_size, n_rows)
    rng = check_random_state(random_state)
    rows = rng.integers(0, sketch_size, size=n_rows)
    signs = rng.choice([-1.0, 1.0], size=n_rows)
    cols = np.arange(n_rows)
    return sp.csr_matrix((signs, (rows, cols)), shape=(sketch_size, n_rows))


def row_sampling_sketch(
    sketch_size: int,
    n_rows: int,
    *,
    probabilities: Optional[np.ndarray] = None,
    random_state=None,
) -> sp.csr_matrix:
    """Row-sampling sketch: pick ``m`` rows with replacement and rescale.

    With ``probabilities=None`` rows are sampled uniformly; passing leverage
    or row-norm scores gives importance sampling.  The rescaling by
    ``1 / sqrt(m p_i)`` keeps ``E[S^T S] = I``.
    """
    _validate_sizes(sketch_size, n_rows)
    rng = check_random_state(random_state)
    if probabilities is None:
        probabilities = np.full(n_rows, 1.0 / n_rows)
    else:
        probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
        if probabilities.shape[0] != n_rows:
            raise ValueError(
                f"probabilities has length {probabilities.shape[0]}, expected {n_rows}"
            )
        if np.any(probabilities < 0):
            raise ValueError("probabilities must be non-negative")
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("probabilities must not all be zero")
        probabilities = probabilities / total
    chosen = rng.choice(n_rows, size=sketch_size, replace=True, p=probabilities)
    weights = 1.0 / np.sqrt(sketch_size * probabilities[chosen])
    rows = np.arange(sketch_size)
    return sp.csr_matrix((weights, (rows, chosen)), shape=(sketch_size, n_rows))


def srht_sketch(
    sketch_size: int, n_rows: int, *, random_state=None
) -> np.ndarray:
    """Subsampled randomized Hadamard transform (SRHT) sketch, materialized.

    ``S = sqrt(n/m) * P H D`` where ``D`` is a random sign flip, ``H`` the
    (normalized) Walsh-Hadamard transform of the next power-of-two size, and
    ``P`` a uniform row sample.  Returned as a dense ``(m, n)`` matrix — fine
    at the problem sizes used here; a production implementation would apply
    the transform implicitly in ``O(n log n)``.
    """
    _validate_sizes(sketch_size, n_rows)
    rng = check_random_state(random_state)
    n_pad = 1 << (int(n_rows - 1).bit_length() if n_rows > 1 else 0)
    H = _hadamard(n_pad) / np.sqrt(n_pad)
    signs = rng.choice([-1.0, 1.0], size=n_rows)
    rows = rng.choice(n_pad, size=sketch_size, replace=False)
    # (P H)[:, :n_rows] D, rescaled to keep E[S^T S] = I.
    S = H[rows, :n_rows] * signs[None, :]
    return S * np.sqrt(n_pad / sketch_size)


def sketch_matrix(
    kind: str,
    sketch_size: int,
    n_rows: int,
    *,
    random_state=None,
):
    """Build a named sketch (``"gaussian"``, ``"count"``, ``"rows"``, ``"srht"``)."""
    builders = {
        "gaussian": gaussian_sketch,
        "count": count_sketch,
        "rows": row_sampling_sketch,
        "srht": srht_sketch,
    }
    if kind not in builders:
        raise ValueError(
            f"unknown sketch kind {kind!r}; expected one of {sorted(builders)}"
        )
    return builders[kind](sketch_size, n_rows, random_state=random_state)


def _hadamard(n: int) -> np.ndarray:
    """Walsh-Hadamard matrix of size ``n`` (a power of two)."""
    if n & (n - 1) != 0:
        raise ValueError(f"Hadamard size must be a power of two, got {n}")
    H = np.ones((1, 1))
    while H.shape[0] < n:
        H = np.block([[H, H], [H, -H]])
    return H


def _validate_sizes(sketch_size: int, n_rows: int) -> None:
    if sketch_size < 1:
        raise ValueError(f"sketch_size must be >= 1, got {sketch_size}")
    if n_rows < 1:
        raise ValueError(f"n_rows must be >= 1, got {n_rows}")
