"""Matrix-free linear algebra: Krylov solvers, operators, spectra, sketches."""

from repro.linalg.cg import CGResult, conjugate_gradient
from repro.linalg.condition import (
    condition_number_estimate,
    power_iteration,
    smallest_eigenvalue,
)
from repro.linalg.lanczos import (
    LanczosResult,
    lanczos,
    lanczos_condition_estimate,
    lanczos_extreme_eigenvalues,
    spectral_norm_estimate,
)
from repro.linalg.minres import MINRESResult, minres
from repro.linalg.operators import (
    DiagonalOperator,
    HessianOperator,
    LinearOperator,
    MatrixOperator,
    ShiftedOperator,
)
from repro.linalg.preconditioners import (
    estimate_hessian_diagonal,
    hessian_jacobi_preconditioner,
    jacobi_preconditioner,
    make_preconditioner,
    RegularizerPreconditioner,
)
from repro.linalg.sketching import (
    count_sketch,
    gaussian_sketch,
    row_sampling_sketch,
    sketch_matrix,
    srht_sketch,
)

__all__ = [
    "CGResult",
    "conjugate_gradient",
    "MINRESResult",
    "minres",
    "LinearOperator",
    "MatrixOperator",
    "HessianOperator",
    "DiagonalOperator",
    "ShiftedOperator",
    "power_iteration",
    "smallest_eigenvalue",
    "condition_number_estimate",
    "LanczosResult",
    "lanczos",
    "lanczos_extreme_eigenvalues",
    "lanczos_condition_estimate",
    "spectral_norm_estimate",
    "estimate_hessian_diagonal",
    "jacobi_preconditioner",
    "hessian_jacobi_preconditioner",
    "RegularizerPreconditioner",
    "make_preconditioner",
    "count_sketch",
    "gaussian_sketch",
    "row_sampling_sketch",
    "srht_sketch",
    "sketch_matrix",
]
