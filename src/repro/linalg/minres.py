"""MINRES for symmetric (possibly indefinite) linear systems.

CG is the natural inner solver while the regularized Hessian stays positive
definite, but sub-sampled and sketched Hessians (see
:mod:`repro.solvers.subsampled_newton` and :mod:`repro.solvers.newton_sketch`)
can lose definiteness from sampling noise.  MINRES minimizes the residual norm
over the same Krylov subspace and is well defined for any symmetric operator,
so those solvers can use it as a drop-in replacement for CG.

The implementation is the standard Lanczos-based recurrence (Paige &
Saunders, 1975) with Givens rotations, written against the same
:class:`~repro.linalg.operators.LinearOperator` / callable protocol as
:func:`repro.linalg.cg.conjugate_gradient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.linalg.cg import MatvecLike
from repro.linalg.operators import LinearOperator


@dataclass
class MINRESResult:
    """Outcome of a MINRES solve.

    Attributes
    ----------
    x:
        Approximate solution.
    converged:
        Whether the relative-residual tolerance was met.
    n_iterations:
        Number of Lanczos steps performed.
    residual_norm:
        Final ``||b - A x||`` (recomputed exactly on exit).
    relative_residual:
        ``residual_norm / ||b||`` (``0`` when ``b == 0``).
    residual_history:
        Recurrence residual-norm estimate after every iteration (including
        iteration 0).
    """

    x: np.ndarray
    converged: bool
    n_iterations: int
    residual_norm: float
    relative_residual: float
    residual_history: List[float] = field(default_factory=list)


def minres(
    A: MatvecLike,
    b: np.ndarray,
    *,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-4,
    max_iter: int = 50,
) -> MINRESResult:
    """Solve ``A x = b`` for symmetric ``A`` by residual-norm minimization.

    Parameters
    ----------
    A:
        A :class:`~repro.linalg.operators.LinearOperator` or a bare matvec
        callable.  Only symmetry is assumed; the operator may be indefinite.
    b:
        Right-hand side.
    x0:
        Starting point (zeros by default).
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    max_iter:
        Iteration budget.

    Returns
    -------
    MINRESResult
    """
    b = np.asarray(b, dtype=np.float64).ravel()
    dim = b.shape[0]
    matvec = A.matvec if isinstance(A, LinearOperator) else A
    if max_iter < 0:
        raise ValueError(f"max_iter must be >= 0, got {max_iter}")
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")

    x = np.zeros(dim) if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return MINRESResult(
            x=np.zeros(dim),
            converged=True,
            n_iterations=0,
            residual_norm=0.0,
            relative_residual=0.0,
            residual_history=[0.0],
        )

    r = b - np.asarray(matvec(x)).ravel() if np.any(x) else b.copy()
    beta = float(np.linalg.norm(r))
    threshold = tol * b_norm
    history = [beta]
    if beta <= threshold:
        return MINRESResult(
            x=x,
            converged=True,
            n_iterations=0,
            residual_norm=beta,
            relative_residual=beta / b_norm,
            residual_history=history,
        )

    # Lanczos basis vectors and the two previous update directions.
    v_old = np.zeros(dim)
    v = r / beta
    d = np.zeros(dim)
    d_old = np.zeros(dim)
    # Givens rotation state from the previous two steps.
    c, s = 1.0, 0.0
    c_old, s_old = 1.0, 0.0
    eta = beta
    n_iter = 0
    converged = False

    for _ in range(max_iter):
        Av = np.asarray(matvec(v)).ravel()
        alpha = float(v @ Av)
        v_new = Av - alpha * v - beta * v_old
        beta_new = float(np.linalg.norm(v_new))

        # Apply the previous two rotations to the new tridiagonal column
        # [beta, alpha, beta_new]^T.
        rho1 = c * alpha - c_old * s * beta
        rho2 = s * alpha + c_old * c * beta
        rho3 = s_old * beta
        # New rotation eliminating beta_new.
        rho1_hat = float(np.hypot(rho1, beta_new))
        if rho1_hat == 0.0:
            # Exact breakdown: nothing left to reduce along this Krylov space.
            break
        c_new = rho1 / rho1_hat
        s_new = beta_new / rho1_hat

        d_new = (v - rho3 * d_old - rho2 * d) / rho1_hat
        x = x + (c_new * eta) * d_new
        eta = -s_new * eta

        n_iter += 1
        history.append(abs(eta))

        if abs(eta) <= threshold:
            converged = True
            break
        if beta_new == 0.0:
            # Invariant subspace reached; the projected system is solved.
            break

        v_old, v = v, v_new / beta_new
        beta = beta_new
        d_old, d = d, d_new
        c_old, s_old = c, s
        c, s = c_new, s_new

    # The recurrence estimate can drift; report the true residual.
    true_res = float(np.linalg.norm(b - np.asarray(matvec(x)).ravel()))
    return MINRESResult(
        x=x,
        converged=bool(converged or true_res <= threshold),
        n_iterations=n_iter,
        residual_norm=true_res,
        relative_residual=true_res / b_norm,
        residual_history=history,
    )
