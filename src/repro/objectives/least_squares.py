"""Linear least-squares objective.

A quadratic objective with constant Hessian ``scale * X^T X``; useful for
exercising the CG and Newton machinery against closed-form solutions in tests
and for the DiSCO/CoCoA baselines' sanity checks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.objectives.base import Objective, ScaleLike, resolve_scale
from repro.utils.flops import gemv_flops
from repro.utils.validation import check_array


class LeastSquares(Objective):
    """``scale * 0.5 * ||X @ w - b||^2``."""

    def __init__(self, X, b, *, scale: ScaleLike = "mean"):
        self.X = check_array(X, name="X", allow_sparse=True)
        b = np.asarray(b, dtype=np.float64).ravel()
        if b.shape[0] != self.X.shape[0]:
            raise ValueError(
                f"b has length {b.shape[0]}, expected {self.X.shape[0]}"
            )
        self.b = b
        self.dim = int(self.X.shape[1])
        self.scale = resolve_scale(scale, self.X.shape[0])

    def value(self, w: np.ndarray) -> float:
        w = self.check_weights(w)
        r = np.asarray(self.X @ w).ravel() - self.b
        return 0.5 * self.scale * float(r @ r)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        r = np.asarray(self.X @ w).ravel() - self.b
        return self.scale * np.asarray(self.X.T @ r).ravel()

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        r = np.asarray(self.X @ w).ravel() - self.b
        return 0.5 * self.scale * float(r @ r), self.scale * np.asarray(
            self.X.T @ r
        ).ravel()

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.shape[0] != self.dim:
            raise ValueError(f"v has length {v.shape[0]}, expected {self.dim}")
        Xv = np.asarray(self.X @ v).ravel()
        return self.scale * np.asarray(self.X.T @ Xv).ravel()

    def hessian_sqrt(self, w: np.ndarray) -> np.ndarray:
        """Square-root factor ``A`` with ``H = A^T A`` (here ``sqrt(scale) X``).

        The least-squares Hessian is constant, so ``w`` is ignored; the
        argument is kept for interface parity with the other objectives.
        """
        del w
        if hasattr(self.X, "todense"):
            return np.sqrt(self.scale) * np.asarray(self.X.todense())
        return np.sqrt(self.scale) * self.X

    def minibatch(self, indices: np.ndarray) -> "LeastSquares":
        """A new objective over a row subset (mean-scaled over the batch)."""
        indices = np.asarray(indices, dtype=np.int64)
        return LeastSquares(self.X[indices], self.b[indices], scale="mean")

    def solve_normal_equations(self, reg: float = 0.0) -> np.ndarray:
        """Closed-form minimizer of the (optionally ridge-regularized) problem.

        Minimizes ``scale * 0.5 ||X w - b||^2 + 0.5 * reg * ||w||^2``.
        """
        A = self.scale * np.asarray((self.X.T @ self.X).todense() if hasattr(self.X, "todense") else self.X.T @ self.X)
        A = A + reg * np.eye(self.dim)
        rhs = self.scale * np.asarray(self.X.T @ self.b).ravel()
        return np.linalg.solve(A, rhs)

    def flops_value(self) -> float:
        n, p = self.X.shape
        return gemv_flops(n, p) + 3.0 * n

    def flops_gradient(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 3.0 * n

    def flops_hvp(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p)

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])
