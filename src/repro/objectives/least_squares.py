"""Linear least-squares objective.

A quadratic objective with constant Hessian ``scale * X^T X``; useful for
exercising the CG and Newton machinery against closed-form solutions in tests
and for the DiSCO/CoCoA baselines' sanity checks.  Computes on a configurable
:mod:`repro.backend` like the classification losses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.backend import BackendLike, get_backend, host_matrix
from repro.objectives.base import (
    Objective,
    ScaleLike,
    resolve_scale,
    validate_design_matrix,
)
from repro.utils.flops import gemv_flops


class LeastSquares(Objective):
    """``scale * 0.5 * ||X @ w - b||^2``."""

    def __init__(self, X, b, *, scale: ScaleLike = "mean", backend: BackendLike = None):
        self._backend = get_backend(backend)
        X = validate_design_matrix(X, self._backend)
        b = self._backend.as_vector(b, X.shape[0], name="b")
        self.X = self._backend.asarray_data(X)
        self.b = b
        self.dim = int(self.X.shape[1])
        self.scale = resolve_scale(scale, self.X.shape[0])

    def value(self, w) -> float:
        w = self.check_weights(w)
        r = (self.X @ w).ravel() - self.b
        return 0.5 * self.scale * self._backend.dot(r, r)

    def gradient(self, w):
        w = self.check_weights(w)
        r = (self.X @ w).ravel() - self.b
        return self.scale * (self.X.T @ r).ravel()

    def value_and_gradient(self, w) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        r = (self.X @ w).ravel() - self.b
        return 0.5 * self.scale * self._backend.dot(r, r), self.scale * (
            self.X.T @ r
        ).ravel()

    def hvp(self, w, v):
        v = self._backend.as_vector(v, self.dim, name="v")
        Xv = (self.X @ v).ravel()
        return self.scale * (self.X.T @ Xv).ravel()

    def hessian_sqrt(self, w) -> np.ndarray:
        """Square-root factor ``A`` with ``H = A^T A`` (here ``sqrt(scale) X``).

        The least-squares Hessian is constant, so ``w`` is ignored; the
        argument is kept for interface parity with the other objectives.
        Computed on the host.
        """
        del w
        X = host_matrix(self.X)
        if hasattr(X, "todense"):
            return np.sqrt(self.scale) * np.asarray(X.todense())  # repro-lint: ignore[RPR001] host-side by contract
        return np.sqrt(self.scale) * self._backend.to_numpy(X)  # repro-lint: ignore[RPR001] host-side by contract

    def minibatch(self, indices: np.ndarray) -> "LeastSquares":
        """A new objective over a row subset (mean-scaled over the batch)."""
        indices = np.asarray(indices, dtype=np.int64)
        rows = self._rows(indices)
        return LeastSquares(
            rows, self.b[indices], scale="mean", backend=self._backend
        )

    def solve_normal_equations(self, reg: float = 0.0) -> np.ndarray:
        """Closed-form minimizer of the (optionally ridge-regularized) problem.

        Minimizes ``scale * 0.5 ||X w - b||^2 + 0.5 * reg * ||w||^2``;
        evaluated on the host (small dims only).
        """
        X = host_matrix(self.X)
        if hasattr(X, "todense"):
            gram = np.asarray((X.T @ X).todense())
            rhs_full = np.asarray(X.T @ self._backend.to_numpy(self.b)).ravel()
        else:
            Xh = self._backend.to_numpy(X)
            gram = Xh.T @ Xh
            rhs_full = Xh.T @ self._backend.to_numpy(self.b)
        A = self.scale * gram + reg * np.eye(self.dim)  # repro-lint: ignore[RPR001] host-side by contract
        rhs = self.scale * rhs_full
        return np.linalg.solve(A, rhs)

    def flops_value(self) -> float:
        n, p = self.X.shape
        return gemv_flops(n, p) + 3.0 * n

    def flops_gradient(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 3.0 * n

    def flops_hvp(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p)

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])
