"""Numerically stable primitives used by the loss functions.

Implements the "Log-Sum-Exp trick" of the paper's §6: all exponentials are
shifted by the per-sample maximum (including the implicit zero logit of the
reference class), so every exponent is non-positive and overflow cannot occur.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def log_sum_exp(logits: np.ndarray, *, include_zero: bool = True) -> np.ndarray:
    """Row-wise ``log(1 + sum_j exp(logits_j))`` (or without the ``1``).

    Parameters
    ----------
    logits:
        Array of shape ``(n_samples, n_classes_minus_1)``.
    include_zero:
        Include the implicit zero logit of the reference class, i.e. compute
        ``log(exp(0) + sum_j exp(l_j))``.  This matches the paper's (C-1)·p
        parameterization (eq. 8).

    Returns
    -------
    ndarray of shape ``(n_samples,)``.
    """
    logits = np.atleast_2d(logits)
    if include_zero:
        m = np.maximum(logits.max(axis=1), 0.0)
        shifted = logits - m[:, None]
        total = np.exp(-m) + np.exp(shifted).sum(axis=1)
    else:
        m = logits.max(axis=1)
        shifted = logits - m[:, None]
        total = np.exp(shifted).sum(axis=1)
    return m + np.log(total)


def softmax_probabilities(
    logits: np.ndarray, *, include_zero: bool = True
) -> np.ndarray:
    """Row-wise softmax probabilities for the non-reference classes.

    With ``include_zero`` the reference class contributes ``exp(0)`` to the
    normalizer, so the returned matrix has row sums strictly less than one —
    the remaining mass belongs to the reference class ``C-1``.

    Returns
    -------
    ndarray of shape ``(n_samples, n_classes_minus_1)``.
    """
    logits = np.atleast_2d(logits)
    if include_zero:
        m = np.maximum(logits.max(axis=1), 0.0)
        shifted = np.exp(logits - m[:, None])
        denom = np.exp(-m) + shifted.sum(axis=1)
    else:
        m = logits.max(axis=1)
        shifted = np.exp(logits - m[:, None])
        denom = shifted.sum(axis=1)
    return shifted / denom[:, None]


def full_class_probabilities(logits: np.ndarray) -> np.ndarray:
    """Probabilities over all ``C`` classes given ``C-1`` non-reference logits.

    Returns
    -------
    ndarray of shape ``(n_samples, n_classes)`` whose rows sum to one; the
    last column is the reference class.
    """
    p_nonref = softmax_probabilities(logits, include_zero=True)
    p_ref = 1.0 - p_nonref.sum(axis=1, keepdims=True)
    # Guard against tiny negative values from round-off.
    p_ref = np.clip(p_ref, 0.0, 1.0)
    return np.hstack([p_nonref, p_ref])


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def log1p_exp(z: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(z))`` (softplus)."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z > 0
    out[pos] = z[pos] + np.log1p(np.exp(-z[pos]))
    out[~pos] = np.log1p(np.exp(z[~pos]))
    return out


def split_weights(w: np.ndarray, n_features: int, n_classes: int) -> np.ndarray:
    """Reshape a flat ``(C-1)*p`` weight vector into a ``(p, C-1)`` matrix."""
    c = n_classes - 1
    if w.shape != ((n_classes - 1) * n_features,):
        raise ValueError(
            f"weight vector has shape {w.shape}, expected ({(n_classes - 1) * n_features},)"
        )
    return w.reshape(c, n_features).T


def flatten_weights(W: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_weights`: ``(p, C-1)`` matrix to flat vector."""
    return W.T.ravel()
