"""Numerically stable primitives used by the loss functions.

Implements the "Log-Sum-Exp trick" of the paper's §6: all exponentials are
shifted by the per-sample maximum (including the implicit zero logit of the
reference class), so every exponent is non-positive and overflow cannot occur.

Every function takes an optional ``xp`` array namespace (NumPy by default) so
the same code runs on whichever backend produced the logits — see
:mod:`repro.backend`.  The implementations avoid boolean fancy indexing in
favour of ``where``-style arithmetic, which is the portable (and
GPU-friendly) formulation.
"""

from __future__ import annotations

import numpy as np


def log_sum_exp(logits, *, include_zero: bool = True, xp=np):
    """Row-wise ``log(1 + sum_j exp(logits_j))`` (or without the ``1``).

    Parameters
    ----------
    logits:
        Array of shape ``(n_samples, n_classes_minus_1)``.
    include_zero:
        Include the implicit zero logit of the reference class, i.e. compute
        ``log(exp(0) + sum_j exp(l_j))``.  This matches the paper's (C-1)·p
        parameterization (eq. 8).
    xp:
        Array namespace of the backend that owns ``logits``.

    Returns
    -------
    Array of shape ``(n_samples,)`` on the same backend.
    """
    logits = xp.atleast_2d(logits)
    if include_zero:
        m = xp.maximum(xp.max(logits, axis=1), 0.0)
        shifted = logits - m[:, None]
        total = xp.exp(-m) + xp.sum(xp.exp(shifted), axis=1)
    else:
        m = xp.max(logits, axis=1)
        shifted = logits - m[:, None]
        total = xp.sum(xp.exp(shifted), axis=1)
    return m + xp.log(total)


def softmax_probabilities(logits, *, include_zero: bool = True, xp=np):
    """Row-wise softmax probabilities for the non-reference classes.

    With ``include_zero`` the reference class contributes ``exp(0)`` to the
    normalizer, so the returned matrix has row sums strictly less than one —
    the remaining mass belongs to the reference class ``C-1``.

    Returns
    -------
    Array of shape ``(n_samples, n_classes_minus_1)`` on the same backend.
    """
    logits = xp.atleast_2d(logits)
    if include_zero:
        m = xp.maximum(xp.max(logits, axis=1), 0.0)
        shifted = xp.exp(logits - m[:, None])
        denom = xp.exp(-m) + xp.sum(shifted, axis=1)
    else:
        m = xp.max(logits, axis=1)
        shifted = xp.exp(logits - m[:, None])
        denom = xp.sum(shifted, axis=1)
    return shifted / denom[:, None]


def lse_and_probabilities(logits, *, include_zero: bool = True, xp=np):
    """Fused row-wise log-sum-exp *and* softmax probabilities.

    Computes the shared intermediates (per-row shift ``m``, shifted
    exponentials, normalizer) exactly once and returns
    ``(log_sum_exp(logits), softmax_probabilities(logits))``.  The operations
    are issued in the same order as the two separate functions, so both
    outputs are bit-identical to calling :func:`log_sum_exp` and
    :func:`softmax_probabilities` individually — this is the NumPy reference
    semantics the backend-fused kernels (``torch.compile`` / ``cupy.fuse``)
    must reproduce up to floating-point reassociation.

    Returns
    -------
    ``(lse, probs)`` of shapes ``(n,)`` and ``(n, c)`` on the same backend.
    """
    logits = xp.atleast_2d(logits)
    if include_zero:
        m = xp.maximum(xp.max(logits, axis=1), 0.0)
        shifted = xp.exp(logits - m[:, None])
        denom = xp.exp(-m) + xp.sum(shifted, axis=1)
    else:
        m = xp.max(logits, axis=1)
        shifted = xp.exp(logits - m[:, None])
        denom = xp.sum(shifted, axis=1)
    return m + xp.log(denom), shifted / denom[:, None]


def full_class_probabilities(logits, *, xp=np):
    """Probabilities over all ``C`` classes given ``C-1`` non-reference logits.

    Returns
    -------
    Array of shape ``(n_samples, n_classes)`` whose rows sum to one; the
    last column is the reference class.
    """
    p_nonref = softmax_probabilities(logits, include_zero=True, xp=xp)
    p_ref = 1.0 - xp.sum(p_nonref, axis=1, keepdims=True)
    # Guard against tiny negative values from round-off.
    p_ref = xp.clip(p_ref, 0.0, 1.0)
    return xp.hstack([p_nonref, p_ref])


def sigmoid(z, *, xp=np):
    """Numerically stable logistic sigmoid.

    Computed from ``e = exp(-|z|)`` so no exponent is ever positive:
    ``sigma(z) = 1 / (1 + e)`` for ``z >= 0`` and ``e / (1 + e)`` otherwise.
    """
    e = xp.exp(-xp.abs(z))
    return xp.where(z >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def log1p_exp(z, *, xp=np):
    """Numerically stable ``log(1 + exp(z))`` (softplus):
    ``max(z, 0) + log1p(exp(-|z|))``."""
    return xp.maximum(z, 0.0) + xp.log1p(xp.exp(-xp.abs(z)))


def split_weights(w, n_features: int, n_classes: int):
    """Reshape a flat ``(C-1)*p`` weight vector into a ``(p, C-1)`` matrix."""
    c = n_classes - 1
    if w.shape != ((n_classes - 1) * n_features,):
        raise ValueError(
            f"weight vector has shape {w.shape}, expected ({(n_classes - 1) * n_features},)"
        )
    return w.reshape(c, n_features).T


def flatten_weights(W):
    """Inverse of :func:`split_weights`: ``(p, C-1)`` matrix to flat vector."""
    return W.T.ravel()
