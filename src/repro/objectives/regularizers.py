"""Regularizers ``g(w)`` used in the finite-sum objective (paper eq. 1)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.objectives.base import Objective
from repro.utils.validation import check_positive


class L2Regularizer(Objective):
    """Ridge penalty ``g(w) = (lam / 2) * ||w||^2``.

    This is the regularizer used throughout the paper; with it the ADMM
    ``z``-update has the closed form of eq. (7).
    """

    def __init__(self, dim: int, lam: float):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.lam = check_positive(lam, name="lam", strict=False)

    def value(self, w: np.ndarray) -> float:
        w = self.check_weights(w)
        return 0.5 * self.lam * float(w @ w)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return self.lam * w

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        return 0.5 * self.lam * float(w @ w), self.lam * w

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        return self.lam * np.asarray(v, dtype=np.float64)

    def hessian(self, w: np.ndarray) -> np.ndarray:
        return self.lam * np.eye(self.dim)

    def flops_value(self) -> float:
        return 2.0 * self.dim

    def flops_gradient(self) -> float:
        return self.dim

    def flops_hvp(self) -> float:
        return self.dim


class SmoothedL1Regularizer(Objective):
    """Pseudo-Huber approximation of the L1 penalty ``lam * ||w||_1``.

    ``g(w) = lam * sum_j (sqrt(w_j^2 + mu^2) - mu)`` — twice differentiable
    everywhere, and converges to the L1 penalty as ``mu -> 0``.  It keeps
    sparsity-inducing problems inside the smooth framework the paper's
    Newton-type solvers require.
    """

    def __init__(self, dim: int, lam: float, *, mu: float = 1e-3):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.lam = check_positive(lam, name="lam", strict=False)
        self.mu = check_positive(mu, name="mu")

    def value(self, w: np.ndarray) -> float:
        w = self.check_weights(w)
        return self.lam * float(np.sum(np.sqrt(w * w + self.mu**2) - self.mu))

    def gradient(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return self.lam * w / np.sqrt(w * w + self.mu**2)

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        v = np.asarray(v, dtype=np.float64).ravel()
        denom = (w * w + self.mu**2) ** 1.5
        return self.lam * (self.mu**2 / denom) * v

    def flops_value(self) -> float:
        return 5.0 * self.dim

    def flops_gradient(self) -> float:
        return 5.0 * self.dim

    def flops_hvp(self) -> float:
        return 6.0 * self.dim


class ElasticNetRegularizer(Objective):
    """Smooth elastic net: ridge plus the pseudo-Huber-smoothed L1 penalty.

    ``g(w) = (lam_ridge / 2) ||w||^2 + lam_l1 * smoothed_l1(w)``.  With the
    smoothed L1 the ADMM z-update no longer has the closed form of eq. (7);
    Newton-ADMM accepts it through its generic (CG-based) z-update path, and
    the single-node solvers use it unchanged.
    """

    def __init__(self, dim: int, lam_ridge: float, lam_l1: float, *, mu: float = 1e-3):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.lam_ridge = check_positive(lam_ridge, name="lam_ridge", strict=False)
        self.lam_l1 = check_positive(lam_l1, name="lam_l1", strict=False)
        self._ridge = L2Regularizer(dim, lam_ridge)
        self._l1 = SmoothedL1Regularizer(dim, lam_l1, mu=mu) if lam_l1 > 0 else None

    def value(self, w: np.ndarray) -> float:
        out = self._ridge.value(w)
        if self._l1 is not None:
            out += self._l1.value(w)
        return out

    def gradient(self, w: np.ndarray) -> np.ndarray:
        out = self._ridge.gradient(w)
        if self._l1 is not None:
            out = out + self._l1.gradient(w)
        return out

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        out = self._ridge.hvp(w, v)
        if self._l1 is not None:
            out = out + self._l1.hvp(w, v)
        return out

    def flops_value(self) -> float:
        out = self._ridge.flops_value()
        if self._l1 is not None:
            out += self._l1.flops_value()
        return out

    def flops_gradient(self) -> float:
        out = self._ridge.flops_gradient()
        if self._l1 is not None:
            out += self._l1.flops_gradient()
        return out

    def flops_hvp(self) -> float:
        out = self._ridge.flops_hvp()
        if self._l1 is not None:
            out += self._l1.flops_hvp()
        return out


class ZeroRegularizer(Objective):
    """The trivial regularizer ``g(w) = 0`` (unregularized problems)."""

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)

    def value(self, w: np.ndarray) -> float:
        self.check_weights(w)
        return 0.0

    def gradient(self, w: np.ndarray) -> np.ndarray:
        self.check_weights(w)
        return np.zeros(self.dim)

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        return np.zeros(self.dim)

    def hessian(self, w: np.ndarray) -> np.ndarray:
        return np.zeros((self.dim, self.dim))
