"""Regularizers ``g(w)`` used in the finite-sum objective (paper eq. 1).

Regularizers are data-free, so they normally inherit their backend from the
loss they are combined with (see
:class:`~repro.objectives.base.RegularizedObjective`); an explicit
``backend=`` is accepted for standalone use.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.backend import BackendLike, get_backend
from repro.objectives.base import Objective
from repro.utils.validation import check_positive


class L2Regularizer(Objective):
    """Ridge penalty ``g(w) = (lam / 2) * ||w||^2``.

    This is the regularizer used throughout the paper; with it the ADMM
    ``z``-update has the closed form of eq. (7).
    """

    def __init__(self, dim: int, lam: float, *, backend: BackendLike = None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.lam = check_positive(lam, name="lam", strict=False)
        self._backend = None if backend is None else get_backend(backend)

    def value(self, w) -> float:
        w = self.check_weights(w)
        return 0.5 * self.lam * self.backend.dot(w, w)

    def gradient(self, w):
        w = self.check_weights(w)
        return self.lam * w

    def value_and_gradient(self, w) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        return 0.5 * self.lam * self.backend.dot(w, w), self.lam * w

    def hvp(self, w, v):
        return self.lam * self.backend.as_vector(v)

    def hessian(self, w) -> np.ndarray:
        return self.lam * np.eye(self.dim)

    def flops_value(self) -> float:
        return 2.0 * self.dim

    def flops_gradient(self) -> float:
        return self.dim

    def flops_hvp(self) -> float:
        return self.dim


class SmoothedL1Regularizer(Objective):
    """Pseudo-Huber approximation of the L1 penalty ``lam * ||w||_1``.

    ``g(w) = lam * sum_j (sqrt(w_j^2 + mu^2) - mu)`` — twice differentiable
    everywhere, and converges to the L1 penalty as ``mu -> 0``.  It keeps
    sparsity-inducing problems inside the smooth framework the paper's
    Newton-type solvers require.
    """

    def __init__(self, dim: int, lam: float, *, mu: float = 1e-3, backend: BackendLike = None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.lam = check_positive(lam, name="lam", strict=False)
        self.mu = check_positive(mu, name="mu")
        self._backend = None if backend is None else get_backend(backend)

    def value(self, w) -> float:
        xp = self.backend.xp
        w = self.check_weights(w)
        return self.lam * self.backend.to_float(
            xp.sum(xp.sqrt(w * w + self.mu**2) - self.mu)
        )

    def gradient(self, w):
        xp = self.backend.xp
        w = self.check_weights(w)
        return self.lam * w / xp.sqrt(w * w + self.mu**2)

    def hvp(self, w, v):
        w = self.check_weights(w)
        v = self.backend.as_vector(v)
        denom = (w * w + self.mu**2) ** 1.5
        return self.lam * (self.mu**2 / denom) * v

    def flops_value(self) -> float:
        return 5.0 * self.dim

    def flops_gradient(self) -> float:
        return 5.0 * self.dim

    def flops_hvp(self) -> float:
        return 6.0 * self.dim


class ElasticNetRegularizer(Objective):
    """Smooth elastic net: ridge plus the pseudo-Huber-smoothed L1 penalty.

    ``g(w) = (lam_ridge / 2) ||w||^2 + lam_l1 * smoothed_l1(w)``.  With the
    smoothed L1 the ADMM z-update no longer has the closed form of eq. (7);
    Newton-ADMM accepts it through its generic (CG-based) z-update path, and
    the single-node solvers use it unchanged.
    """

    def __init__(
        self,
        dim: int,
        lam_ridge: float,
        lam_l1: float,
        *,
        mu: float = 1e-3,
        backend: BackendLike = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.lam_ridge = check_positive(lam_ridge, name="lam_ridge", strict=False)
        self.lam_l1 = check_positive(lam_l1, name="lam_l1", strict=False)
        self._backend = None if backend is None else get_backend(backend)
        self._ridge = L2Regularizer(dim, lam_ridge, backend=self._backend)
        self._l1 = (
            SmoothedL1Regularizer(dim, lam_l1, mu=mu, backend=self._backend)
            if lam_l1 > 0
            else None
        )

    def _adopt_backend(self, backend) -> None:
        super()._adopt_backend(backend)
        self._ridge._adopt_backend(backend)
        if self._l1 is not None:
            self._l1._adopt_backend(backend)

    def value(self, w) -> float:
        out = self._ridge.value(w)
        if self._l1 is not None:
            out += self._l1.value(w)
        return out

    def gradient(self, w):
        out = self._ridge.gradient(w)
        if self._l1 is not None:
            out = out + self._l1.gradient(w)
        return out

    def hvp(self, w, v):
        out = self._ridge.hvp(w, v)
        if self._l1 is not None:
            out = out + self._l1.hvp(w, v)
        return out

    def flops_value(self) -> float:
        out = self._ridge.flops_value()
        if self._l1 is not None:
            out += self._l1.flops_value()
        return out

    def flops_gradient(self) -> float:
        out = self._ridge.flops_gradient()
        if self._l1 is not None:
            out += self._l1.flops_gradient()
        return out

    def flops_hvp(self) -> float:
        out = self._ridge.flops_hvp()
        if self._l1 is not None:
            out += self._l1.flops_hvp()
        return out


class ZeroRegularizer(Objective):
    """The trivial regularizer ``g(w) = 0`` (unregularized problems)."""

    def __init__(self, dim: int, *, backend: BackendLike = None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self._backend = None if backend is None else get_backend(backend)

    def value(self, w) -> float:
        self.check_weights(w)
        return 0.0

    def gradient(self, w):
        w = self.check_weights(w)
        # Match the iterate's dtype so float32 pipelines are not promoted.
        return self.backend.zeros(self.dim, dtype=getattr(w, "dtype", None))

    def hvp(self, w, v):
        v = self.backend.as_vector(v)
        return self.backend.zeros(self.dim, dtype=getattr(v, "dtype", None))

    def hessian(self, w) -> np.ndarray:
        return np.zeros((self.dim, self.dim))
