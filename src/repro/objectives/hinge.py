"""Smoothed hinge (squared-hinge) losses.

The paper's framework (eq. 1) covers any smooth convex finite sum; softmax
cross-entropy is the loss its experiments use, but L2-regularized
squared-hinge SVMs are the other classical instance of the same template and
exercise a qualitatively different Hessian (piecewise, data-sparse in the
active set).  Both a binary and a one-vs-rest multiclass variant are provided
so every solver in the library — including Newton-ADMM — can be run on SVM
objectives unchanged.

The squared hinge ``max(0, 1 - m)^2`` is continuously differentiable with a
(generalized) Hessian that is piecewise constant in the margin; the
Hessian-vector product below uses that generalized Hessian, which is the
standard choice for Newton-type SVM training (Keerthi & DeCoste, 2005).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.objectives.base import Objective, ScaleLike, resolve_scale
from repro.utils.flops import gemm_flops, gemv_flops
from repro.utils.validation import check_array, check_labels


class BinarySquaredHinge(Objective):
    """Squared-hinge loss ``sum_i max(0, 1 - s_i * (x_i @ w))^2`` with ``s_i = 2 y_i - 1``.

    Labels are ``{0, 1}``; internally they are mapped to ``{-1, +1}``.
    """

    def __init__(self, X, y, *, scale: ScaleLike = "mean"):
        self.X = check_array(X, name="X", allow_sparse=True)
        self.y, n_classes = check_labels(y, n_samples=self.X.shape[0], n_classes=2)
        if n_classes != 2:
            raise ValueError("BinarySquaredHinge requires exactly two classes")
        self.n_features = int(self.X.shape[1])
        self.dim = self.n_features
        self.scale = resolve_scale(scale, self.X.shape[0])
        self._signs = 2.0 * self.y.astype(np.float64) - 1.0

    def _margins(self, w: np.ndarray) -> np.ndarray:
        return self._signs * np.asarray(self.X @ w).ravel()

    def value(self, w: np.ndarray) -> float:
        w = self.check_weights(w)
        violation = np.maximum(0.0, 1.0 - self._margins(w))
        return self.scale * float(violation @ violation)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        violation = np.maximum(0.0, 1.0 - self._margins(w))
        coeff = -2.0 * self._signs * violation
        return self.scale * np.asarray(self.X.T @ coeff).ravel()

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        violation = np.maximum(0.0, 1.0 - self._margins(w))
        value = self.scale * float(violation @ violation)
        coeff = -2.0 * self._signs * violation
        return value, self.scale * np.asarray(self.X.T @ coeff).ravel()

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.shape[0] != self.dim:
            raise ValueError(f"v has length {v.shape[0]}, expected {self.dim}")
        active = (self._margins(w) < 1.0).astype(np.float64)
        Xv = np.asarray(self.X @ v).ravel()
        return self.scale * 2.0 * np.asarray(self.X.T @ (active * Xv)).ravel()

    def hessian_sqrt(self, w: np.ndarray) -> np.ndarray:
        """Square-root factor of the generalized Hessian ``2 * X_A^T X_A``."""
        w = self.check_weights(w)
        active = (self._margins(w) < 1.0).astype(np.float64)
        d = np.sqrt(2.0 * self.scale) * active
        if hasattr(self.X, "multiply"):
            return np.asarray(self.X.multiply(d[:, None]).todense())
        return d[:, None] * self.X

    def minibatch(self, indices: np.ndarray) -> "BinarySquaredHinge":
        indices = np.asarray(indices, dtype=np.int64)
        return BinarySquaredHinge(self.X[indices], self.y[indices], scale="mean")

    def predict(self, w: np.ndarray, X=None) -> np.ndarray:
        w = self.check_weights(w)
        data = self.X if X is None else check_array(X, name="X", allow_sparse=True)
        return (np.asarray(data @ w).ravel() >= 0.0).astype(np.int64)

    def flops_value(self) -> float:
        n, p = self.X.shape
        return gemv_flops(n, p) + 4.0 * n

    def flops_gradient(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 5.0 * n

    def flops_hvp(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 3.0 * n

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])


class MulticlassSquaredHinge(Objective):
    """One-vs-rest squared-hinge loss over ``C`` weight vectors.

    The optimization variable is the flat vector of all ``C`` per-class weight
    vectors (dimension ``C * p`` — unlike softmax there is no reference class),
    and each sample contributes ``sum_c max(0, 1 - s_ic * (x_i @ w_c))^2`` with
    ``s_ic = +1`` for the true class and ``-1`` otherwise.
    """

    def __init__(self, X, y, n_classes=None, *, scale: ScaleLike = "mean"):
        self.X = check_array(X, name="X", allow_sparse=True)
        self.y, self.n_classes = check_labels(
            y, n_samples=self.X.shape[0], n_classes=n_classes
        )
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.n_classes}")
        self.n_features = int(self.X.shape[1])
        self.dim = self.n_classes * self.n_features
        self.scale = resolve_scale(scale, self.X.shape[0])
        n = self.X.shape[0]
        self._signs = -np.ones((n, self.n_classes))
        self._signs[np.arange(n), self.y] = 1.0

    def _as_matrix(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return w.reshape(self.n_classes, self.n_features).T

    def _as_vector(self, W: np.ndarray) -> np.ndarray:
        return W.T.ravel()

    def value(self, w: np.ndarray) -> float:
        W = self._as_matrix(w)
        margins = self._signs * np.asarray(self.X @ W)
        violation = np.maximum(0.0, 1.0 - margins)
        return self.scale * float(np.sum(violation * violation))

    def gradient(self, w: np.ndarray) -> np.ndarray:
        W = self._as_matrix(w)
        margins = self._signs * np.asarray(self.X @ W)
        violation = np.maximum(0.0, 1.0 - margins)
        coeff = -2.0 * self._signs * violation
        G = self.X.T @ coeff
        return self.scale * self._as_vector(np.asarray(G))

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        W = self._as_matrix(w)
        margins = self._signs * np.asarray(self.X @ W)
        violation = np.maximum(0.0, 1.0 - margins)
        value = self.scale * float(np.sum(violation * violation))
        coeff = -2.0 * self._signs * violation
        G = self.X.T @ coeff
        return value, self.scale * self._as_vector(np.asarray(G))

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        W = self._as_matrix(w)
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.shape[0] != self.dim:
            raise ValueError(f"v has length {v.shape[0]}, expected {self.dim}")
        V = v.reshape(self.n_classes, self.n_features).T
        margins = self._signs * np.asarray(self.X @ W)
        active = (margins < 1.0).astype(np.float64)
        XV = np.asarray(self.X @ V)
        out = self.X.T @ (2.0 * active * XV)
        return self.scale * self._as_vector(np.asarray(out))

    def minibatch(self, indices: np.ndarray) -> "MulticlassSquaredHinge":
        indices = np.asarray(indices, dtype=np.int64)
        return MulticlassSquaredHinge(
            self.X[indices], self.y[indices], self.n_classes, scale="mean"
        )

    def predict(self, w: np.ndarray, X=None) -> np.ndarray:
        W = self._as_matrix(w)
        data = self.X if X is None else check_array(X, name="X", allow_sparse=True)
        return np.argmax(np.asarray(data @ W), axis=1)

    def flops_value(self) -> float:
        n, p = self.X.shape
        return gemm_flops(n, p, self.n_classes) + 4.0 * n * self.n_classes

    def flops_gradient(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemm_flops(n, p, self.n_classes) + 5.0 * n * self.n_classes

    def flops_hvp(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemm_flops(n, p, self.n_classes) + 3.0 * n * self.n_classes

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])
