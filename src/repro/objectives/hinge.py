"""Smoothed hinge (squared-hinge) losses.

The paper's framework (eq. 1) covers any smooth convex finite sum; softmax
cross-entropy is the loss its experiments use, but L2-regularized
squared-hinge SVMs are the other classical instance of the same template and
exercise a qualitatively different Hessian (piecewise, data-sparse in the
active set).  Both a binary and a one-vs-rest multiclass variant are provided
so every solver in the library — including Newton-ADMM — can be run on SVM
objectives unchanged.

The squared hinge ``max(0, 1 - m)^2`` is continuously differentiable with a
(generalized) Hessian that is piecewise constant in the margin; the
Hessian-vector product below uses that generalized Hessian, which is the
standard choice for Newton-type SVM training (Keerthi & DeCoste, 2005).

Both losses compute on a configurable :mod:`repro.backend`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.backend import BackendLike, get_backend, host_matrix
from repro.objectives.base import (
    Objective,
    ScaleLike,
    data_float_dtype,
    resolve_scale,
    validate_design_matrix,
)
from repro.utils.flops import gemm_flops, gemv_flops
from repro.utils.validation import check_labels


class BinarySquaredHinge(Objective):
    """Squared-hinge loss ``sum_i max(0, 1 - s_i * (x_i @ w))^2`` with ``s_i = 2 y_i - 1``.

    Labels are ``{0, 1}``; internally they are mapped to ``{-1, +1}``.
    """

    def __init__(self, X, y, *, scale: ScaleLike = "mean", backend: BackendLike = None):
        self._backend = get_backend(backend)
        X = validate_design_matrix(X, self._backend)
        self.y, n_classes = check_labels(y, n_samples=X.shape[0], n_classes=2)
        if n_classes != 2:
            raise ValueError("BinarySquaredHinge requires exactly two classes")
        self.X = self._backend.asarray_data(X)
        self.n_features = int(self.X.shape[1])
        self.dim = self.n_features
        self.scale = resolve_scale(scale, self.X.shape[0])
        self._signs = self._backend.asarray(
            2.0 * self.y.astype(np.float64) - 1.0, dtype=data_float_dtype(self.X)
        )

    def _margins(self, w):
        return self._signs * (self.X @ w).ravel()

    def value(self, w) -> float:
        xp = self._backend.xp
        w = self.check_weights(w)
        violation = xp.maximum(0.0, 1.0 - self._margins(w))
        return self.scale * self._backend.dot(violation, violation)

    def gradient(self, w):
        xp = self._backend.xp
        w = self.check_weights(w)
        violation = xp.maximum(0.0, 1.0 - self._margins(w))
        coeff = -2.0 * self._signs * violation
        return self.scale * (self.X.T @ coeff).ravel()

    def value_and_gradient(self, w) -> Tuple[float, np.ndarray]:
        xp = self._backend.xp
        w = self.check_weights(w)
        violation = xp.maximum(0.0, 1.0 - self._margins(w))
        value = self.scale * self._backend.dot(violation, violation)
        coeff = -2.0 * self._signs * violation
        return value, self.scale * (self.X.T @ coeff).ravel()

    def hvp(self, w, v):
        w = self.check_weights(w)
        v = self._backend.as_vector(v, self.dim, name="v")
        active = 1.0 * (self._margins(w) < 1.0)
        Xv = (self.X @ v).ravel()
        return self.scale * 2.0 * (self.X.T @ (active * Xv)).ravel()

    def hessian_sqrt(self, w) -> np.ndarray:
        """Square-root factor of the generalized Hessian ``2 * X_A^T X_A``
        (computed on the host)."""
        w = self.check_weights(w)
        active = (self._backend.to_numpy(self._margins(w)) < 1.0).astype(np.float64)
        d = np.sqrt(2.0 * self.scale) * active  # repro-lint: ignore[RPR001] host-side by contract
        X = host_matrix(self.X)
        if hasattr(X, "multiply"):
            return np.asarray(X.multiply(d[:, None]).todense())
        return d[:, None] * self._backend.to_numpy(X)

    def minibatch(self, indices: np.ndarray) -> "BinarySquaredHinge":
        indices = np.asarray(indices, dtype=np.int64)
        rows = self._rows(indices)
        return BinarySquaredHinge(
            rows, self.y[indices], scale="mean", backend=self._backend
        )

    def predict(self, w, X=None) -> np.ndarray:
        w = self.check_weights(w)
        data = self.X if X is None else self._eval_matrix(X)
        margins = self._backend.to_numpy((data @ w).ravel())
        return (margins >= 0.0).astype(np.int64)

    def flops_value(self) -> float:
        n, p = self.X.shape
        return gemv_flops(n, p) + 4.0 * n

    def flops_gradient(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 5.0 * n

    def flops_hvp(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 3.0 * n

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])


class MulticlassSquaredHinge(Objective):
    """One-vs-rest squared-hinge loss over ``C`` weight vectors.

    The optimization variable is the flat vector of all ``C`` per-class weight
    vectors (dimension ``C * p`` — unlike softmax there is no reference class),
    and each sample contributes ``sum_c max(0, 1 - s_ic * (x_i @ w_c))^2`` with
    ``s_ic = +1`` for the true class and ``-1`` otherwise.
    """

    def __init__(
        self,
        X,
        y,
        n_classes=None,
        *,
        scale: ScaleLike = "mean",
        backend: BackendLike = None,
    ):
        self._backend = get_backend(backend)
        X = validate_design_matrix(X, self._backend)
        self.y, self.n_classes = check_labels(
            y, n_samples=X.shape[0], n_classes=n_classes
        )
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.n_classes}")
        self.X = self._backend.asarray_data(X)
        self.n_features = int(self.X.shape[1])
        self.dim = self.n_classes * self.n_features
        self.scale = resolve_scale(scale, self.X.shape[0])
        n = self.X.shape[0]
        signs = -np.ones((n, self.n_classes))  # repro-lint: ignore[RPR001] host-side by contract
        signs[np.arange(n), self.y] = 1.0  # repro-lint: ignore[RPR001] host-side by contract
        self._signs = self._backend.asarray(signs, dtype=data_float_dtype(self.X))

    def _as_matrix(self, w):
        w = self.check_weights(w)
        return w.reshape(self.n_classes, self.n_features).T

    def _as_vector(self, W):
        return W.T.ravel()

    def value(self, w) -> float:
        xp = self._backend.xp
        W = self._as_matrix(w)
        margins = self._signs * (self.X @ W)
        violation = xp.maximum(0.0, 1.0 - margins)
        return self.scale * self._backend.to_float(xp.sum(violation * violation))

    def gradient(self, w):
        xp = self._backend.xp
        W = self._as_matrix(w)
        margins = self._signs * (self.X @ W)
        violation = xp.maximum(0.0, 1.0 - margins)
        coeff = -2.0 * self._signs * violation
        G = self.X.T @ coeff
        return self.scale * self._as_vector(G)

    def value_and_gradient(self, w) -> Tuple[float, np.ndarray]:
        xp = self._backend.xp
        W = self._as_matrix(w)
        margins = self._signs * (self.X @ W)
        violation = xp.maximum(0.0, 1.0 - margins)
        value = self.scale * self._backend.to_float(xp.sum(violation * violation))
        coeff = -2.0 * self._signs * violation
        G = self.X.T @ coeff
        return value, self.scale * self._as_vector(G)

    def hvp(self, w, v):
        W = self._as_matrix(w)
        v = self._backend.as_vector(v, self.dim, name="v")
        V = v.reshape(self.n_classes, self.n_features).T
        margins = self._signs * (self.X @ W)
        active = 1.0 * (margins < 1.0)
        XV = self.X @ V
        out = self.X.T @ (2.0 * active * XV)
        return self.scale * self._as_vector(out)

    def minibatch(self, indices: np.ndarray) -> "MulticlassSquaredHinge":
        indices = np.asarray(indices, dtype=np.int64)
        rows = self._rows(indices)
        return MulticlassSquaredHinge(
            rows,
            self.y[indices],
            self.n_classes,
            scale="mean",
            backend=self._backend,
        )

    def predict(self, w, X=None) -> np.ndarray:
        xp = self._backend.xp
        W = self._as_matrix(w)
        data = self.X if X is None else self._eval_matrix(X)
        return self._backend.to_numpy(xp.argmax(data @ W, axis=1))

    def flops_value(self) -> float:
        n, p = self.X.shape
        return gemm_flops(n, p, self.n_classes) + 4.0 * n * self.n_classes

    def flops_gradient(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemm_flops(n, p, self.n_classes) + 5.0 * n * self.n_classes

    def flops_hvp(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemm_flops(n, p, self.n_classes) + 3.0 * n * self.n_classes

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])
