"""Multiclass softmax / cross-entropy objective (paper §5 and §6).

The model has ``C - 1`` weight vectors of dimension ``p`` (the reference class
``C - 1`` has an implicit zero logit), so the optimization variable is the
flat vector ``w`` of dimension ``d = (C - 1) * p``.  All exponentials are
evaluated with the log-sum-exp shift of §6, so the objective never overflows.

The Hessian of this loss has the block structure
``H = sum_i (diag(p_i) - p_i p_i^T) ⊗ (x_i x_i^T)`` and is positive
semi-definite; it is never materialized — only Hessian-vector products are
exposed (two GEMMs of the same shape as the gradient's).

Per-iterate forward cache
-------------------------
The logits GEMM ``X @ W`` and its log-sum-exp / softmax are the shared prefix
of ``value``, ``gradient`` and every ``hvp`` at the same iterate, so they are
computed once per *distinct iterate object* and reused.  The cache holds a
single entry keyed on object identity (``w is cached``), exactly like the
``_eval_matrix`` cache: the identity-preserving ``backend.as_vector`` keeps
one iterate one object through wrapper chains, and callers must not mutate an
iterate in place between evaluations (no solver in this library does).  With
the cache warm, an HVP costs two GEMMs instead of three and
``value_and_gradient`` computes lse and probabilities in one fused pass
(:meth:`~repro.backend.base.ArrayBackend.fused_lse_probs`).

All kernels run on the configured :mod:`repro.backend` (NumPy by default;
CuPy / Torch move the GEMMs to the GPU); predictions are always returned as
host NumPy arrays for the metrics layer with exactly one device-to-host
transfer per call.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend import BackendLike, apply_storage_precision, get_backend, resolve_precision
from repro.objectives.base import (
    Objective,
    ScaleLike,
    data_float_dtype,
    resolve_scale,
    validate_design_matrix,
)
from repro.objectives.numerics import (
    full_class_probabilities,
    log_sum_exp,
    softmax_probabilities,
)
from repro.utils.flops import (
    softmax_gradient_flops,
    softmax_hvp_flops,
    softmax_objective_flops,
    softmax_value_and_gradient_flops,
)
from repro.utils.validation import check_labels


class SoftmaxCrossEntropy(Objective):
    """Cross-entropy loss for linear multiclass classification.

    Parameters
    ----------
    X:
        Design matrix ``(n_samples, n_features)`` — dense or CSR.
    y:
        Integer labels in ``{0, ..., n_classes - 1}``; class ``n_classes - 1``
        is the reference class with an implicit zero logit.
    n_classes:
        Number of classes ``C`` (inferred from ``y`` if omitted).
    scale:
        ``"mean"`` (default), ``"sum"``, or an explicit float multiplier; see
        :mod:`repro.objectives.base`.
    backend:
        Array backend name or instance (``None`` -> NumPy); the design matrix
        and the cached indicator move to the backend once, at construction.
    precision:
        ``None`` (follow the data's dtype — the bit-reproducible default),
        ``"fp64"``, ``"fp32"``, or ``"mixed"`` (float32 storage and GEMMs,
        float64 log-sum-exp); see :mod:`repro.backend.precision`.  ``None``
        resolves the session default set by ``set_default_precision``.
    """

    def __init__(
        self,
        X,
        y,
        n_classes: Optional[int] = None,
        *,
        scale: ScaleLike = "mean",
        backend: BackendLike = None,
        precision: Optional[str] = None,
    ):
        self._backend = get_backend(backend)
        self.precision = resolve_precision(precision)
        X = apply_storage_precision(X, self.precision)
        X = validate_design_matrix(X, self._backend)
        self.y, self.n_classes = check_labels(
            y, n_samples=X.shape[0], n_classes=n_classes
        )
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.n_classes}")
        self.X = self._backend.asarray_data(X)
        self.n_features = int(self.X.shape[1])
        self.dim = (self.n_classes - 1) * self.n_features
        self.scale = resolve_scale(scale, self.X.shape[0])
        # One-hot indicator over the non-reference classes, cached because it
        # is reused by every gradient evaluation.
        n = self.X.shape[0]
        c = self.n_classes - 1
        indicator = np.zeros((n, c))  # repro-lint: ignore[RPR001] host-side by contract
        mask = self.y < c
        indicator[np.flatnonzero(mask), self.y[mask]] = 1.0  # repro-lint: ignore[RPR001] host-side by contract
        # Follow the data's floating dtype so float32 problems stay float32.
        self._indicator = self._backend.asarray(
            indicator, dtype=data_float_dtype(self.X)
        )
        # Single-entry per-iterate forward cache (see module docstring).
        self._iterate_cache: Optional[dict] = None

    # -- weight reshaping -------------------------------------------------
    def _as_matrix(self, w):
        """Flat ``(C-1)*p`` vector -> ``(p, C-1)`` weight matrix."""
        w = self.check_weights(w)
        return w.reshape(self.n_classes - 1, self.n_features).T

    def _as_vector(self, W):
        return W.T.ravel()

    def _logits(self, W):
        return self.X @ W

    # -- per-iterate forward cache ----------------------------------------
    def _forward(self, w, *, need_lse: bool = False, need_probs: bool = False):
        """Forward quantities at iterate ``w``, computed at most once each.

        Returns the cache dict with ``logits`` always present, ``lse`` when
        ``need_lse`` and ``P`` (probabilities, at storage precision) when
        ``need_probs``.  When both are requested and neither is cached yet,
        they come from one fused kernel.  In ``"mixed"`` mode the lse and
        probabilities are computed from float64-promoted logits; ``P`` is
        demoted back to float32 so the backward GEMMs stay single-precision.
        """
        w = self.check_weights(w)
        cache = self._iterate_cache
        if cache is None or cache["w"] is not w:
            cache = {"w": w}
            self._iterate_cache = cache
        xp = self._backend.xp
        if "logits" not in cache:
            cache["logits"] = self._logits(
                w.reshape(self.n_classes - 1, self.n_features).T
            )
        mixed = self.precision == "mixed"
        if mixed and "logits_hp" not in cache:
            cache["logits_hp"] = self._backend.promote_fp64(cache["logits"])
        red = cache["logits_hp"] if mixed else cache["logits"]
        if need_lse and need_probs and "lse" not in cache and "P" not in cache:
            lse, P = self._backend.fused_lse_probs(red)
            cache["lse"] = lse
            cache["P"] = self._backend.demote_fp32(P) if mixed else P
        if need_lse and "lse" not in cache:
            cache["lse"] = log_sum_exp(red, include_zero=True, xp=xp)
        if need_probs and "P" not in cache:
            P = softmax_probabilities(red, include_zero=True, xp=xp)
            cache["P"] = self._backend.demote_fp32(P) if mixed else P
        return cache

    # -- objective API -----------------------------------------------------
    def value(self, w) -> float:
        xp = self._backend.xp
        cache = self._forward(w, need_lse=True)
        logits = cache["logits_hp"] if self.precision == "mixed" else cache["logits"]
        correct = xp.sum(logits * self._indicator, axis=1)
        return self.scale * self._backend.to_float(xp.sum(cache["lse"] - correct))

    def gradient(self, w):
        cache = self._forward(w, need_probs=True)
        G = self.X.T @ (cache["P"] - self._indicator)
        return self.scale * self._as_vector(G)

    def value_and_gradient(self, w) -> Tuple[float, np.ndarray]:
        xp = self._backend.xp
        cache = self._forward(w, need_lse=True, need_probs=True)
        logits = cache["logits_hp"] if self.precision == "mixed" else cache["logits"]
        correct = xp.sum(logits * self._indicator, axis=1)
        value = self.scale * self._backend.to_float(xp.sum(cache["lse"] - correct))
        G = self.X.T @ (cache["P"] - self._indicator)
        return value, self.scale * self._as_vector(G)

    def _curvature_block(self, P, U, xp):
        """``T`` such that ``H v = scale * X.T @ T`` for ``U = X @ V``."""
        PU = P * U
        return PU - P * xp.sum(PU, axis=1, keepdims=True)

    def hvp(self, w, v):
        xp = self._backend.xp
        cache = self._forward(w, need_probs=True)
        v = self._backend.as_vector(v, self.dim, name="v")
        V = v.reshape(self.n_classes - 1, self.n_features).T
        U = self.X @ V
        out = self.X.T @ self._curvature_block(cache["P"], U, xp)
        return self.scale * self._as_vector(out)

    def hvp_mat(self, w, V):
        """Hessian applied to all ``s`` columns of ``V`` — two GEMMs total.

        Each column of ``V`` is a flat ``(C-1)*p`` direction; the columns'
        per-class weight matrices are laid side by side into one ``(p, s*c)``
        block so the forward and backward passes are single GEMMs of width
        ``s*c`` instead of ``s`` separate GEMMs of width ``c``.  The
        per-column results agree with ``hvp`` up to GEMM reassociation.
        """
        xp = self._backend.xp
        cache = self._forward(w, need_probs=True)
        V = self._backend.asarray(V)
        if V.ndim != 2 or V.shape[0] != self.dim:
            raise ValueError(
                f"V must have shape ({self.dim}, s), got {tuple(V.shape)}"
            )
        P = cache["P"]
        s = int(V.shape[1])
        c = self.n_classes - 1
        p = self.n_features
        # Column j of V reshaped to its (p, c) weight matrix occupies columns
        # [j*c, (j+1)*c) of the stacked block.
        Vstack = V.T.reshape(s * c, p).T
        U = self.X @ Vstack
        blocks = [
            self._curvature_block(P, U[:, j * c : (j + 1) * c], xp)
            for j in range(s)
        ]
        T = xp.hstack(blocks) if s > 1 else blocks[0]
        out = self.X.T @ T
        cols = [
            self._as_vector(out[:, j * c : (j + 1) * c]).reshape(-1, 1)
            for j in range(s)
        ]
        res = xp.hstack(cols) if s > 1 else cols[0]
        return self.scale * res

    def hvp_per_class(self, w, v):
        """Reference HVP issuing one GEMV per class column.

        This is the pre-batching formulation (a loop of ``(n, p) @ (p,)``
        products instead of one ``(n, p) @ (p, c)`` GEMM); it is kept as the
        benchmark baseline for ``BENCH_kernels.json`` and as an independent
        cross-check of :meth:`hvp` in tests.  Never on the hot path.
        """
        xp = self._backend.xp
        cache = self._forward(w, need_probs=True)
        v = self._backend.as_vector(v, self.dim, name="v")
        V = v.reshape(self.n_classes - 1, self.n_features).T
        c = self.n_classes - 1
        U = xp.hstack([(self.X @ V[:, k]).reshape(-1, 1) for k in range(c)])
        T = self._curvature_block(cache["P"], U, xp)
        out = xp.hstack([(self.X.T @ T[:, k]).reshape(-1, 1) for k in range(c)])
        return self.scale * self._as_vector(out)

    # -- prediction --------------------------------------------------------
    def predict_proba(self, w, X=None) -> np.ndarray:
        """Class probabilities ``(n, C)`` under weights ``w`` for ``X``
        (returned on the host; one device-to-host transfer)."""
        xp = self._backend.xp
        W = self._as_matrix(w)
        data = self.X if X is None else self._eval_matrix(X)
        logits = data @ W
        return self._backend.to_numpy(full_class_probabilities(logits, xp=xp))

    def predict(self, w, X=None) -> np.ndarray:
        """Most likely class per sample (host array).

        The argmax runs on the backend so only the ``(n,)`` index vector
        crosses the device boundary, not the full ``(n, C)`` probability
        matrix.
        """
        xp = self._backend.xp
        W = self._as_matrix(w)
        data = self.X if X is None else self._eval_matrix(X)
        logits = data @ W
        probs = full_class_probabilities(logits, xp=xp)
        idx = self._backend.to_numpy(xp.argmax(probs, axis=1))
        return np.asarray(idx, dtype=np.int64)

    # -- cost model ----------------------------------------------------------
    def flops_value(self) -> float:
        return softmax_objective_flops(self.X.shape[0], self.n_features, self.n_classes)

    def flops_gradient(self) -> float:
        return softmax_gradient_flops(self.X.shape[0], self.n_features, self.n_classes)

    def flops_value_and_gradient(self) -> float:
        return softmax_value_and_gradient_flops(
            self.X.shape[0], self.n_features, self.n_classes
        )

    def flops_hvp(self) -> float:
        return softmax_hvp_flops(self.X.shape[0], self.n_features, self.n_classes)

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    def minibatch(self, indices: np.ndarray) -> "SoftmaxCrossEntropy":
        """A new objective over a row subset, keeping this objective's scale
        semantics per-sample (i.e. the minibatch objective is a mean over the
        batch when this objective is a mean over its samples)."""
        indices = np.asarray(indices, dtype=np.int64)
        return SoftmaxCrossEntropy(
            self._rows(indices), self.y[indices], self.n_classes, scale="mean",
            backend=self._backend, precision=self.precision,
        )
