"""Multiclass softmax / cross-entropy objective (paper §5 and §6).

The model has ``C - 1`` weight vectors of dimension ``p`` (the reference class
``C - 1`` has an implicit zero logit), so the optimization variable is the
flat vector ``w`` of dimension ``d = (C - 1) * p``.  All exponentials are
evaluated with the log-sum-exp shift of §6, so the objective never overflows.

The Hessian of this loss has the block structure
``H = sum_i (diag(p_i) - p_i p_i^T) ⊗ (x_i x_i^T)`` and is positive
semi-definite; it is never materialized — only Hessian-vector products are
exposed (two GEMMs of the same shape as the gradient's).

All kernels run on the configured :mod:`repro.backend` (NumPy by default;
CuPy / Torch move the GEMMs to the GPU); predictions are always returned as
host NumPy arrays for the metrics layer.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend import BackendLike, get_backend
from repro.objectives.base import (
    Objective,
    ScaleLike,
    data_float_dtype,
    resolve_scale,
    validate_design_matrix,
)
from repro.objectives.numerics import (
    full_class_probabilities,
    log_sum_exp,
    softmax_probabilities,
)
from repro.utils.flops import (
    softmax_gradient_flops,
    softmax_hvp_flops,
    softmax_objective_flops,
)
from repro.utils.validation import check_labels


class SoftmaxCrossEntropy(Objective):
    """Cross-entropy loss for linear multiclass classification.

    Parameters
    ----------
    X:
        Design matrix ``(n_samples, n_features)`` — dense or CSR.
    y:
        Integer labels in ``{0, ..., n_classes - 1}``; class ``n_classes - 1``
        is the reference class with an implicit zero logit.
    n_classes:
        Number of classes ``C`` (inferred from ``y`` if omitted).
    scale:
        ``"mean"`` (default), ``"sum"``, or an explicit float multiplier; see
        :mod:`repro.objectives.base`.
    backend:
        Array backend name or instance (``None`` -> NumPy); the design matrix
        and the cached indicator move to the backend once, at construction.
    """

    def __init__(
        self,
        X,
        y,
        n_classes: Optional[int] = None,
        *,
        scale: ScaleLike = "mean",
        backend: BackendLike = None,
    ):
        self._backend = get_backend(backend)
        X = validate_design_matrix(X, self._backend)
        self.y, self.n_classes = check_labels(
            y, n_samples=X.shape[0], n_classes=n_classes
        )
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.n_classes}")
        self.X = self._backend.asarray_data(X)
        self.n_features = int(self.X.shape[1])
        self.dim = (self.n_classes - 1) * self.n_features
        self.scale = resolve_scale(scale, self.X.shape[0])
        # One-hot indicator over the non-reference classes, cached because it
        # is reused by every gradient evaluation.
        n = self.X.shape[0]
        c = self.n_classes - 1
        indicator = np.zeros((n, c))
        mask = self.y < c
        indicator[np.flatnonzero(mask), self.y[mask]] = 1.0
        # Follow the data's floating dtype so float32 problems stay float32.
        self._indicator = self._backend.asarray(
            indicator, dtype=data_float_dtype(self.X)
        )

    # -- weight reshaping -------------------------------------------------
    def _as_matrix(self, w):
        """Flat ``(C-1)*p`` vector -> ``(p, C-1)`` weight matrix."""
        w = self.check_weights(w)
        return w.reshape(self.n_classes - 1, self.n_features).T

    def _as_vector(self, W):
        return W.T.ravel()

    def _logits(self, W):
        return self.X @ W

    # -- objective API -----------------------------------------------------
    def value(self, w) -> float:
        xp = self._backend.xp
        W = self._as_matrix(w)
        logits = self._logits(W)
        lse = log_sum_exp(logits, include_zero=True, xp=xp)
        correct = xp.sum(logits * self._indicator, axis=1)
        return self.scale * self._backend.to_float(xp.sum(lse - correct))

    def gradient(self, w):
        xp = self._backend.xp
        W = self._as_matrix(w)
        logits = self._logits(W)
        P = softmax_probabilities(logits, include_zero=True, xp=xp)
        G = self.X.T @ (P - self._indicator)
        return self.scale * self._as_vector(G)

    def value_and_gradient(self, w) -> Tuple[float, np.ndarray]:
        xp = self._backend.xp
        W = self._as_matrix(w)
        logits = self._logits(W)
        lse = log_sum_exp(logits, include_zero=True, xp=xp)
        correct = xp.sum(logits * self._indicator, axis=1)
        value = self.scale * self._backend.to_float(xp.sum(lse - correct))
        P = softmax_probabilities(logits, include_zero=True, xp=xp)
        G = self.X.T @ (P - self._indicator)
        return value, self.scale * self._as_vector(G)

    def hvp(self, w, v):
        xp = self._backend.xp
        W = self._as_matrix(w)
        v = self._backend.as_vector(v, self.dim, name="v")
        V = v.reshape(self.n_classes - 1, self.n_features).T
        logits = self._logits(W)
        P = softmax_probabilities(logits, include_zero=True, xp=xp)
        U = self.X @ V
        PU = P * U
        T = PU - P * xp.sum(PU, axis=1, keepdims=True)
        out = self.X.T @ T
        return self.scale * self._as_vector(out)

    # -- prediction --------------------------------------------------------
    def predict_proba(self, w, X=None) -> np.ndarray:
        """Class probabilities ``(n, C)`` under weights ``w`` for ``X``
        (returned on the host)."""
        xp = self._backend.xp
        W = self._as_matrix(w)
        data = self.X if X is None else self._eval_matrix(X)
        logits = data @ W
        return self._backend.to_numpy(full_class_probabilities(logits, xp=xp))

    def predict(self, w, X=None) -> np.ndarray:
        """Most likely class per sample (host array)."""
        return np.argmax(self.predict_proba(w, X), axis=1)

    # -- cost model ----------------------------------------------------------
    def flops_value(self) -> float:
        return softmax_objective_flops(self.X.shape[0], self.n_features, self.n_classes)

    def flops_gradient(self) -> float:
        return softmax_gradient_flops(self.X.shape[0], self.n_features, self.n_classes)

    def flops_hvp(self) -> float:
        return softmax_hvp_flops(self.X.shape[0], self.n_features, self.n_classes)

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    def minibatch(self, indices: np.ndarray) -> "SoftmaxCrossEntropy":
        """A new objective over a row subset, keeping this objective's scale
        semantics per-sample (i.e. the minibatch objective is a mean over the
        batch when this objective is a mean over its samples)."""
        indices = np.asarray(indices, dtype=np.int64)
        return SoftmaxCrossEntropy(
            self._rows(indices), self.y[indices], self.n_classes, scale="mean",
            backend=self._backend,
        )
