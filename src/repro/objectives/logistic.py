"""Binary logistic regression objective.

Kept alongside :class:`~repro.objectives.softmax.SoftmaxCrossEntropy` because
binary problems (HIGGS) admit a ``p``-dimensional parameterization with a
cheaper Hessian-vector product; it is also the model CoCoA's dual formulation
targets.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.objectives.base import Objective, ScaleLike, resolve_scale
from repro.objectives.numerics import log1p_exp, sigmoid
from repro.utils.flops import gemv_flops
from repro.utils.validation import check_array, check_labels


class BinaryLogistic(Objective):
    """Logistic loss ``sum_i log(1 + exp(x_i @ w)) - y_i * (x_i @ w)``.

    Labels are ``{0, 1}``; the decision rule is ``sigmoid(x @ w) > 0.5``.
    """

    def __init__(self, X, y, *, scale: ScaleLike = "mean"):
        self.X = check_array(X, name="X", allow_sparse=True)
        self.y, n_classes = check_labels(y, n_samples=self.X.shape[0], n_classes=2)
        if n_classes != 2:
            raise ValueError("BinaryLogistic requires exactly two classes")
        self.n_features = int(self.X.shape[1])
        self.dim = self.n_features
        self.scale = resolve_scale(scale, self.X.shape[0])
        self._y_float = self.y.astype(np.float64)

    def _margins(self, w: np.ndarray) -> np.ndarray:
        return np.asarray(self.X @ w).ravel()

    def value(self, w: np.ndarray) -> float:
        w = self.check_weights(w)
        z = self._margins(w)
        return self.scale * float(np.sum(log1p_exp(z) - self._y_float * z))

    def gradient(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        z = self._margins(w)
        residual = sigmoid(z) - self._y_float
        return self.scale * np.asarray(self.X.T @ residual).ravel()

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        z = self._margins(w)
        value = self.scale * float(np.sum(log1p_exp(z) - self._y_float * z))
        residual = sigmoid(z) - self._y_float
        grad = self.scale * np.asarray(self.X.T @ residual).ravel()
        return value, grad

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.shape[0] != self.dim:
            raise ValueError(f"v has length {v.shape[0]}, expected {self.dim}")
        z = self._margins(w)
        s = sigmoid(z)
        d = s * (1.0 - s)
        Xv = np.asarray(self.X @ v).ravel()
        return self.scale * np.asarray(self.X.T @ (d * Xv)).ravel()

    def hessian_sqrt(self, w: np.ndarray) -> np.ndarray:
        """Square-root factor ``A(w)`` with ``H(w) = A(w)^T A(w)``.

        For logistic loss ``H = scale * X^T D X`` with
        ``D = diag(sigma(z)(1 - sigma(z)))``, so
        ``A = sqrt(scale) * sqrt(D) X`` (one row per sample).  Used by
        :class:`repro.solvers.newton_sketch.NewtonSketch`.
        """
        w = self.check_weights(w)
        z = self._margins(w)
        s = sigmoid(z)
        d = np.sqrt(self.scale * s * (1.0 - s))
        if hasattr(self.X, "multiply"):
            return np.asarray(self.X.multiply(d[:, None]).todense())
        return d[:, None] * self.X

    def minibatch(self, indices: np.ndarray) -> "BinaryLogistic":
        """A new objective over a row subset (mean-scaled over the batch)."""
        indices = np.asarray(indices, dtype=np.int64)
        return BinaryLogistic(self.X[indices], self.y[indices], scale="mean")

    def predict_proba(self, w: np.ndarray, X=None) -> np.ndarray:
        """Probability of class 1 for each sample."""
        w = self.check_weights(w)
        data = self.X if X is None else check_array(X, name="X", allow_sparse=True)
        return sigmoid(np.asarray(data @ w).ravel())

    def predict(self, w: np.ndarray, X=None) -> np.ndarray:
        return (self.predict_proba(w, X) >= 0.5).astype(np.int64)

    def flops_value(self) -> float:
        n, p = self.X.shape
        return gemv_flops(n, p) + 12.0 * n

    def flops_gradient(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 12.0 * n

    def flops_hvp(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 4.0 * n

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])
