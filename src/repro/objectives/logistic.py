"""Binary logistic regression objective.

Kept alongside :class:`~repro.objectives.softmax.SoftmaxCrossEntropy` because
binary problems (HIGGS) admit a ``p``-dimensional parameterization with a
cheaper Hessian-vector product; it is also the model CoCoA's dual formulation
targets.  Like the softmax objective it computes on a configurable
:mod:`repro.backend`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend import (
    BackendLike,
    apply_storage_precision,
    get_backend,
    host_matrix,
    resolve_precision,
)
from repro.objectives.base import (
    Objective,
    ScaleLike,
    data_float_dtype,
    resolve_scale,
    validate_design_matrix,
)
from repro.objectives.numerics import log1p_exp, sigmoid
from repro.utils.flops import gemv_flops
from repro.utils.validation import check_labels


class BinaryLogistic(Objective):
    """Logistic loss ``sum_i log(1 + exp(x_i @ w)) - y_i * (x_i @ w)``.

    Labels are ``{0, 1}``; the decision rule is ``sigmoid(x @ w) > 0.5``.
    """

    def __init__(
        self,
        X,
        y,
        *,
        scale: ScaleLike = "mean",
        backend: BackendLike = None,
        precision: Optional[str] = None,
    ):
        self._backend = get_backend(backend)
        self.precision = resolve_precision(precision)
        X = apply_storage_precision(X, self.precision)
        X = validate_design_matrix(X, self._backend)
        self.y, n_classes = check_labels(y, n_samples=X.shape[0], n_classes=2)
        if n_classes != 2:
            raise ValueError("BinaryLogistic requires exactly two classes")
        self.X = self._backend.asarray_data(X)
        self.n_features = int(self.X.shape[1])
        self.dim = self.n_features
        self.scale = resolve_scale(scale, self.X.shape[0])
        self._y_float = self._backend.asarray(
            self.y.astype(np.float64), dtype=data_float_dtype(self.X)
        )

    def _margins(self, w):
        return (self.X @ w).ravel()

    def value(self, w) -> float:
        xp = self._backend.xp
        w = self.check_weights(w)
        z = self._margins(w)
        return self.scale * self._backend.to_float(
            xp.sum(log1p_exp(z, xp=xp) - self._y_float * z)
        )

    def gradient(self, w):
        xp = self._backend.xp
        w = self.check_weights(w)
        z = self._margins(w)
        residual = sigmoid(z, xp=xp) - self._y_float
        return self.scale * (self.X.T @ residual).ravel()

    def value_and_gradient(self, w) -> Tuple[float, np.ndarray]:
        xp = self._backend.xp
        w = self.check_weights(w)
        z = self._margins(w)
        value = self.scale * self._backend.to_float(
            xp.sum(log1p_exp(z, xp=xp) - self._y_float * z)
        )
        residual = sigmoid(z, xp=xp) - self._y_float
        grad = self.scale * (self.X.T @ residual).ravel()
        return value, grad

    def hvp(self, w, v):
        xp = self._backend.xp
        w = self.check_weights(w)
        v = self._backend.as_vector(v, self.dim, name="v")
        z = self._margins(w)
        s = sigmoid(z, xp=xp)
        d = s * (1.0 - s)
        Xv = (self.X @ v).ravel()
        return self.scale * (self.X.T @ (d * Xv)).ravel()

    def hessian_sqrt(self, w) -> np.ndarray:
        """Square-root factor ``A(w)`` with ``H(w) = A(w)^T A(w)``.

        For logistic loss ``H = scale * X^T D X`` with
        ``D = diag(sigma(z)(1 - sigma(z)))``, so
        ``A = sqrt(scale) * sqrt(D) X`` (one row per sample).  Used by
        :class:`repro.solvers.newton_sketch.NewtonSketch`; computed on the
        host.
        """
        w = self.check_weights(w)
        z = self._backend.to_numpy(self._margins(w))
        s = sigmoid(z)
        d = np.sqrt(self.scale * s * (1.0 - s))  # repro-lint: ignore[RPR001] host-side by contract
        X = host_matrix(self.X)
        if hasattr(X, "multiply"):
            return np.asarray(X.multiply(d[:, None]).todense())
        return d[:, None] * self._backend.to_numpy(X)

    def minibatch(self, indices: np.ndarray) -> "BinaryLogistic":
        """A new objective over a row subset (mean-scaled over the batch)."""
        indices = np.asarray(indices, dtype=np.int64)
        rows = self._rows(indices)
        return BinaryLogistic(
            rows, self.y[indices], scale="mean", backend=self._backend,
            precision=self.precision,
        )

    def predict_proba(self, w, X=None) -> np.ndarray:
        """Probability of class 1 for each sample (host array)."""
        xp = self._backend.xp
        w = self.check_weights(w)
        data = self.X if X is None else self._eval_matrix(X)
        return self._backend.to_numpy(sigmoid((data @ w).ravel(), xp=xp))

    def predict(self, w, X=None) -> np.ndarray:
        return (self.predict_proba(w, X) >= 0.5).astype(np.int64)

    def flops_value(self) -> float:
        n, p = self.X.shape
        return gemv_flops(n, p) + 12.0 * n

    def flops_gradient(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 12.0 * n

    def flops_hvp(self) -> float:
        n, p = self.X.shape
        return 2.0 * gemv_flops(n, p) + 4.0 * n

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])
