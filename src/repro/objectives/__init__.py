"""Objective functions (finite-sum losses) and regularizers.

Every objective exposes value / gradient / Hessian-vector-product evaluation;
dense Hessians are only formed by :meth:`Objective.hessian` for small problems
(used in tests to validate the Hessian-free path).
"""

from repro.objectives.base import (
    Objective,
    RegularizedObjective,
    ScaledObjective,
    ProximallyAugmentedObjective,
    LinearlyPerturbedObjective,
)
from repro.objectives.hinge import BinarySquaredHinge, MulticlassSquaredHinge
from repro.objectives.numerics import log_sum_exp, softmax_probabilities
from repro.objectives.regularizers import (
    ElasticNetRegularizer,
    L2Regularizer,
    SmoothedL1Regularizer,
    ZeroRegularizer,
)
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.objectives.logistic import BinaryLogistic
from repro.objectives.least_squares import LeastSquares

__all__ = [
    "Objective",
    "RegularizedObjective",
    "ScaledObjective",
    "ProximallyAugmentedObjective",
    "LinearlyPerturbedObjective",
    "log_sum_exp",
    "softmax_probabilities",
    "L2Regularizer",
    "SmoothedL1Regularizer",
    "ElasticNetRegularizer",
    "ZeroRegularizer",
    "SoftmaxCrossEntropy",
    "BinaryLogistic",
    "BinarySquaredHinge",
    "MulticlassSquaredHinge",
    "LeastSquares",
]
