"""Objective-function interfaces.

An :class:`Objective` binds a loss to a particular dataset (or dataset shard)
and exposes value / gradient / Hessian-vector products of the *empirical*
objective as a function of the flat weight vector ``w``.

Scaling convention
------------------
``scale`` multiplies the raw per-sample loss sum:

* ``"mean"`` (default) — objective is the average loss, the form used for the
  single-machine problem and for reporting training objective values;
* ``"sum"`` — raw finite sum, as written in the paper's eq. (1);
* a float — arbitrary multiplier.  Distributed solvers give worker ``k`` the
  multiplier ``1 / n_total`` so that the *sum over workers* of local
  objectives equals the global mean objective.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, is_float_dtype as _is_float_dtype
from repro.utils.validation import check_positive

ScaleLike = Union[str, float]


def validate_design_matrix(X, backend: ArrayBackend, *, name: str = "X"):
    """Validate a design matrix at the API boundary, trusting device arrays.

    Host inputs — NumPy arrays, scipy sparse matrices, lists — get the full
    :func:`~repro.utils.validation.check_array` treatment (finiteness, shape,
    float coercion).  A host input that already carries a floating dtype keeps
    it (float32 data stays float32 through the whole pipeline); non-float
    inputs are promoted to float64.  Arrays already native to an *accelerator*
    backend are trusted as validated when first loaded, so construction never
    forces a device-to-host round-trip.
    """
    import scipy.sparse as sp

    from repro.utils.validation import check_array

    if isinstance(X, np.ndarray) or sp.issparse(X) or not backend.is_native(X):
        dtype = getattr(X, "dtype", None)
        target = dtype if dtype is not None and _is_float_dtype(dtype) else np.float64
        X = check_array(X, name=name, allow_sparse=True, dtype=target)
    return X


def data_float_dtype(X):
    """The floating dtype of a design matrix, or ``None`` when not exposed.

    Used so auxiliary caches (indicators, label vectors) follow the data's
    precision instead of hard-coding float64.
    """
    dtype = getattr(X, "dtype", None)
    if dtype is None or not _is_float_dtype(dtype):
        return None
    return dtype


def resolve_scale(scale: ScaleLike, n_samples: int) -> float:
    """Convert a ``scale`` specification into a float multiplier."""
    if isinstance(scale, str):
        if scale == "mean":
            return 1.0 / max(n_samples, 1)
        if scale == "sum":
            return 1.0
        raise ValueError(f"unknown scale {scale!r}; expected 'mean', 'sum' or a float")
    return check_positive(scale, name="scale")


class Objective(ABC):
    """Abstract smooth objective ``w -> R`` with Hessian-vector products.

    Concrete data-bound objectives accept a ``backend=`` argument and store it
    as ``self._backend``; composite objectives delegate :attr:`backend` to
    their inner objective, so an entire objective tree computes on one array
    backend (see :mod:`repro.backend`).
    """

    #: dimension of the flat weight vector
    dim: int

    #: array backend set by concrete objectives at construction (their
    #: ``backend=None`` resolves the *session default* at that moment);
    #: ``None`` here means "never set", and :attr:`backend` then falls back
    #: to plain NumPy for determinism
    _backend: Optional[ArrayBackend] = None

    @property
    def backend(self) -> ArrayBackend:
        """The array backend this objective computes on."""
        if self._backend is None:
            return get_backend("numpy")
        return self._backend

    def _adopt_backend(self, backend: Optional[ArrayBackend]) -> None:
        """Inherit ``backend`` unless one was set explicitly (used by
        composites to push the data-bound loss's backend into data-free
        terms like regularizers)."""
        if self._backend is None and backend is not None:
            self._backend = backend

    @abstractmethod
    def value(self, w: np.ndarray) -> float:
        """Objective value at ``w``."""

    @abstractmethod
    def gradient(self, w: np.ndarray) -> np.ndarray:
        """Gradient at ``w`` (same shape as ``w``)."""

    @abstractmethod
    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Hessian-vector product ``H(w) @ v``."""

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        """Value and gradient together (overridden where sharing work helps)."""
        return self.value(w), self.gradient(w)

    def value_and_gradient_and_hvp_operator(self, w: np.ndarray):
        """Value, gradient, and a Hessian operator sharing one iterate's work.

        Returns ``(value, gradient, operator)`` where ``operator`` is a
        :class:`~repro.linalg.operators.LinearOperator` computing
        ``H(w) @ v``.  This is the fused entry point for Newton-type solvers:
        objectives with per-iterate caches (the softmax computes
        logits/log-sum-exp/softmax once per distinct ``w``) serve the value,
        the gradient *and* every HVP of the subsequent CG solve from that one
        forward pass.  The operator also exposes ``matmat`` (block-CG batched
        right-hand sides) via :meth:`hvp_mat`.

        The operator is bound to this exact iterate object; it must not be
        applied after ``w`` is mutated in place (solvers here never do).
        """
        from repro.linalg.operators import BatchedHessianOperator

        value, grad = self.value_and_gradient(w)
        return value, grad, BatchedHessianOperator(self, w)

    def hvp_mat(self, w: np.ndarray, V: np.ndarray) -> np.ndarray:
        """Hessian-matrix product ``H(w) @ V`` for a ``(dim, s)`` block ``V``.

        The generic implementation loops :meth:`hvp` over columns; data-bound
        objectives override it to batch all ``s`` products into single GEMMs
        (one ``(n, p) @ (p, c*s)`` product instead of ``s`` smaller ones),
        which is what makes block CG one-GEMM-per-iteration.
        """
        xp = self.backend.xp
        cols = [self.hvp(w, V[:, j]).reshape(-1, 1) for j in range(V.shape[1])]
        return xp.hstack(cols)

    def hessian(self, w: np.ndarray, *, block_size: int = 32) -> np.ndarray:
        """Dense Hessian at ``w`` built from batched Hessian-matrix products.

        Intended for small problems (tests, condition-number studies); cost is
        ``dim`` Hessian-vector products, issued in blocks of ``block_size``
        basis vectors so objectives with a batched :meth:`hvp_mat` (the
        softmax) pay two GEMMs per block instead of per column.
        """
        d = self.dim
        backend = self.backend
        H = np.empty((d, d))  # repro-lint: ignore[RPR001] host-side by contract
        for start in range(0, d, block_size):
            stop = min(start + block_size, d)
            E = np.zeros((d, stop - start))  # repro-lint: ignore[RPR001] host-side by contract
            E[start:stop] = np.eye(stop - start)  # repro-lint: ignore[RPR001] host-side by contract
            H[:, start:stop] = backend.to_numpy(
                self.hvp_mat(w, backend.asarray(E))
            )
        return 0.5 * (H + H.T)

    def initial_point(self) -> np.ndarray:
        """Default starting iterate (all zeros, on this objective's backend).

        Follows the design matrix's floating dtype where one is exposed, so
        native float32 problems start from float32 zeros instead of forcing a
        float64 promotion on the first matmul.
        """
        dtype = getattr(getattr(self, "X", None), "dtype", None)
        if dtype is not None and not _is_float_dtype(dtype):
            dtype = None
        return self.backend.zeros(self.dim, dtype=dtype)

    def check_weights(self, w: np.ndarray) -> np.ndarray:
        return self.backend.as_vector(w, self.dim, name="weight vector")

    def _eval_matrix(self, X):
        """Backend-converted evaluation matrix for ``predict``/``predict_proba``
        with an explicit ``X``, cached by identity on non-NumPy backends.

        The per-epoch trace recorder evaluates accuracy on the same train/test
        matrices every epoch; without this cache each evaluation re-transfers
        the full matrix to the device on cupy/torch backends.  The cache keys
        on object identity (``X is cached``), holds a single entry (train and
        test matrices live on separate objectives), and assumes the caller
        does not mutate ``X`` in place between evaluations.  The NumPy backend
        skips the cache — conversion is free there.
        """
        from repro.utils.validation import check_array

        if self.backend.name != "numpy":
            cached = getattr(self, "_eval_matrix_cache", None)
            if cached is not None and cached[0] is X:
                return cached[1]
        data = self.backend.asarray_data(
            check_array(X, name="X", allow_sparse=True)
        )
        if self.backend.name != "numpy":
            self._eval_matrix_cache = (X, data)
        return data

    def _rows(self, indices: np.ndarray):
        """Row subset of this objective's design matrix (for minibatching),
        with a clear error for backend sparse formats that cannot be indexed."""
        try:
            return self.X[indices]
        except TypeError as exc:
            raise NotImplementedError(
                f"backend {self.backend.name!r} does not support row "
                "subsetting of sparse design matrices"
            ) from exc

    # FLOP estimates (overridden by concrete objectives); the distributed
    # runtime uses them to convert work into modelled compute time.
    def flops_value(self) -> float:
        return 0.0

    def flops_gradient(self) -> float:
        return 0.0

    def flops_hvp(self) -> float:
        return 0.0

    def flops_value_and_gradient(self) -> float:
        """FLOPs of one fused ``value_and_gradient`` call.

        Defaults to the sum of the separate calls; objectives whose fused
        path shares work (the softmax computes the logits GEMM and the
        softmax normalization once) override this so modelled engine times
        track what the kernels actually execute.
        """
        return self.flops_value() + self.flops_gradient()

    @property
    def n_samples(self) -> int:
        """Number of samples behind this objective (0 for pure penalties)."""
        return 0


class RegularizedObjective(Objective):
    """Sum of a data-fit objective and a regularizer: ``F(w) = L(w) + R(w)``."""

    def __init__(self, loss: Objective, regularizer: Objective):
        if loss.dim != regularizer.dim:
            raise ValueError(
                f"loss dim {loss.dim} != regularizer dim {regularizer.dim}"
            )
        self.loss = loss
        self.regularizer = regularizer
        # Data-free regularizers inherit the loss's backend so the whole tree
        # computes on one device.  The *resolved* backend is used so wrapper
        # losses (ScaledObjective, CountingObjective, ...) that delegate their
        # backend propagate it too.
        regularizer._adopt_backend(loss.backend)
        self.dim = loss.dim

    @property
    def backend(self) -> ArrayBackend:
        return self.loss.backend

    def initial_point(self) -> np.ndarray:
        return self.loss.initial_point()

    def value(self, w: np.ndarray) -> float:
        w = self.check_weights(w)
        return self.loss.value(w) + self.regularizer.value(w)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return self.loss.gradient(w) + self.regularizer.gradient(w)

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        lv, lg = self.loss.value_and_gradient(w)
        rv, rg = self.regularizer.value_and_gradient(w)
        return lv + rv, lg + rg

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return self.loss.hvp(w, v) + self.regularizer.hvp(w, v)

    def hvp_mat(self, w: np.ndarray, V: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return self.loss.hvp_mat(w, V) + self.regularizer.hvp_mat(w, V)

    def flops_value(self) -> float:
        return self.loss.flops_value() + self.regularizer.flops_value()

    def flops_value_and_gradient(self) -> float:
        return (
            self.loss.flops_value_and_gradient()
            + self.regularizer.flops_value_and_gradient()
        )

    def flops_gradient(self) -> float:
        return self.loss.flops_gradient() + self.regularizer.flops_gradient()

    def flops_hvp(self) -> float:
        return self.loss.flops_hvp() + self.regularizer.flops_hvp()

    def minibatch(self, indices: np.ndarray) -> "RegularizedObjective":
        """Unbiased mini-batch version (requires the loss to support it)."""
        if not hasattr(self.loss, "minibatch"):
            raise AttributeError("underlying loss does not support minibatching")
        return RegularizedObjective(self.loss.minibatch(indices), self.regularizer)

    @property
    def n_samples(self) -> int:
        return self.loss.n_samples


class ScaledObjective(Objective):
    """``factor * f(w)`` — rescales an existing objective.

    Distributed baselines use this to convert a worker's "global contribution"
    loss (scaled by ``1 / n_total``) into the *local mean* loss GIANT/DANE
    solve (scaled by ``1 / n_local``), without re-binding the data.
    """

    def __init__(self, base: Objective, factor: float):
        self.base = base
        self.factor = float(factor)
        if not np.isfinite(self.factor):
            raise ValueError(f"factor must be finite, got {factor}")
        self.dim = base.dim

    @property
    def backend(self) -> ArrayBackend:
        return self.base.backend

    def initial_point(self) -> np.ndarray:
        return self.base.initial_point()

    def value(self, w: np.ndarray) -> float:
        return self.factor * self.base.value(w)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        return self.factor * self.base.gradient(w)

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        v, g = self.base.value_and_gradient(w)
        return self.factor * v, self.factor * g

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        return self.factor * self.base.hvp(w, v)

    def hvp_mat(self, w: np.ndarray, V: np.ndarray) -> np.ndarray:
        return self.factor * self.base.hvp_mat(w, V)

    def flops_value(self) -> float:
        return self.base.flops_value()

    def flops_value_and_gradient(self) -> float:
        return self.base.flops_value_and_gradient()

    def flops_gradient(self) -> float:
        return self.base.flops_gradient()

    def flops_hvp(self) -> float:
        return self.base.flops_hvp()

    @property
    def n_samples(self) -> int:
        return self.base.n_samples


class ProximallyAugmentedObjective(Objective):
    """``f(w) + (rho / 2) * ||w - center||^2`` — the ADMM local subproblem.

    This is eq. (6a) of the paper rewritten with ``center = z + y / rho``; the
    worker-side Newton solver minimizes exactly this object.
    """

    def __init__(self, base: Objective, rho: float, center: np.ndarray):
        self.base = base
        self.rho = check_positive(rho, name="rho")
        self.center = base.backend.as_vector(center, base.dim, name="center")
        self.dim = base.dim

    @property
    def backend(self) -> ArrayBackend:
        return self.base.backend

    def value(self, w: np.ndarray) -> float:
        w = self.check_weights(w)
        diff = w - self.center
        return self.base.value(w) + 0.5 * self.rho * float(diff @ diff)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return self.base.gradient(w) + self.rho * (w - self.center)

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        v, g = self.base.value_and_gradient(w)
        diff = w - self.center
        return v + 0.5 * self.rho * float(diff @ diff), g + self.rho * diff

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return self.base.hvp(w, v) + self.rho * v

    def hvp_mat(self, w: np.ndarray, V: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        return self.base.hvp_mat(w, V) + self.rho * V

    def flops_value(self) -> float:
        return self.base.flops_value() + 3.0 * self.dim

    def flops_value_and_gradient(self) -> float:
        # The fused override computes diff / value term / gradient term once.
        return self.base.flops_value_and_gradient() + 4.0 * self.dim

    def flops_gradient(self) -> float:
        return self.base.flops_gradient() + 3.0 * self.dim

    def flops_hvp(self) -> float:
        return self.base.flops_hvp() + 2.0 * self.dim

    @property
    def n_samples(self) -> int:
        return self.base.n_samples


class LinearlyPerturbedObjective(Objective):
    """``f(w) - b @ w + (mu / 2) * ||w - center||^2``.

    The DANE/AIDE local subproblem: the base local loss perturbed by a linear
    term (built from local and global gradients) plus a proximal term.
    """

    def __init__(
        self,
        base: Objective,
        linear: np.ndarray,
        mu: float = 0.0,
        center: Optional[np.ndarray] = None,
    ):
        self.base = base
        self.linear = base.backend.as_vector(linear, base.dim, name="linear term")
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        self.mu = float(mu)
        if center is None:
            center = base.backend.zeros(
                base.dim, dtype=getattr(self.linear, "dtype", None)
            )
        self.center = base.backend.as_vector(center, base.dim, name="center")
        self.dim = base.dim

    @property
    def backend(self) -> ArrayBackend:
        return self.base.backend

    def value(self, w: np.ndarray) -> float:
        w = self.check_weights(w)
        out = self.base.value(w) - float(self.linear @ w)
        if self.mu > 0:
            diff = w - self.center
            out += 0.5 * self.mu * float(diff @ diff)
        return out

    def gradient(self, w: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        g = self.base.gradient(w) - self.linear
        if self.mu > 0:
            g = g + self.mu * (w - self.center)
        return g

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        w = self.check_weights(w)
        v, g = self.base.value_and_gradient(w)
        out_v = v - float(self.linear @ w)
        out_g = g - self.linear
        if self.mu > 0:
            diff = w - self.center
            out_v += 0.5 * self.mu * float(diff @ diff)
            out_g = out_g + self.mu * diff
        return out_v, out_g

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        out = self.base.hvp(w, v)
        if self.mu > 0:
            out = out + self.mu * v
        return out

    def hvp_mat(self, w: np.ndarray, V: np.ndarray) -> np.ndarray:
        w = self.check_weights(w)
        out = self.base.hvp_mat(w, V)
        if self.mu > 0:
            out = out + self.mu * V
        return out

    def flops_value(self) -> float:
        return self.base.flops_value() + 4.0 * self.dim

    def flops_value_and_gradient(self) -> float:
        # value+gradient on the same iterate share the base's forward work
        # through its per-iterate cache; the perturbation terms are cheap.
        return self.base.flops_value_and_gradient() + 8.0 * self.dim

    def flops_gradient(self) -> float:
        return self.base.flops_gradient() + 4.0 * self.dim

    def flops_hvp(self) -> float:
        return self.base.flops_hvp() + 2.0 * self.dim

    def minibatch(self, indices: np.ndarray) -> "LinearlyPerturbedObjective":
        """Unbiased mini-batch version: the stochastic part is the base loss;
        the linear and proximal terms are deterministic and kept in full."""
        if not hasattr(self.base, "minibatch"):
            raise AttributeError("underlying objective does not support minibatching")
        return LinearlyPerturbedObjective(
            self.base.minibatch(indices), self.linear, self.mu, self.center
        )

    @property
    def n_samples(self) -> int:
        return self.base.n_samples
