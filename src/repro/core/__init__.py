"""Facade for the paper's primary contribution.

``repro.core`` re-exports the pieces a downstream user needs to run
Newton-ADMM end to end: the solver itself, the local Newton-CG sub-solver, the
penalty policies, and the simulated cluster it runs on.  The full library
surface lives in the individual subpackages.
"""

from repro.admm.newton_admm import NewtonADMM
from repro.admm.penalty import (
    FixedPenalty,
    ResidualBalancing,
    SpectralPenalty,
    make_penalty_policy,
)
from repro.admm.consensus import consensus_z_update, admm_residuals
from repro.distributed.cluster import SimulatedCluster
from repro.solvers.newton_cg import NewtonCG

__all__ = [
    "NewtonADMM",
    "NewtonCG",
    "SimulatedCluster",
    "SpectralPenalty",
    "ResidualBalancing",
    "FixedPenalty",
    "make_penalty_policy",
    "consensus_z_update",
    "admm_residuals",
]
