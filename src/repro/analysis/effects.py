"""Effect model for the schedule IR: what each plan step reads and writes.

Every step of a :class:`~repro.distributed.schedule.RoundPlan` moves data
through the execution context (``ctx[key]``) and, for local steps, through
per-worker state (``worker.state`` / ``get_vector`` / ``set_vector``).  The
static verifier and the hoist proposer need those footprints *before*
execution, so this module computes an :class:`Effects` record per step:

* **Declared**: a step built with ``effects={"reads": [...], "writes":
  [...]}`` states its footprint explicitly.  Worker-state channels use
  ``worker:<key>`` pseudo-keys (``worker:x`` for ``get_vector("x")`` /
  ``set_vector("x", ...)`` / ``state["x"]``).  A declaration is trusted and
  marks the footprint *exact*.

* **Inferred**: otherwise the thunk's source is parsed (``ast`` over the
  module file located via ``fn.__code__``) and context subscripts
  (``ctx["k"]`` loads/stores), ``ctx.get("k")`` calls and worker-state
  channels are collected.  String keys held in closure cells, defaults or
  module globals resolve through the function object.  Anything the walk
  cannot account for — ``ctx`` escaping into a call, a non-literal key, a
  missing source file — degrades the record to *inexact*, and the verifier
  treats an inexact step conservatively.

The binding write (``ctx[step.name] = result``) performed by the executor is
part of every named step's effects regardless of what the thunk does.
"""

from __future__ import annotations

import ast
import linecache
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.distributed.schedule import (
    Barrier,
    Collective,
    DynamicStep,
    GlobalStep,
    Join,
    LocalStep,
    Repeat,
    Step,
)

#: prefix for per-worker state pseudo-keys in reads/writes sets
WORKER_PREFIX = "worker:"

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class Effects:
    """Static footprint of one plan step over context and worker state.

    ``reads``/``writes`` hold context keys plus ``worker:<key>`` pseudo-keys.
    ``ctx_exact`` means the context footprint is complete (no unanalyzable
    use of the context object); ``state_exact`` the same for worker state.
    The verifier's race rules only need ``ctx_exact``; reordering proposals
    (hoist) require both.
    """

    reads: FrozenSet[str] = _EMPTY
    writes: FrozenSet[str] = _EMPTY
    ctx_exact: bool = True
    state_exact: bool = True

    @property
    def exact(self) -> bool:
        return self.ctx_exact and self.state_exact

    def ctx_reads(self) -> FrozenSet[str]:
        return frozenset(k for k in self.reads if not k.startswith(WORKER_PREFIX))

    def ctx_writes(self) -> FrozenSet[str]:
        return frozenset(k for k in self.writes if not k.startswith(WORKER_PREFIX))

    def merge(self, other: "Effects") -> "Effects":
        return Effects(
            reads=self.reads | other.reads,
            writes=self.writes | other.writes,
            ctx_exact=self.ctx_exact and other.ctx_exact,
            state_exact=self.state_exact and other.state_exact,
        )

    def describe(self) -> dict:
        return {
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "exact": self.exact,
        }


#: the footprint of a step nothing is known about
UNKNOWN_EFFECTS = Effects(ctx_exact=False, state_exact=False)


def declared_effects(spec: Dict[str, Any]) -> Effects:
    """Normalize a step's ``effects={"reads": [...], "writes": [...]}``.

    A declaration is an exact contract: the step touches these keys and no
    others.  Unknown dict keys raise — a typoed ``"write"`` must not silently
    declare an empty footprint.
    """
    extra = set(spec) - {"reads", "writes"}
    if extra:
        raise ValueError(
            f"unknown effect spec key(s) {sorted(extra)}; expected 'reads'/'writes'"
        )

    def _keys(value: Any) -> FrozenSet[str]:
        if value is None:
            return _EMPTY
        if isinstance(value, str):
            raise ValueError(
                f"effect spec lists key names, got bare string {value!r}"
            )
        keys = list(value)
        bad = [k for k in keys if not isinstance(k, str)]
        if bad:
            raise ValueError(f"effect spec keys must be strings, got {bad!r}")
        return frozenset(keys)

    return Effects(reads=_keys(spec.get("reads")), writes=_keys(spec.get("writes")))


# ---------------------------------------------------------------------------
# AST inference
# ---------------------------------------------------------------------------
_ast_cache: Dict[str, Optional[ast.Module]] = {}


_FunctionNode = Union[ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef]


def _module_tree(filename: str) -> Optional[ast.Module]:
    if filename in _ast_cache:
        return _ast_cache[filename]
    lines = linecache.getlines(filename)
    parsed: Optional[ast.Module] = None
    if lines:
        try:
            parsed = ast.parse("".join(lines), filename=filename)
        except SyntaxError:  # pragma: no cover - source newer than bytecode
            parsed = None
    _ast_cache[filename] = parsed
    return parsed


def _positional_params(node: _FunctionNode) -> Tuple[str, ...]:
    args = node.args
    return tuple(a.arg for a in list(args.posonlyargs) + list(args.args))


def _find_function_node(fn: Callable[..., Any]) -> Optional[_FunctionNode]:
    """Locate ``fn``'s def/lambda node in its module AST, or ``None``.

    Matched by first line number plus positional parameter names; an
    ambiguous line (two lambdas with identical signatures on one line)
    returns ``None`` so inference stays conservative.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    tree = _module_tree(code.co_filename)
    if tree is None:
        return None
    params = tuple(code.co_varnames[: code.co_argcount])
    matches: List[_FunctionNode] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.lineno == code.co_firstlineno and _positional_params(node) == params:
                matches.append(node)
    if len(matches) != 1:
        return None
    return matches[0]


def _resolve_str(fn: Callable[..., Any], name: str) -> Optional[str]:
    """Resolve a variable name in ``fn``'s environment to a string constant."""
    code = fn.__code__
    freevars = code.co_freevars
    if name in freevars:
        closure = fn.__closure__ or ()
        try:
            value = closure[freevars.index(name)].cell_contents
        except (IndexError, ValueError):
            return None
        return value if isinstance(value, str) else None
    defaults = fn.__defaults__ or ()
    if defaults:
        params = code.co_varnames[: code.co_argcount]
        by_name = dict(zip(params[len(params) - len(defaults):], defaults))
        if name in by_name:
            value = by_name[name]
            return value if isinstance(value, str) else None
    value = getattr(fn, "__globals__", {}).get(name)
    return value if isinstance(value, str) else None


#: worker methods that read / write a named state vector
_WORKER_READERS = ("get_vector",)
_WORKER_WRITERS = ("set_vector",)


class _EffectWalker(ast.NodeVisitor):
    """Collect ctx/worker footprints from a thunk body.

    The walker special-cases the recognized access shapes and *consumes*
    them (their sub-trees are visited selectively), so that any leftover
    bare reference to the context or worker name — aliasing, passing into a
    call — is seen by :meth:`visit_Name` and poisons exactness.
    """

    def __init__(self, fn: Callable[..., Any], ctx_name: Optional[str], worker_name: Optional[str]):
        self.fn = fn
        self.ctx_name = ctx_name
        self.worker_name = worker_name
        self.reads: set = set()
        self.writes: set = set()
        self.ctx_exact = True
        self.state_exact = True

    # -- helpers -----------------------------------------------------------
    def _key_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return _resolve_str(self.fn, node.id)
        return None

    def _is_ctx(self, node: ast.expr) -> bool:
        return (
            self.ctx_name is not None
            and isinstance(node, ast.Name)
            and node.id == self.ctx_name
        )

    def _is_worker(self, node: ast.expr) -> bool:
        return (
            self.worker_name is not None
            and isinstance(node, ast.Name)
            and node.id == self.worker_name
        )

    def _record(self, key: Optional[str], *, store: bool, state: bool) -> None:
        if key is None:
            if state:
                self.state_exact = False
            else:
                self.ctx_exact = False
            return
        full = WORKER_PREFIX + key if state else key
        (self.writes if store else self.reads).add(full)

    # -- recognized shapes -------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        store = isinstance(node.ctx, (ast.Store, ast.Del))
        if self._is_ctx(node.value):
            # ctx["k"] / ctx[k] — load, store or del
            self._record(self._key_of(node.slice), store=store, state=False)
            self.visit(node.slice)
            return
        if (
            isinstance(node.value, ast.Attribute)
            and node.value.attr == "state"
            and self._is_worker(node.value.value)
        ):
            # worker.state["k"]
            self._record(self._key_of(node.slice), store=store, state=True)
            self.visit(node.slice)
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if self._is_ctx(func.value) and func.attr == "get":
                # ctx.get("k"[, default]) — a read, same contract as indexing
                key = self._key_of(node.args[0]) if node.args else None
                self._record(key, store=False, state=False)
                for extra in node.args[1:]:
                    self.visit(extra)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
            if self._is_worker(func.value) and func.attr in (
                _WORKER_READERS + _WORKER_WRITERS
            ):
                # worker.get_vector("k") / worker.set_vector("k", v)
                key = self._key_of(node.args[0]) if node.args else None
                self._record(
                    key, store=func.attr in _WORKER_WRITERS, state=True
                )
                for extra in node.args[1:]:
                    self.visit(extra)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
            if (
                isinstance(func.value, ast.Attribute)
                and func.value.attr == "state"
                and self._is_worker(func.value.value)
            ):
                # worker.state.get("k") and friends: reads are precise,
                # anything else on the dict is an unknown state effect.
                if func.attr == "get" and node.args:
                    self._record(self._key_of(node.args[0]), store=False, state=True)
                    for extra in node.args[1:]:
                        self.visit(extra)
                    return
                self.state_exact = False
                for arg in node.args:
                    self.visit(arg)
                return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_worker(node.value):
            # Plain attribute access on the worker (worker.objective.…,
            # worker.data, worker.n_samples) is treated as a pure read of
            # static worker structure — not a state channel.  Assigning to
            # a worker attribute, however, is an unknown state effect.
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self.state_exact = False
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # A bare ctx/worker reference that no recognized shape consumed:
        # the object escapes (aliased, passed to a call) and the footprint
        # can no longer be proven complete.
        if self._is_ctx(node):
            self.ctx_exact = False
        elif self._is_worker(node):
            self.state_exact = False


def infer_effects(
    fn: Callable[..., Any],
    *,
    ctx_param: Optional[int] = None,
    worker_param: Optional[int] = None,
) -> Effects:
    """Infer a thunk's effect footprint from its source.

    ``ctx_param``/``worker_param`` give the positional index of the context
    and worker arguments (``None`` = the thunk has no such argument).
    Returns :data:`UNKNOWN_EFFECTS` when the source cannot be located.
    """
    code = getattr(fn, "__code__", None)
    if code is None:  # builtins, functools.partial, callables
        return UNKNOWN_EFFECTS
    node = _find_function_node(fn)
    if node is None:
        return UNKNOWN_EFFECTS
    params = tuple(code.co_varnames[: code.co_argcount])

    def _param(index: Optional[int]) -> Optional[str]:
        if index is None or index >= len(params):
            return None
        return params[index]

    walker = _EffectWalker(fn, _param(ctx_param), _param(worker_param))
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        walker.visit(stmt)
    return Effects(
        reads=frozenset(walker.reads),
        writes=frozenset(walker.writes),
        ctx_exact=walker.ctx_exact,
        state_exact=walker.state_exact,
    )


# ---------------------------------------------------------------------------
# Per-step dispatch
# ---------------------------------------------------------------------------
def step_effects(step: Step) -> Effects:
    """Resolve the effect footprint of one plan step.

    Declared ``effects=`` win over inference; the executor's binding write
    (``ctx[step.name] = ...``) is added either way.  :class:`Join` /
    :class:`Barrier` have empty footprints; a :class:`Repeat` merges its
    body (loop-carried dependencies collapse into one set).  A
    :class:`DynamicStep` without a declaration is fully unknown — it may
    read or write anything.
    """
    if isinstance(step, (Join, Barrier)):
        return Effects()
    if isinstance(step, Repeat):
        merged = Effects()
        for inner in step.steps:
            merged = merged.merge(step_effects(inner))
        return merged

    declared = getattr(step, "effects", None)
    if declared is not None:
        base = declared_effects(declared)
    elif isinstance(step, LocalStep):
        base = infer_effects(step.fn, ctx_param=1, worker_param=0)
    elif isinstance(step, Collective):
        base = infer_effects(step.payload, ctx_param=0)
    elif isinstance(step, GlobalStep):
        base = infer_effects(step.fn, ctx_param=0)
    elif isinstance(step, DynamicStep):
        base = UNKNOWN_EFFECTS
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown plan step {step!r}")

    name = getattr(step, "name", None)
    if name:
        base = Effects(
            reads=base.reads,
            writes=base.writes | {name},
            ctx_exact=base.ctx_exact,
            state_exact=base.state_exact,
        )
    return base


def plan_effects(steps: Iterable[Step]) -> List[Tuple[Step, Effects]]:
    """Resolve effects for a flattened step sequence (verifier input)."""
    return [(step, step_effects(step)) for step in steps]
