"""Static plan verification: a dataflow walk over ``RoundPlan.flattened()``.

:func:`verify_plan` replays a plan's step sequence symbolically, tracking the
set of written context keys and the set of in-flight overlapped transfers
exactly the way the executor's :class:`_PlanContext` guard tracks them at
runtime, and emits structured :class:`Finding` records with stable rule ids:

========  ========  ====================================================
rule      severity  meaning
========  ========  ====================================================
PLN001    error     overlap race: a step reads a key whose transfer is
                    still in flight (the runtime guard would raise)
PLN002    error     unjoined overlap: the plan ends with transfers in
                    flight (the executor raises after the last step)
PLN003    warning   dead Join: nothing was in flight (runtime no-op)
PLN004    error     static round/collective count disagrees with the
                    plan's declared counts
PLN005    warning   a degrade-policy plan whose downstream steps never
                    consume ``ctx["alive_workers"]`` — survivors are
                    silently reweighted by nobody
PLN006    error     quorum unsatisfiable under the profile's fault spec
                    (stall forever, or degrade to zero survivors);
                    warning for policies that merely abort or erode
PLN007    warning   ``joint_with_previous`` on a collective with no
                    preceding collective in the same epoch
PLN008    error     a step with an unknown footprint runs while a
                    transfer is in flight (cannot prove it safe)
PLN009    warning   a step reads a key that no earlier step wrote and
                    the initial context does not provide
========  ========  ====================================================

``report.ok`` is "no error-severity findings" and is calibrated to agree
with the runtime in-flight guard: a plan whose steps have exact footprints
is ``ok`` iff :func:`execute_plan` would not raise a
:class:`ScheduleError` for a schedule-structure reason (the differential
hypothesis suite in ``tests/test_analysis_properties.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.effects import plan_effects
from repro.distributed.schedule import (
    Barrier,
    Collective,
    DynamicStep,
    Join,
    RoundPlan,
    Step,
)

#: rule id -> (severity, one-line description) — the catalogue rendered in
#: docs/analysis.md and ``PlanReport.describe()``
PLAN_RULES: Dict[str, Tuple[str, str]] = {
    "PLN001": ("error", "use-before-Join: step reads an in-flight overlapped key"),
    "PLN002": ("error", "plan ends with overlapped transfer(s) still in flight"),
    "PLN003": ("warning", "dead Join: no transfer in flight at this point"),
    "PLN004": ("error", "declared round/collective count disagrees with the steps"),
    "PLN005": ("warning", "degrade policy but no step consumes ctx['alive_workers']"),
    "PLN006": ("error", "quorum unsatisfiable under the profile's fault spec"),
    "PLN007": ("warning", "joint_with_previous with no preceding collective"),
    "PLN008": ("error", "unknown step footprint while a transfer is in flight"),
    "PLN009": ("warning", "step reads a key no earlier step wrote"),
}

ERROR, WARNING = "error", "warning"


@dataclass(frozen=True)
class Finding:
    """One structured verification finding."""

    rule: str
    severity: str
    message: str
    step_index: Optional[int] = None
    step_name: Optional[str] = None

    def describe(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "step_index": self.step_index,
            "step_name": self.step_name,
        }


@dataclass
class PlanReport:
    """Outcome of one :func:`verify_plan` call."""

    plan_name: str
    findings: List[Finding] = field(default_factory=list)
    #: recomputed static round count (``None`` for dynamic plans)
    rounds: Optional[int] = None
    #: per flattened step: ``(kind, name, effects.describe())``
    step_effects: List[dict] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when the plan is statically legal (no error findings)."""
        return not self.errors

    def reason(self) -> str:
        """Human-readable summary of the error findings (empty when ok)."""
        return "; ".join(f"{f.rule}: {f.message}" for f in self.errors)

    def describe(self) -> dict:
        return {
            "plan": self.plan_name,
            "ok": self.ok,
            "rounds": self.rounds,
            "findings": [f.describe() for f in self.findings],
            "steps": self.step_effects,
        }


def _step_kind(step: Step) -> str:
    return type(step).__name__.lower().replace("step", "")


def _fault_findings(plan: RoundPlan, profile: Any) -> List[Finding]:
    """PLN006: can the plan's sync points ever be satisfied under faults?

    Works off the profile's :class:`FailureModel` introspectively: workers
    with a deterministic crash and no ``restart_after`` never return; an
    MTBF process with no ``restart_after`` eventually kills everyone.
    """
    faults = getattr(profile, "faults", None)
    if faults is None or not getattr(faults, "active", False):
        return []
    findings: List[Finding] = []
    n_workers = int(getattr(profile, "n_workers", 0) or 0)

    restart = getattr(faults, "restart_after", None)
    deterministic = set()
    if getattr(faults, "crash_at_time", None):
        deterministic.update(dict(faults.crash_at_time))
    if getattr(faults, "crash_at_round", None):
        deterministic.update(dict(faults.crash_at_round))
    groups = getattr(faults, "groups", None)
    if groups and getattr(faults, "correlation", 0.0):
        # A correlated co-crash can take a whole group down with the seed
        # crash; treat group members of deterministic crashers as at-risk
        # but not certainly-permanent (the draw is probabilistic).
        pass
    permanent = deterministic if restart is None else set()
    mtbf_no_restart = bool(getattr(faults, "mtbf", None)) and restart is None

    policies = {plan.on_failure}
    for step in plan.flattened():
        if isinstance(step, Collective) and step.on_failure:
            policies.add(step.on_failure)

    if "stall" in policies and (permanent or mtbf_no_restart):
        cause = (
            f"worker(s) {sorted(permanent)} crash deterministically"
            if permanent
            else f"MTBF {faults.mtbf} crashes are permanent"
        )
        findings.append(
            Finding(
                "PLN006",
                ERROR,
                f"policy 'stall' waits forever: {cause} and restart_after "
                "is None, so a stalled collective can never complete",
            )
        )
    if "degrade" in policies:
        if n_workers and len(permanent) >= n_workers:
            findings.append(
                Finding(
                    "PLN006",
                    ERROR,
                    f"policy 'degrade' has no quorum: all {n_workers} "
                    "worker(s) crash permanently (restart_after is None)",
                )
            )
        elif mtbf_no_restart:
            findings.append(
                Finding(
                    "PLN006",
                    WARNING,
                    "policy 'degrade' erodes to zero survivors eventually: "
                    f"MTBF {faults.mtbf} with restart_after=None",
                )
            )
    if "raise" in policies and (permanent or mtbf_no_restart):
        findings.append(
            Finding(
                "PLN006",
                WARNING,
                "policy 'raise' aborts on the first crash the profile's "
                "fault spec makes inevitable",
            )
        )
    return findings


def verify_plan(plan: RoundPlan, profile: Any = None) -> PlanReport:
    """Statically verify ``plan``; optionally against a ``ClusterProfile``.

    Execution-free: resolves each flattened step's effect footprint
    (declared or inferred — see :mod:`repro.analysis.effects`) and walks the
    sequence with the same in-flight bookkeeping the executor enforces at
    runtime.  With a ``profile`` (anything exposing ``n_workers`` and a
    ``faults`` :class:`FailureModel`, e.g.
    :class:`~repro.distributed.schedule_diff.ClusterProfile`), fault-policy
    satisfiability is checked as well (PLN006).
    """
    report = PlanReport(plan_name=plan.name)
    steps = plan.flattened()
    resolved = plan_effects(steps)

    in_flight: Set[str] = set()
    written: Set[str] = set(plan.context)
    # the executor binds these before/while running degrade-policy plans
    written.add("alive_workers")
    seen_collective = False
    consumes_alive = False
    # once any step's writes are unknown, PLN009 would fabricate findings
    writes_complete = True
    static = plan.is_static
    rounds = 0
    collectives = 0

    for index, (step, eff) in enumerate(resolved):
        name = getattr(step, "name", None)
        report.step_effects.append(
            {"kind": _step_kind(step), "name": name, **eff.describe()}
        )
        if "alive_workers" in eff.ctx_reads():
            consumes_alive = True

        if isinstance(step, Join):
            if not in_flight:
                report.findings.append(
                    Finding(
                        "PLN003",
                        WARNING,
                        "Join with no overlapped transfer in flight (no-op)",
                        step_index=index,
                    )
                )
            in_flight.clear()
            continue
        if isinstance(step, Barrier):
            continue

        # --- reads happen before this step's binding write ---------------
        ctx_reads = eff.ctx_reads()
        if not eff.ctx_exact and in_flight:
            report.findings.append(
                Finding(
                    "PLN008",
                    ERROR,
                    f"cannot prove step safe: unknown context footprint "
                    f"while {sorted(in_flight)} is in flight",
                    step_index=index,
                    step_name=name,
                )
            )
        raced = sorted(ctx_reads & in_flight)
        if raced:
            report.findings.append(
                Finding(
                    "PLN001",
                    ERROR,
                    f"reads overlapped key(s) {raced} before a Join; the "
                    "runtime in-flight guard would raise here",
                    step_index=index,
                    step_name=name,
                )
            )
        if eff.ctx_exact and writes_complete:
            unwritten = sorted(ctx_reads - written)
            if unwritten:
                report.findings.append(
                    Finding(
                        "PLN009",
                        WARNING,
                        f"reads key(s) {unwritten} that no earlier step "
                        "wrote and the initial context does not provide",
                        step_index=index,
                        step_name=name,
                    )
                )

        # --- execute the step symbolically --------------------------------
        if isinstance(step, Collective):
            if step.joint_with_previous and not seen_collective:
                report.findings.append(
                    Finding(
                        "PLN007",
                        WARNING,
                        f"collective {step.name!r} is joint_with_previous "
                        "but no collective precedes it",
                        step_index=index,
                        step_name=step.name,
                    )
                )
            seen_collective = True
            collectives += 1
            if step.opens_round:
                rounds += 1
            if step.overlap:
                in_flight.add(step.name)
            else:
                # a blocking collective drains the background transfers
                in_flight.clear()
        elif isinstance(step, DynamicStep):
            static = False

        if eff.ctx_exact:
            written |= eff.ctx_writes()
        else:
            # an unknown step may have written anything
            writes_complete = False
        if name:
            written.add(name)

    if in_flight:
        report.findings.append(
            Finding(
                "PLN002",
                ERROR,
                f"plan ends with overlapped collective(s) "
                f"{sorted(in_flight)} still in flight; the executor "
                "requires a trailing Join()",
            )
        )

    if static:
        report.rounds = rounds
        if plan.declared_rounds is not None and rounds != plan.declared_rounds:
            report.findings.append(
                Finding(
                    "PLN004",
                    ERROR,
                    f"steps open {rounds} round(s) but the plan declares "
                    f"{plan.declared_rounds}",
                )
            )
        if (
            plan.declared_collectives is not None
            and collectives != plan.declared_collectives
        ):
            report.findings.append(
                Finding(
                    "PLN004",
                    ERROR,
                    f"steps contain {collectives} collective(s) but the "
                    f"plan declares {plan.declared_collectives}",
                )
            )

    if plan.on_failure == "degrade" and not consumes_alive:
        report.findings.append(
            Finding(
                "PLN005",
                WARNING,
                "plan degrades on failure but no payload/master step reads "
                "ctx['alive_workers']; surviving-worker aggregates will not "
                "be reweighted",
            )
        )

    if profile is not None:
        report.findings.extend(_fault_findings(plan, profile))
    return report
