"""Static analysis over the schedule IR and the codebase itself.

Two layers share this package:

* :mod:`repro.analysis.effects` + :mod:`repro.analysis.verify` — an effect
  model (``reads``/``writes`` sets per plan step) and a dataflow verifier
  (:func:`verify_plan`) that proves or refutes a :class:`RoundPlan`'s
  legality *without executing it*: overlap races, dead Joins, round-count
  drift, degrade plans that never consume ``alive_workers``, and
  quorum-unsatisfiable plans under a declared fault profile.  The autotuner's
  ``verify="static"`` mode and the effect-verified hoist proposer are built
  on it.

* :mod:`repro.analysis.lint` — an AST lint (``python -m repro lint``) that
  enforces the repo's hand-maintained contracts: backend purity (RPR001),
  seeded determinism (RPR002), fork safety (RPR003) and honest error
  handling (RPR004), with a committed suppression baseline.

Rule ids (``PLN*`` for plan findings, ``RPR*`` for lint findings) are
documented in ``docs/analysis.md``.
"""

from repro.analysis.effects import Effects, infer_effects, step_effects
from repro.analysis.lint import LintFinding, LintReport, run_lint
from repro.analysis.verify import Finding, PlanReport, verify_plan

__all__ = [
    "Effects",
    "Finding",
    "LintFinding",
    "LintReport",
    "PlanReport",
    "infer_effects",
    "run_lint",
    "step_effects",
    "verify_plan",
]
