"""``python -m repro lint`` — AST lint enforcing the repo's own contracts.

Generic linters cannot see this codebase's architectural rules; these
checkers encode them directly:

``RPR001`` *backend purity*
    Backend-generic modules (objectives, linalg) must go through the
    :class:`ArrayBackend` dispatch layer; a raw ``np.<kernel>(...)`` call
    there silently pins the computation to NumPy and breaks CuPy/Torch
    parity.  Structural/dtype helpers (``np.asarray``, ``np.dtype``,
    ``np.finfo``, ...) are allowed — they are host-side bookkeeping.

``RPR002`` *seeded determinism*
    Solver and distributed code must not read ambient nondeterminism:
    ``np.random.*`` module-level calls (including ``default_rng()`` with no
    seed), the stdlib ``random`` module, or wall-clock reads
    (``time.time()``/``perf_counter()``/``datetime.now()``).  Modelled time
    comes from the cluster clock; randomness flows from seeded generators.

``RPR003`` *fork safety*
    Modules imported by process-engine worker payloads must not carry
    module-level mutable state (dict/list/set literals or constructor
    calls at module scope): each spawned worker gets its own copy and
    mutations silently diverge between ranks.  Declared constants are fine
    — the rule flags the containers, a tuple/frozenset is the fix.

``RPR004`` *honest error handling*
    No bare ``except:``; no handler that silently swallows (body is only
    ``pass``/``...``) a broad exception class or a ``ServingError``.

Suppression: append ``# repro-lint: ignore[RPR00x]`` (with an optional
reason) to the offending line, or record the finding's fingerprint in the
committed baseline (``lint_baseline.json``, regenerated with
``--update-baseline``).  Fingerprints hash the rule, file and source line
— not the line *number* — so unrelated edits don't invalidate them.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: rule id -> one-line description (the catalogue in docs/analysis.md)
LINT_RULES: Dict[str, str] = {
    "RPR001": "raw numpy kernel call in a backend-generic module",
    "RPR002": "unseeded/global RNG or wall-clock read in solver/distributed code",
    "RPR003": "module-level mutable state in a process-engine payload module",
    "RPR004": "bare except or silently swallowed exception",
}

#: modules that must stay backend-generic (RPR001), relative to the scan root
BACKEND_GENERIC = (
    "repro/objectives/*.py",
    "repro/linalg/*.py",
)

#: modules that must be deterministic (RPR002)
DETERMINISTIC = (
    "repro/admm/*.py",
    "repro/baselines/*.py",
    "repro/solvers/*.py",
    "repro/distributed/*.py",
)

#: modules imported by spawned process-engine workers (RPR003)
FORK_SAFE = (
    "repro/admm/*.py",
    "repro/baselines/*.py",
    "repro/solvers/*.py",
    "repro/distributed/*.py",
    "repro/objectives/*.py",
    "repro/linalg/*.py",
    "repro/backend/*.py",
    "repro/datasets/*.py",
)

#: numpy attributes that are host-side bookkeeping, not array kernels
_NUMPY_ALLOWED = frozenset(
    {
        "ndarray",
        "generic",
        "dtype",
        "asarray",
        "ascontiguousarray",
        "isscalar",
        "result_type",
        "promote_types",
        "can_cast",
        "finfo",
        "iinfo",
        "isfinite",
        "isnan",
        "isinf",
        "errstate",
        "seterr",
        "shares_memory",
        "float32",
        "float64",
        "int32",
        "int64",
        "intp",
        "bool_",
        "uint8",
        "testing",
    }
)

#: exception names whose silent swallowing RPR004 always flags
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException", "ServingError"})

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class LintFinding:
    """One lint finding, locatable and fingerprintable."""

    rule: str
    path: str  # scan-root-relative, posix separators
    line: int
    message: str
    snippet: str
    #: disambiguates identical snippets in one file (0-based)
    occurrence: int = 0

    def fingerprint(self) -> str:
        text = "\x1f".join(
            [self.rule, self.path, self.snippet.strip(), str(self.occurrence)]
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet.strip(),
            "fingerprint": self.fingerprint(),
        }


@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` call."""

    findings: List[LintFinding] = field(default_factory=list)
    suppressed: List[LintFinding] = field(default_factory=list)
    baselined: List[LintFinding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def describe(self) -> dict:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": LINT_RULES,
            "findings": [f.describe() for f in self.findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
        }

    def render(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f"{f.path}:{f.line}: {f.rule} {f.message}")
            lines.append(f"    {f.snippet.strip()}")
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed inline, "
            f"{len(self.baselined)} baselined) "
            f"in {self.files_scanned} file(s)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------
def _numpy_aliases(tree: ast.Module) -> set:
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    names.add(alias.asname or "numpy")
    return names


class _Checker(ast.NodeVisitor):
    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.hits: List[Tuple[str, int, str]] = []  # (rule, line, message)

    def hit(self, rule: str, node: ast.AST, message: str) -> None:
        self.hits.append((rule, node.lineno, message))


class _BackendPurity(_Checker):
    """RPR001: ``np.<kernel>(...)`` calls outside the dispatch layer."""

    def __init__(self, tree: ast.Module):
        super().__init__(tree)
        self.aliases = _numpy_aliases(tree)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.aliases
            and func.attr not in _NUMPY_ALLOWED
        ):
            self.hit(
                "RPR001",
                node,
                f"raw numpy call np.{func.attr}(...) in a backend-generic "
                "module; route through the ArrayBackend",
            )
        self.generic_visit(node)


class _Determinism(_Checker):
    """RPR002: ambient RNG and wall-clock reads."""

    _CLOCKS = {
        ("time", "time"),
        ("time", "perf_counter"),
        ("time", "monotonic"),
        ("time", "process_time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
    }

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted:
            parts = tuple(dotted.split("."))
            if parts[:2] == ("np", "random") or parts[:2] == ("numpy", "random"):
                if parts[-1] == "default_rng" and (node.args or node.keywords):
                    pass  # seeded generator construction is the sanctioned path
                else:
                    self.hit(
                        "RPR002",
                        node,
                        f"global numpy RNG call {dotted}(...); use a seeded "
                        "np.random.default_rng(seed) generator",
                    )
            elif parts[0] == "random" and len(parts) == 2:
                self.hit(
                    "RPR002",
                    node,
                    f"stdlib random call {dotted}(...); use a seeded generator",
                )
            elif len(parts) >= 2 and (parts[-2], parts[-1]) in self._CLOCKS:
                self.hit(
                    "RPR002",
                    node,
                    f"wall-clock read {dotted}(...); modelled time comes "
                    "from the cluster clock",
                )
        self.generic_visit(node)


class _ForkSafety(_Checker):
    """RPR003: module-level mutable containers."""

    _MUTABLE_CALLS = frozenset(
        {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
    )
    _ALLOWED_NAMES = frozenset({"__all__"})

    def check(self) -> None:
        for stmt in self.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or all(n in self._ALLOWED_NAMES for n in names):
                continue
            if self._is_mutable(value):
                self.hit(
                    "RPR003",
                    stmt,
                    f"module-level mutable container {', '.join(names)}; "
                    "spawned workers each get a diverging copy — use a "
                    "tuple/frozenset or move it into the owning object",
                )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return bool(dotted) and dotted.split(".")[-1] in self._MUTABLE_CALLS
        return False


class _ErrorHandling(_Checker):
    """RPR004: bare excepts and silent swallows."""

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.hit("RPR004", node, "bare except: names no exception class")
        elif self._is_silent(node.body):
            caught = self._caught_names(node.type)
            broad = caught & _BROAD_EXCEPTIONS
            if broad:
                self.hit(
                    "RPR004",
                    node,
                    f"silently swallows {'/'.join(sorted(broad))}; log, "
                    "narrow the class, or re-raise",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_silent(body: Sequence[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
            for stmt in body
        )

    @staticmethod
    def _caught_names(node: ast.expr) -> set:
        names = set()
        for sub in [node] + (list(node.elts) if isinstance(node, ast.Tuple) else []):
            dotted = _dotted_name(sub)
            if dotted:
                names.add(dotted.split(".")[-1])
        return names


def _dotted_name(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def _matches(relpath: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch.fnmatch(relpath, pat) for pat in patterns)


def lint_source(source: str, relpath: str) -> List[LintFinding]:
    """Lint one module's source; ``relpath`` selects the applicable rules."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [
            LintFinding(
                rule="RPR000",
                path=relpath,
                line=exc.lineno or 1,
                message=f"syntax error: {exc.msg}",
                snippet=exc.text or "",
            )
        ]
    checkers: List[_Checker] = []
    if _matches(relpath, BACKEND_GENERIC):
        checkers.append(_BackendPurity(tree))
    if _matches(relpath, DETERMINISTIC):
        checkers.append(_Determinism(tree))
    checkers.append(_ErrorHandling(tree))
    for checker in checkers:
        checker.visit(tree)
    if _matches(relpath, FORK_SAFE):
        fork = _ForkSafety(tree)
        fork.check()
        checkers.append(fork)

    lines = source.splitlines()
    raw: List[Tuple[str, int, str]] = []
    for checker in checkers:
        raw.extend(checker.hits)
    raw.sort(key=lambda h: (h[1], h[0]))

    occurrence: Dict[Tuple[str, str], int] = {}
    findings = []
    for rule, lineno, message in raw:
        snippet = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
        key = (rule, snippet.strip())
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        findings.append(
            LintFinding(
                rule=rule,
                path=relpath,
                line=lineno,
                message=message,
                snippet=snippet,
                occurrence=index,
            )
        )
    return findings


def _inline_suppressed(finding: LintFinding, source_lines: Sequence[str]) -> bool:
    if not (0 < finding.line <= len(source_lines)):
        return False
    match = _SUPPRESS_RE.search(source_lines[finding.line - 1])
    if not match:
        return False
    rules = {r.strip() for r in match.group(1).split(",")}
    return finding.rule in rules


def load_baseline(path: Path) -> set:
    if not path.is_file():
        return set()
    data = json.loads(path.read_text())
    return set(data.get("suppressions", []))


def save_baseline(path: Path, findings: Iterable[LintFinding]) -> None:
    payload = {
        "format": 1,
        "comment": (
            "Accepted pre-existing lint findings (cold paths); burn these "
            "down, never add to them by hand. Regenerate with "
            "`python -m repro lint --update-baseline`."
        ),
        "suppressions": sorted(f.fingerprint() for f in findings),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def run_lint(
    root: Path,
    *,
    baseline: Optional[Path] = None,
) -> LintReport:
    """Lint every ``*.py`` under ``root`` (a directory containing ``repro/``).

    ``baseline`` holds accepted fingerprints; matching findings are reported
    in ``report.baselined`` instead of failing the run.
    """
    root = Path(root)
    accepted = load_baseline(baseline) if baseline else set()
    report = LintReport()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relpath = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        source_lines = source.splitlines()
        report.files_scanned += 1
        for finding in lint_source(source, relpath):
            if _inline_suppressed(finding, source_lines):
                report.suppressed.append(finding)
            elif finding.fingerprint() in accepted:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    return report
