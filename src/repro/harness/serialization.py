"""Serialization of experiment results (run traces, figure rows) to JSON / CSV.

Every figure driver in :mod:`repro.harness.experiments` returns a dictionary
with ``rows`` (the table the paper prints) and usually ``traces`` (full
:class:`~repro.metrics.traces.RunTrace` objects).  These helpers write both to
disk so benchmark runs are reproducible artifacts rather than console
scrollback, and load them back for post-processing.
"""

from __future__ import annotations

import base64
import binascii
import csv
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.metrics.traces import EpochRecord, RunTrace

PathLike = Union[str, Path]


def encode_array(array: np.ndarray) -> dict:
    """Encode an ndarray as a JSON-safe dict, bit-exactly.

    The raw little-endian bytes are base64-encoded alongside dtype and shape,
    so the round trip through :func:`decode_array` reproduces the array
    *bit-for-bit* — including dtype (fp32 models stay fp32), negative zeros
    and NaN payloads, none of which survive a float -> repr -> float trip
    reliably.  This is the on-disk weight format of the model registry
    (:mod:`repro.serving.registry`) and of ``save_trace(include_weights=True)``.
    """
    array = np.ascontiguousarray(array)
    dtype = array.dtype.newbyteorder("<")
    return {
        "__ndarray__": True,
        "dtype": dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.astype(dtype, copy=False).tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`; raises ``ValueError`` on malformed input."""
    try:
        dtype = np.dtype(payload["dtype"])
        shape = tuple(int(s) for s in payload["shape"])
        raw = base64.b64decode(payload["data"].encode("ascii"), validate=True)
    except (KeyError, TypeError, AttributeError, binascii.Error) as exc:
        raise ValueError(f"malformed encoded array: {exc}") from exc
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(raw) != expected:
        raise ValueError(
            f"encoded array is truncated or padded: dtype {dtype.str} with shape "
            f"{shape} needs {expected} bytes, got {len(raw)}"
        )
    array = np.frombuffer(raw, dtype=dtype).reshape(shape)
    # Native byte order + an owned, writable buffer for downstream consumers.
    return np.ascontiguousarray(array.astype(dtype.newbyteorder("="), copy=True))


def _jsonable(value):
    """Convert numpy scalars / arrays and non-finite floats into JSON-safe values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        value = float(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _from_jsonable_float(value):
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return value


def trace_to_dict(trace: RunTrace, *, include_weights: bool = False) -> dict:
    """Serialize a :class:`RunTrace` into a JSON-compatible dictionary.

    Parameters
    ----------
    include_weights:
        Also store the final iterate (can be large for E18-like problems).
    """
    out = {
        "method": trace.method,
        "dataset": trace.dataset,
        "n_workers": trace.n_workers,
        "info": _jsonable(trace.info),
        "records": [
            {
                "epoch": r.epoch,
                "objective": _jsonable(r.objective),
                "grad_norm": _jsonable(r.grad_norm),
                "train_accuracy": _jsonable(r.train_accuracy),
                "test_accuracy": _jsonable(r.test_accuracy),
                "modelled_time": r.modelled_time,
                "compute_time": r.compute_time,
                "comm_time": r.comm_time,
                "wall_time": r.wall_time,
                "comm_rounds": r.comm_rounds,
                "extras": _jsonable(r.extras),
            }
            for r in trace.records
        ],
    }
    if include_weights and trace.final_w is not None:
        # Bit-exact (dtype-preserving) weight storage; the model registry
        # publishes straight from these payloads.
        out["final_w"] = encode_array(np.asarray(trace.final_w))
    return out


def trace_from_dict(data: dict) -> RunTrace:
    """Inverse of :func:`trace_to_dict`."""
    records = [
        EpochRecord(
            epoch=int(r["epoch"]),
            objective=float(_from_jsonable_float(r["objective"])),
            grad_norm=float(_from_jsonable_float(r.get("grad_norm", "nan"))),
            train_accuracy=float(_from_jsonable_float(r.get("train_accuracy", "nan"))),
            test_accuracy=float(_from_jsonable_float(r.get("test_accuracy", "nan"))),
            modelled_time=float(r.get("modelled_time", 0.0)),
            compute_time=float(r.get("compute_time", 0.0)),
            comm_time=float(r.get("comm_time", 0.0)),
            wall_time=float(r.get("wall_time", 0.0)),
            comm_rounds=int(r.get("comm_rounds", 0)),
            extras=dict(r.get("extras", {})),
        )
        for r in data.get("records", [])
    ]
    trace = RunTrace(
        method=data["method"],
        dataset=data["dataset"],
        n_workers=int(data["n_workers"]),
        records=records,
        info=dict(data.get("info", {})),
    )
    if "final_w" in data:
        payload = data["final_w"]
        if isinstance(payload, dict) and payload.get("__ndarray__"):
            trace.final_w = decode_array(payload)
        else:
            # Legacy traces stored weights as a plain (lossy) float list.
            trace.final_w = np.asarray(payload, dtype=np.float64)
    return trace


def save_trace(trace: RunTrace, path: PathLike, *, include_weights: bool = False) -> Path:
    """Write one trace to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_to_dict(trace, include_weights=include_weights), indent=2))
    return path


def load_trace(path: PathLike) -> RunTrace:
    """Read a trace previously written with :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def save_experiment_result(
    result: dict, directory: PathLike, *, name: str, include_weights: bool = False
) -> Dict[str, Path]:
    """Persist one figure driver's output to ``directory``.

    Writes ``<name>_rows.json``, ``<name>_rows.csv``, ``<name>_report.txt``
    and one ``<name>_trace_<key>.json`` per trace.  Returns the written paths
    keyed by artifact kind.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    rows = result.get("rows", [])
    rows_json = directory / f"{name}_rows.json"
    rows_json.write_text(json.dumps(_jsonable(rows), indent=2))
    written["rows_json"] = rows_json
    written["rows_csv"] = save_rows_csv(rows, directory / f"{name}_rows.csv")

    if "report" in result:
        report_path = directory / f"{name}_report.txt"
        report_path.write_text(str(result["report"]) + "\n")
        written["report"] = report_path

    traces = result.get("traces", {})
    for key, value in _iter_traces(traces):
        trace_path = directory / f"{name}_trace_{key}.json"
        save_trace(value, trace_path, include_weights=include_weights)
        written[f"trace_{key}"] = trace_path
    return written


def _iter_traces(traces) -> List:
    """Flatten the (possibly nested) trace containers the figure drivers return."""
    out = []
    if isinstance(traces, dict):
        for key, value in traces.items():
            if isinstance(value, RunTrace):
                out.append((str(key), value))
            elif isinstance(value, dict):
                for inner_key, inner in value.items():
                    if isinstance(inner, RunTrace):
                        out.append((f"{key}_{inner_key}", inner))
    return out


def save_rows_csv(
    rows: Sequence[dict], path: PathLike, *, columns: Optional[Sequence[str]] = None
) -> Path:
    """Write a list of dictionaries as CSV (columns taken from the first row)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = list(rows)
    if columns is None:
        columns = list(rows[0].keys()) if rows else []
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c, "") for c in columns})
    return path


def load_rows_csv(path: PathLike) -> List[dict]:
    """Read a CSV written by :func:`save_rows_csv` (values come back as strings)."""
    with Path(path).open(newline="") as handle:
        return [dict(row) for row in csv.DictReader(handle)]
