"""Command-line interface for the reproduction harness.

Usage (after ``pip install -e .`` or with ``src/`` on ``PYTHONPATH``)::

    python -m repro list                      # experiments and their content
    python -m repro datasets                  # registered workloads
    python -m repro run figure1 --scale quick --out results/
    python -m repro run all --scale small --out results/small
    python -m repro solvers                   # registered distributed solvers
    python -m repro lint                      # repo-contract static lint

``run`` executes the selected figure/table driver(s), prints the same report
the paper's figure shows, writes rows (JSON + CSV), per-method traces and the
report into ``--out``, and — for the time-series figures — renders an ASCII
version of the plot.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.datasets.registry import DATASET_REGISTRY
from repro.harness import experiments
from repro.harness.config import ExperimentScale
from repro.harness.plotting import plot_traces
from repro.harness.runner import SOLVER_REGISTRY
from repro.harness.serialization import save_experiment_result
from repro.metrics.summary import format_table
from repro.metrics.traces import RunTrace

#: experiment name -> (driver, description, plottable metric or None)
EXPERIMENT_REGISTRY: Dict[str, tuple] = {
    "table1": (
        experiments.table1_datasets,
        "Table 1 — dataset descriptions (paper vs. reproduction)",
        None,
    ),
    "figure1": (
        experiments.figure1_second_order_comparison,
        "Figure 1 — Newton-ADMM vs GIANT / InexactDANE / AIDE on MNIST",
        "objective",
    ),
    "figure2": (
        experiments.figure2_epoch_times,
        "Figure 2 — average epoch time, strong & weak scaling",
        None,
    ),
    "figure3": (
        experiments.figure3_speedup_ratios,
        "Figure 3 — speed-up ratio of Newton-ADMM over GIANT",
        None,
    ),
    "figure4": (
        experiments.figure4_first_order_comparison,
        "Figure 4 — Newton-ADMM vs synchronous SGD",
        "objective",
    ),
    "figure5": (
        experiments.figure5_e18_weak_scaling,
        "Figure 5 — E18-like weak scaling with 16 workers",
        "objective",
    ),
    "ablation-penalty": (
        experiments.ablation_penalty_policies,
        "Ablation — SPS vs residual balancing vs fixed penalty",
        "objective",
    ),
    "ablation-cg": (
        experiments.ablation_cg_budget,
        "Ablation — CG budget of the local Newton solves",
        None,
    ),
    "ablation-overrelax": (
        experiments.ablation_over_relaxation,
        "Ablation — ADMM over-relaxation factor",
        "objective",
    ),
    "ablation-network": (
        experiments.ablation_interconnect_sensitivity,
        "Ablation — interconnect sensitivity (InfiniBand / 10GbE / WAN)",
        None,
    ),
    "ablation-stragglers": (
        experiments.ablation_straggler_sensitivity,
        "Ablation — straggler sensitivity (persistent slow worker)",
        None,
    ),
    "ablation-overlap": (
        experiments.ablation_overlap_giant,
        "Ablation — GIANT gradient-allreduce overlap (modelled saving)",
        None,
    ),
    "ablation-async": (
        experiments.ablation_async_admm,
        "Ablation — async Newton-ADMM / async SGD vs sync under a straggler",
        "objective",
    ),
    "ablation-faults": (
        experiments.ablation_faults,
        "Ablation — worker crash/restart: quorum async rides through, sync stalls or fails",
        None,
    ),
    "ablation-partitions": (
        experiments.ablation_partitions,
        "Ablation — a master↔worker link dies and heals: quorum async rides through the cut",
        None,
    ),
    "ablation-autotune": (
        experiments.ablation_autotune,
        "Ablation — tournament-tuned schedule beats every hand-written plan "
        "under a straggler+fault profile",
        None,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for Newton-ADMM (Fang et al., SC 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments")
    sub.add_parser("datasets", help="describe the registered workloads")
    sub.add_parser("solvers", help="list the registered distributed solvers")
    sub.add_parser("backends", help="list array backends and their availability")
    sub.add_parser("engines", help="list execution engines and host parallelism")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENT_REGISTRY) + ["all"],
        help="experiment to run, or 'all' for the full evaluation section",
    )
    run.add_argument(
        "--scale",
        choices=[s.value for s in ExperimentScale],
        default=ExperimentScale.QUICK.value,
        help="reproduction scale (default: quick)",
    )
    run.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write rows/traces/report artifacts into",
    )
    run.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    run.add_argument(
        "--backend",
        choices=["numpy", "cupy", "torch", "auto"],
        default=None,
        help=(
            "array backend for all compute (default: numpy; 'auto' picks the "
            "best available accelerator and falls back to numpy)"
        ),
    )
    run.add_argument(
        "--engine",
        choices=["lockstep", "event", "process"],
        default=None,
        help=(
            "execution engine for synchronous solvers (default: lockstep; "
            "'event' runs on the discrete-event scheduler — identical results "
            "and modelled times, plus per-worker busy/wait/comm timelines; "
            "'process' runs each worker as a real OS process with measured "
            "wall-clock timelines on top of the same modelled accounting — "
            "see 'python -m repro engines')"
        ),
    )
    run.add_argument(
        "--precision",
        choices=["fp64", "fp32", "mixed"],
        default=None,
        help=(
            "storage/compute precision for every objective the experiment "
            "builds (default: follow the data's dtype, i.e. fp64; 'mixed' "
            "stores fp32 and keeps log-sum-exp and CG reductions in fp64 — "
            "see docs/performance.md for the convergence-tolerance contract)"
        ),
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject faults into every cluster the experiment builds: "
            "comma-separated 'W@TIME' / 'W@rROUND' crash specs plus optional "
            "'mtbf=S', 'restart=S', 'seed=N', network partitions "
            "'part=W[+W2]@START-END', correlated failure groups "
            "'group=W+W2' with 'corr=P', and checkpoint costs "
            "'ckpt=INTERVAL[/WRITE[/RESTORE]]' "
            "(e.g. '0@2.5,restart=1.0,ckpt=5/0.1/0.5' or 'part=0@2.0-6.0'); "
            "see repro.distributed.faults.FailureModel.from_spec"
        ),
    )
    run.add_argument(
        "--no-plot",
        action="store_true",
        help="skip the ASCII rendering of time-series figures",
    )

    tune = sub.add_parser(
        "tune",
        help="tournament-search the schedule for a declared cluster profile "
        "(quorum / staleness / penalty / overlap knobs; see docs/schedule-ir.md)",
    )
    tune.add_argument(
        "--dataset",
        choices=sorted(DATASET_REGISTRY),
        default="mnist_like",
        help="workload to tune on (default: mnist_like)",
    )
    tune.add_argument("--workers", type=int, default=8, help="cluster size (default 8)")
    tune.add_argument(
        "--network",
        default="infiniband_100g",
        help="network preset: infiniband_100g / ethernet_10g / wan_slow",
    )
    tune.add_argument(
        "--n-train", type=int, default=2000,
        help="training rows for the tournament fits (default 2000)",
    )
    tune.add_argument(
        "--epochs", type=int, default=12,
        help="synchronous epoch budget; async entrants get 4x (default 12)",
    )
    tune.add_argument(
        "--lam", type=float, default=1e-5, help="l2 regularization (default 1e-5)"
    )
    tune.add_argument(
        "--straggler-slowdown", type=float, default=0.0,
        help="persistent-straggler slowdown factor (0 = no stragglers)",
    )
    tune.add_argument(
        "--stragglers", type=int, default=1, metavar="N",
        help="how many workers straggle persistently (default 1; "
        "used with --straggler-slowdown)",
    )
    tune.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault spec for the profile (same grammar as 'run --faults')",
    )
    tune.add_argument(
        "--trials", type=int, default=6,
        help="seeded search draws on top of the hand-written field (default 6)",
    )
    tune.add_argument("--seed", type=int, default=0, help="search seed (default 0)")

    serve = sub.add_parser(
        "serve",
        help="start the model-serving HTTP app (registry + micro-batched "
        "predict + training jobs); see docs/serving.md",
    )
    serve.add_argument(
        "--root",
        type=Path,
        default=Path("model_registry"),
        help="model-registry directory (created if missing; default: ./model_registry)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8000, help="bind port (default 8000)")
    serve.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="micro-batching window in milliseconds (0 = drain-only batching; "
        "default 2.0 — see the tradeoff curve in docs/serving.md)",
    )
    serve.add_argument(
        "--max-batch-rows",
        type=int,
        default=8192,
        help="hard cap on stacked rows per scoring GEMM (default 8192)",
    )
    serve.add_argument(
        "--max-batch-requests",
        type=int,
        default=None,
        help="flush a batch early once this many requests queued "
        "(default: no early flush)",
    )
    serve.add_argument(
        "--backend",
        choices=["numpy", "cupy", "torch", "auto"],
        default=None,
        help="array backend the scoring GEMMs run on (default numpy)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repo's own static-contract lint "
        "(backend purity, determinism, fork safety, honest error handling; "
        "see docs/analysis.md)",
    )
    lint.add_argument(
        "--root",
        type=Path,
        default=None,
        help="scan root containing the repro/ package (default: the "
        "installed source tree)",
    )
    lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON of accepted fingerprints (default: "
        "lint_baseline.json next to the scan root, if present)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding and exit 0",
    )
    lint.add_argument(
        "--json",
        type=Path,
        dest="json_out",
        default=None,
        metavar="REPORT",
        help="also write the structured report (findings + fingerprints) "
        "to this JSON file",
    )
    return parser


def _cmd_list(print_fn: Callable[[str], None]) -> int:
    rows = [
        {"experiment": name, "description": desc}
        for name, (_, desc, _) in sorted(EXPERIMENT_REGISTRY.items())
    ]
    print_fn(format_table(rows, title="Available experiments"))
    return 0


def _cmd_datasets(print_fn: Callable[[str], None]) -> int:
    rows = [
        {
            "name": spec.name,
            "stands in for": spec.paper_name,
            "classes": spec.n_classes,
            "features": spec.n_features,
            "default train": spec.default_train,
            "conditioning": spec.conditioning,
        }
        for spec in DATASET_REGISTRY.values()
    ]
    print_fn(format_table(rows, title="Registered workloads (see repro.datasets.registry)"))
    return 0


def _cmd_solvers(print_fn: Callable[[str], None]) -> int:
    rows = [
        {"name": name, "class": cls.__name__, "module": cls.__module__}
        for name, cls in sorted(SOLVER_REGISTRY.items())
    ]
    print_fn(format_table(rows, title="Registered distributed solvers"))
    return 0


def _collect_traces(result: dict) -> Dict[str, RunTrace]:
    traces = result.get("traces", {})
    flat: Dict[str, RunTrace] = {}
    if isinstance(traces, dict):
        for key, value in traces.items():
            if isinstance(value, RunTrace):
                flat[str(key)] = value
            elif isinstance(value, dict):
                for inner_key, inner in value.items():
                    if isinstance(inner, RunTrace):
                        flat[f"{key}/{inner_key}"] = inner
    return flat


def _cmd_backends(print_fn: Callable[[str], None]) -> int:
    from repro.backend import available_backends, default_backend, get_backend

    current = default_backend().name

    def fusion(name: str, ok: bool) -> str:
        if not ok:
            return "-"
        try:
            return get_backend(name).fusion_info().get("lse_probs", "composed")
        except Exception:
            return "-"

    rows = [
        {
            "name": name,
            "available": "yes" if ok else "no",
            "fused lse+probs": fusion(name, ok),
            "default": "*" if name == current else "",
        }
        for name, ok in sorted(available_backends().items())
    ]
    print_fn(format_table(rows, title="Array backends (select with run --backend)"))
    return 0


def _cmd_engines(print_fn: Callable[[str], None]) -> int:
    from repro.distributed.process_engine import process_engine_info
    from repro.harness.config import ENGINE_MODES, default_engine

    info = process_engine_info()
    current = default_engine()
    descriptions = {
        "lockstep": "in-process, modelled time, synchronous rounds",
        "event": "in-process, modelled time, per-worker timelines",
        "process": (
            f"real OS processes ({info['start_method']} start), measured "
            "wall-clock + modelled time"
        ),
    }
    rows = [
        {
            "engine": name,
            "execution": descriptions[name],
            "default": "*" if name == current else "",
        }
        for name in ENGINE_MODES
    ]
    print_fn(format_table(rows, title="Execution engines (select with run --engine)"))
    print_fn(
        f"host: {info['cpu_count']} usable CPU(s); "
        f"start method: {info['start_method']}; "
        f"shared-memory shard handoff: "
        f"{'yes' if info['shared_memory'] else 'no'}; "
        f"torch.distributed backend: {info['torch_distributed']}; "
        f"sync timeout: {info['sync_timeout']:.0f}s (REPRO_PROCESS_TIMEOUT)"
    )
    return 0


def _cmd_run(args, print_fn: Callable[[str], None]) -> int:
    if getattr(args, "backend", None):
        from repro.backend import BackendUnavailableError, set_default_backend

        try:
            backend = set_default_backend(args.backend)
        except BackendUnavailableError as exc:
            print_fn(f"error: {exc}")
            print_fn("hint: run 'python -m repro backends' to see what is available")
            return 2
        print_fn(f"using array backend: {backend.name}")
    if getattr(args, "engine", None):
        from repro.harness.config import set_default_engine

        print_fn(f"using execution engine: {set_default_engine(args.engine)}")
    if getattr(args, "precision", None):
        from repro.backend import set_default_precision

        try:
            set_default_precision(args.precision)
        except ValueError as exc:
            print_fn(f"error: {exc}")
            return 2
        print_fn(f"using precision mode: {args.precision}")
    if getattr(args, "faults", None):
        from repro.harness.config import set_default_faults

        try:
            set_default_faults(args.faults)
        except ValueError as exc:
            print_fn(f"error: {exc}")
            return 2
        print_fn(f"injecting faults: {args.faults}")
    names: List[str] = (
        sorted(EXPERIMENT_REGISTRY) if args.experiment == "all" else [args.experiment]
    )
    scale = ExperimentScale(args.scale)
    exit_code = 0
    for name in names:
        driver, description, plot_metric = EXPERIMENT_REGISTRY[name]
        print_fn(f"== {name}: {description} (scale={scale.value}) ==")
        try:
            result = driver(scale, seed=args.seed)
        except Exception as exc:
            from repro.distributed.faults import WorkerLostError

            if not isinstance(exc, WorkerLostError):
                raise
            # Injected faults + the default strict-sync 'raise' policy: report
            # the structured loss instead of a traceback.
            print_fn(f"aborted by injected fault: {exc}")
            exit_code = 1
            print_fn("")
            continue
        print_fn(str(result.get("report", "")))
        if plot_metric and not args.no_plot:
            traces = _collect_traces(result)
            if traces:
                print_fn(
                    plot_traces(
                        traces, y=plot_metric, title=f"{name}: {plot_metric} vs modelled time"
                    )
                )
        if args.out is not None:
            written = save_experiment_result(
                result, args.out, name=f"{name}_{scale.value}"
            )
            print_fn(f"wrote {len(written)} artifacts to {Path(args.out).resolve()}")
        print_fn("")
    return exit_code


def _cmd_tune(args, print_fn: Callable[[str], None]) -> int:
    from repro.datasets.registry import load_dataset
    from repro.distributed.autotune import run_tournament
    from repro.distributed.schedule_diff import ClusterProfile
    from repro.distributed.stragglers import StragglerModel
    from repro.harness.runner import resolve_network

    try:
        network = resolve_network(args.network)
    except KeyError as exc:
        print_fn(f"error: {exc}")
        return 2
    straggler = None
    if args.straggler_slowdown and args.straggler_slowdown > 1.0:
        straggler = StragglerModel(
            slowdown=args.straggler_slowdown,
            persistent_stragglers=list(range(max(1, args.stragglers))),
            random_state=args.seed,
        )
    try:
        profile = ClusterProfile(
            n_workers=args.workers,
            network=network,
            straggler=straggler,
            faults=args.faults,
        )
    except ValueError as exc:
        print_fn(f"error: {exc}")
        return 2
    train, test = load_dataset(
        args.dataset,
        n_train=args.n_train,
        n_test=max(200, args.n_train // 5),
        random_state=args.seed,
    )
    print_fn(
        f"tuning schedule for {args.dataset} on {args.workers} workers "
        f"({args.network}"
        + (f", {args.stragglers} straggler(s) @ {args.straggler_slowdown:g}x"
           if straggler else "")
        + (f", faults {args.faults}" if args.faults else "")
        + f"), seed {args.seed}, {args.trials} trial(s)"
    )
    result = run_tournament(
        train,
        profile,
        seed=args.seed,
        n_trials=args.trials,
        sync_epochs=args.epochs,
        lam=args.lam,
        test=test,
    )
    rows = [
        {
            "candidate": c["label"],
            "hand_written": c["hand_written"],
            "epochs": c["epochs"],
            "time_to_target_s": c["score"],
            "final_objective": c["final_objective"],
        }
        for c in result.candidates
    ]
    print_fn(format_table(rows, title="Tournament candidates"))
    provenance = result.winner_trace.info["autotune"]
    print_fn(
        f"winner: {result.winner} "
        f"(target objective {result.target:.6g}, "
        f"beat every hand-written plan: "
        f"{provenance['beat_every_hand_written']})"
    )
    winner = next(c for c in result.candidates if c["label"] == result.winner)
    for key, value in sorted(winner["params"].items()):
        print_fn(f"  {key}: {value}")
    return 0


def _cmd_serve(args, print_fn: Callable[[str], None]) -> int:
    if args.backend:
        from repro.backend import BackendUnavailableError, set_default_backend

        try:
            set_default_backend(args.backend)
        except BackendUnavailableError as exc:
            print_fn(f"error: {exc}")
            print_fn("hint: run 'python -m repro backends' to see what is available")
            return 2
    from repro.serving.app import run_server

    return run_server(
        args.root,
        host=args.host,
        port=args.port,
        backend=args.backend,
        window_s=args.window_ms / 1000.0,
        max_batch_rows=args.max_batch_rows,
        max_batch_requests=args.max_batch_requests,
        print_fn=print_fn,
    )


def _cmd_lint(args, print_fn: Callable[[str], None]) -> int:
    import json

    import repro
    from repro.analysis.lint import run_lint, save_baseline

    root = args.root or Path(repro.__file__).resolve().parent.parent
    default_baseline = root.parent / "lint_baseline.json"
    if args.update_baseline:
        report = run_lint(root)
        target = args.baseline or default_baseline
        save_baseline(target, report.findings)
        print_fn(
            f"accepted {len(report.findings)} finding(s) into {target} "
            f"({len(report.suppressed)} already suppressed inline)"
        )
        return 0
    baseline = args.baseline
    if baseline is None and default_baseline.is_file():
        baseline = default_baseline
    report = run_lint(root, baseline=baseline)
    print_fn(report.render())
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(report.describe(), indent=2) + "\n")
        print_fn(f"wrote JSON report to {args.json_out}")
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None, *, print_fn: Callable[[str], None] = print) -> int:
    """Entry point used by ``python -m repro`` (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(print_fn)
    if args.command == "datasets":
        return _cmd_datasets(print_fn)
    if args.command == "solvers":
        return _cmd_solvers(print_fn)
    if args.command == "backends":
        return _cmd_backends(print_fn)
    if args.command == "engines":
        return _cmd_engines(print_fn)
    if args.command == "run":
        return _cmd_run(args, print_fn)
    if args.command == "tune":
        return _cmd_tune(args, print_fn)
    if args.command == "serve":
        return _cmd_serve(args, print_fn)
    if args.command == "lint":
        return _cmd_lint(args, print_fn)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
