"""Build clusters, instantiate solvers by name, and run single experiments."""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro.admm.async_newton_admm import AsyncNewtonADMM
from repro.admm.newton_admm import NewtonADMM
from repro.baselines.aide import AIDE
from repro.baselines.async_sgd import AsynchronousSGD
from repro.baselines.cocoa import CoCoA
from repro.baselines.dane import InexactDANE
from repro.baselines.disco import DiSCO
from repro.baselines.giant import GIANT
from repro.baselines.sync_sgd import SynchronousSGD
from repro.datasets.base import ClassificationDataset
from repro.datasets.registry import load_dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.device import (
    DeviceModel,
    cpu_xeon_gold,
    device_for_backend,
    tesla_p100,
)
from repro.distributed.network import (
    NetworkModel,
    ethernet_10g,
    infiniband_100g,
    wan_slow,
)
from repro.distributed.faults import FailureModel
from repro.distributed.solver_base import DistributedSolver
from repro.harness.config import (
    ClusterConfig,
    SolverConfig,
    default_engine,
    default_faults,
)
from repro.metrics.traces import RunTrace
from repro.objectives.base import RegularizedObjective
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.newton_cg import NewtonCG

#: name -> distributed solver class
SOLVER_REGISTRY: Dict[str, Type[DistributedSolver]] = {
    "newton_admm": NewtonADMM,
    "async_newton_admm": AsyncNewtonADMM,
    "giant": GIANT,
    "inexact_dane": InexactDANE,
    "aide": AIDE,
    "disco": DiSCO,
    "cocoa": CoCoA,
    "sync_sgd": SynchronousSGD,
    "async_sgd": AsynchronousSGD,
}

_NETWORKS = {
    "infiniband_100g": infiniband_100g,
    "ethernet_10g": ethernet_10g,
    "wan_slow": wan_slow,
}

_DEVICES = {
    "tesla_p100": tesla_p100,
    "cpu_xeon_gold": cpu_xeon_gold,
}


def resolve_network(name_or_model) -> NetworkModel:
    """Accept a registry name or an existing :class:`NetworkModel`."""
    if isinstance(name_or_model, NetworkModel):
        return name_or_model
    if name_or_model in _NETWORKS:
        return _NETWORKS[name_or_model]()
    raise KeyError(
        f"unknown network {name_or_model!r}; available: {sorted(_NETWORKS)}"
    )


def resolve_device(name_or_model, *, backend=None) -> DeviceModel:
    """Accept a registry name, ``"auto"``, or an existing :class:`DeviceModel`.

    ``"auto"`` keys the cost model off the active array backend (the device
    the arrays actually live on).
    """
    if isinstance(name_or_model, DeviceModel):
        return name_or_model
    if name_or_model == "auto":
        return device_for_backend(backend)
    if name_or_model in _DEVICES:
        return _DEVICES[name_or_model]()
    raise KeyError(
        f"unknown device {name_or_model!r}; available: {sorted(_DEVICES) + ['auto']}"
    )


def build_cluster(
    config: ClusterConfig,
) -> Tuple[SimulatedCluster, ClassificationDataset]:
    """Load the configured dataset, shard it, and return (cluster, test set)."""
    train, test = load_dataset(
        config.dataset,
        n_train=config.n_train,
        n_test=config.n_test,
        random_state=config.seed,
        **config.dataset_kwargs,
    )
    fault_spec = config.faults if config.faults is not None else default_faults()
    cluster = SimulatedCluster(
        train,
        config.n_workers,
        network=resolve_network(config.network),
        device=resolve_device(config.device, backend=config.backend),
        sharding=config.sharding,
        executor=config.executor,
        backend=config.backend,
        precision=config.precision,
        engine=config.engine if config.engine is not None else default_engine(),
        faults=FailureModel.from_spec(fault_spec) if fault_spec else None,
        random_state=config.seed,
    )
    return cluster, test


def make_solver(config: SolverConfig) -> DistributedSolver:
    """Instantiate a distributed solver from its registry name and kwargs."""
    if config.name not in SOLVER_REGISTRY:
        raise KeyError(
            f"unknown solver {config.name!r}; available: {sorted(SOLVER_REGISTRY)}"
        )
    kwargs = {k: v for k, v in config.kwargs.items() if k != "label"}
    return SOLVER_REGISTRY[config.name](**kwargs)


def run_method(
    solver_config: SolverConfig,
    cluster_config: ClusterConfig,
    *,
    cluster: Optional[SimulatedCluster] = None,
    test: Optional[ClassificationDataset] = None,
    on_record=None,
    should_stop=None,
) -> RunTrace:
    """Run one solver on one cluster configuration and return its trace.

    Passing a pre-built ``cluster``/``test`` avoids regenerating the dataset
    when several methods share the same workload (as every figure does).
    ``on_record``/``should_stop`` stream per-epoch progress and request
    cooperative cancellation (see :meth:`DistributedSolver.fit`) — the
    training-job API of :mod:`repro.serving` runs every job through them.
    """
    if cluster is None or test is None:
        cluster, test = build_cluster(cluster_config)
    solver = make_solver(solver_config)
    trace = solver.fit(
        cluster, test=test, on_record=on_record, should_stop=should_stop
    )
    trace.info["solver_config"] = {"name": solver_config.name, **solver_config.kwargs}
    trace.info["cluster_config"] = vars(cluster_config).copy()
    return trace


def reference_optimum(
    train: ClassificationDataset,
    lam: float,
    *,
    max_iterations: int = 200,
    cg_max_iter: int = 250,
    cg_tol: float = 1e-10,
    grad_tol: float = 1e-10,
    w0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, float]:
    """High-precision single-node Newton solve used as ``x*`` / ``F*``.

    This mirrors the paper's procedure for Figure 3: the "optimal" solution is
    obtained by running Newton's method on a single node to high precision.
    """
    loss = SoftmaxCrossEntropy(train.X, train.y, train.n_classes, scale="mean")
    objective = RegularizedObjective(loss, L2Regularizer(loss.dim, lam))
    solver = NewtonCG(
        max_iterations=max_iterations,
        grad_tol=grad_tol,
        cg_max_iter=cg_max_iter,
        cg_tol=cg_tol,
    )
    result = solver.minimize(objective, w0)
    return result.w, float(result.objective)
