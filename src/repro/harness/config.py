"""Configuration dataclasses for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class ExperimentScale(str, Enum):
    """How large the reproduction workloads are.

    ``QUICK`` keeps every experiment runnable in seconds (CI / benchmarks),
    ``SMALL`` is the default reproduction scale used in EXPERIMENTS.md, and
    ``PAPER`` matches the paper's sample counts where memory allows (expect
    long run times on a laptop).
    """

    QUICK = "quick"
    SMALL = "small"
    PAPER = "paper"


#: Per-scale training-set sizes for each registered dataset.
#:
#: The HIGGS stand-in is kept much larger than the other quick-scale
#: workloads: with only 28 features its per-epoch compute is tiny, and the
#: epoch-time / scaling experiments (Figure 2) only show the paper's shape
#: when per-worker compute sits above the interconnect latency floor — which
#: is also the regime the real 11M-sample HIGGS occupies.
SCALE_TRAIN_SIZES: Dict[ExperimentScale, Dict[str, int]] = {
    ExperimentScale.QUICK: {
        "higgs_like": 192_000,
        "mnist_like": 4_800,
        "cifar_like": 800,
        "e18_like": 800,
    },
    ExperimentScale.SMALL: {
        "higgs_like": 256_000,
        "mnist_like": 8_000,
        "cifar_like": 4_000,
        "e18_like": 4_000,
    },
    ExperimentScale.PAPER: {
        "higgs_like": 11_000_000,
        "mnist_like": 60_000,
        "cifar_like": 50_000,
        "e18_like": 60_000,
    },
}

#: Per-scale test-set sizes.
SCALE_TEST_SIZES: Dict[ExperimentScale, Dict[str, int]] = {
    ExperimentScale.QUICK: {
        "higgs_like": 800,
        "mnist_like": 400,
        "cifar_like": 200,
        "e18_like": 200,
    },
    ExperimentScale.SMALL: {
        "higgs_like": 4_000,
        "mnist_like": 2_000,
        "cifar_like": 1_000,
        "e18_like": 800,
    },
    ExperimentScale.PAPER: {
        "higgs_like": 1_000_000,
        "mnist_like": 10_000,
        "cifar_like": 10_000,
        "e18_like": 6_000,
    },
}


@dataclass
class ClusterConfig:
    """Everything needed to build a :class:`SimulatedCluster` plus test data.

    Attributes
    ----------
    dataset:
        Registry name (``higgs_like``, ``mnist_like``, ``cifar_like``,
        ``e18_like``).
    n_workers:
        Number of simulated nodes.
    n_train, n_test:
        Sample counts; ``None`` defers to the registry defaults.
    network, device:
        Cost-model names understood by :func:`repro.harness.runner.build_cluster`;
        ``device="auto"`` keys the cost model off the active array backend.
    backend:
        Array backend name (``"numpy"``, ``"cupy"``, ``"torch"``, ``"auto"``)
        or ``None`` for the session default set via
        :func:`repro.backend.set_default_backend` (the CLI's ``--backend``).
    engine:
        Execution engine for the synchronous paths: ``"lockstep"``,
        ``"event"``, or ``None`` for the session default set via
        :func:`set_default_engine` (the CLI's ``--engine``).
    faults:
        Fault-injection spec string understood by
        :meth:`repro.distributed.faults.FailureModel.from_spec` (e.g.
        ``"0@2.5,restart=1.0"`` for a crash/restart,
        ``"part=0@2.0-6.0"`` for a network partition,
        ``"group=0+1,corr=0.8,mtbf=30"`` for correlated failures,
        ``"ckpt=5/0.1/0.5"`` for checkpointed recovery costs), or ``None``
        for the session default set via :func:`set_default_faults` (the
        CLI's ``--faults``).
    precision:
        Precision mode for every worker objective (``"fp64"``, ``"fp32"``,
        ``"mixed"``) or ``None`` for the session default set via
        :func:`repro.backend.set_default_precision` (the CLI's
        ``--precision``); see :mod:`repro.backend.precision`.
    """

    dataset: str
    n_workers: int = 4
    n_train: Optional[int] = None
    n_test: Optional[int] = None
    network: str = "infiniband_100g"
    device: str = "tesla_p100"
    sharding: str = "stratified"
    executor: str = "serial"
    backend: Optional[str] = None
    engine: Optional[str] = None
    faults: Optional[str] = None
    precision: Optional[str] = None
    seed: int = 0
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)


#: session default for ``ClusterConfig.engine`` (see :func:`set_default_engine`)
_DEFAULT_ENGINE = "lockstep"

#: ``lockstep`` and ``event`` simulate time in-process; ``process`` runs each
#: worker as a real OS process (spawn) while keeping the event engine's
#: modelled accounting — see :mod:`repro.distributed.process_engine`.
ENGINE_MODES = ("lockstep", "event", "process")


def set_default_engine(mode: str) -> str:
    """Set the session-wide default execution engine (the CLI's ``--engine``).

    Every :class:`ClusterConfig` whose ``engine`` is ``None`` resolves to this
    value at cluster-build time, so the experiment drivers pick it up without
    threading the flag through every call.
    """
    global _DEFAULT_ENGINE
    if mode not in ENGINE_MODES:
        raise ValueError(f"engine must be one of {ENGINE_MODES}, got {mode!r}")
    _DEFAULT_ENGINE = mode
    return _DEFAULT_ENGINE


def default_engine() -> str:
    return _DEFAULT_ENGINE


#: session default for ``ClusterConfig.faults`` (see :func:`set_default_faults`)
_DEFAULT_FAULTS: Optional[str] = None


def set_default_faults(spec: Optional[str]) -> Optional[str]:
    """Set the session-wide default fault-injection spec (the CLI's ``--faults``).

    The spec is validated eagerly by parsing it with
    :meth:`~repro.distributed.faults.FailureModel.from_spec`; every
    :class:`ClusterConfig` whose ``faults`` is ``None`` resolves to it at
    cluster-build time.  ``None`` clears the default.
    """
    global _DEFAULT_FAULTS
    if spec is not None:
        from repro.distributed.faults import FailureModel

        FailureModel.from_spec(spec)  # raises ValueError on a bad spec
    _DEFAULT_FAULTS = spec
    return _DEFAULT_FAULTS


def default_faults() -> Optional[str]:
    return _DEFAULT_FAULTS


@dataclass
class SolverConfig:
    """A solver name plus its keyword arguments.

    ``name`` must be a key of :data:`repro.harness.runner.SOLVER_REGISTRY`.
    """

    name: str
    kwargs: Dict[str, object] = field(default_factory=dict)

    def label(self) -> str:
        return self.kwargs.get("label", self.name)  # type: ignore[return-value]


def train_size_for(dataset: str, scale: ExperimentScale) -> int:
    """Training-set size of ``dataset`` at the given reproduction scale."""
    sizes = SCALE_TRAIN_SIZES[scale]
    if dataset not in sizes:
        raise KeyError(f"unknown dataset {dataset!r}")
    return sizes[dataset]


def test_size_for(dataset: str, scale: ExperimentScale) -> int:
    """Test-set size of ``dataset`` at the given reproduction scale."""
    sizes = SCALE_TEST_SIZES[scale]
    if dataset not in sizes:
        raise KeyError(f"unknown dataset {dataset!r}")
    return sizes[dataset]
