"""Dependency-free ASCII plotting for traces and scaling curves.

The paper's figures are line plots (objective / accuracy against time, epoch
time against worker count).  Matplotlib is deliberately not a dependency of
this reproduction; these helpers render the same curves as monospace text so
``python -m repro run figure1`` and the examples can show the figure shape
directly in a terminal or a log file.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.traces import RunTrace

_MARKERS = "ox+*#@%&"


def ascii_line_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render one or more ``(x, y)`` series on a shared ASCII canvas.

    Parameters
    ----------
    series:
        Mapping from legend label to ``(x_values, y_values)``.
    width, height:
        Canvas size in characters (excluding axes labels).
    log_x, log_y:
        Plot on a log10 scale (non-positive values are dropped).
    """
    if width < 10 or height < 5:
        raise ValueError("canvas must be at least 10x5 characters")
    if not series:
        raise ValueError("series must not be empty")

    cleaned: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for label, (xs, ys) in series.items():
        x = np.asarray(list(xs), dtype=np.float64)
        y = np.asarray(list(ys), dtype=np.float64)
        if x.shape != y.shape:
            raise ValueError(f"series {label!r} has mismatched x/y lengths")
        mask = np.isfinite(x) & np.isfinite(y)
        if log_x:
            mask &= x > 0
        if log_y:
            mask &= y > 0
        x, y = x[mask], y[mask]
        if x.size:
            cleaned[label] = (np.log10(x) if log_x else x, np.log10(y) if log_y else y)
    if not cleaned:
        return (title or "") + "\n(no finite data to plot)"

    all_x = np.concatenate([x for x, _ in cleaned.values()])
    all_y = np.concatenate([y for _, y in cleaned.values()])
    x_min, x_max = float(all_x.min()), float(all_x.max())
    y_min, y_max = float(all_y.min()), float(all_y.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (x, y) in enumerate(cleaned.values()):
        marker = _MARKERS[idx % len(_MARKERS)]
        cols = np.clip(((x - x_min) / x_span * (width - 1)).round().astype(int), 0, width - 1)
        rows = np.clip(((y - y_min) / y_span * (height - 1)).round().astype(int), 0, height - 1)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker

    def fmt(v: float, logged: bool) -> str:
        return f"{10**v:.3g}" if logged else f"{v:.3g}"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={fmt(y_max, log_y)}, bottom={fmt(y_min, log_y)})")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {fmt(x_min, log_x)} .. {fmt(x_max, log_x)}"
        + ("  [log x]" if log_x else "")
        + ("  [log y]" if log_y else "")
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(cleaned)
    )
    lines.append(" legend: " + legend)
    return "\n".join(lines)


def plot_traces(
    traces: Dict[str, RunTrace],
    *,
    y: str = "objective",
    time_kind: str = "modelled",
    log_x: bool = True,
    log_y: bool = False,
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
) -> str:
    """ASCII plot of a metric against cumulative time for several traces.

    This is the shape of the paper's Figures 1, 4 and 5 (objective or test
    accuracy versus wall-clock on a log time axis).
    """
    series = {}
    for label, trace in traces.items():
        xs, ys = trace.series(y=y, time_kind=time_kind)
        series[label] = (xs, ys)
    return ascii_line_plot(
        series,
        width=width,
        height=height,
        title=title or f"{y} vs {time_kind} time",
        x_label=f"{time_kind} time (s)",
        y_label=y,
        log_x=log_x,
        log_y=log_y,
    )


#: Gantt glyphs per segment kind (busy compute, barrier/idle wait, transfer,
#: crashed-awaiting-restart downtime, alive-but-partitioned unreachability)
_GANTT_GLYPHS = {
    "busy": "#",
    "wait": ".",
    "comm": "~",
    "down": "x",
    "unreachable": "=",
}

#: row markers per recorded fault-event kind (see ``trace.info["faults"]``)
_EVENT_MARKERS = {
    "crash": "X",
    "co-crash": "X",
    "restart": "^",
    "restore": "+",
    "partition": "(",
    "heal": ")",
}


def plot_gantt(
    timelines,
    *,
    width: int = 72,
    until: Optional[float] = None,
    title: Optional[str] = None,
    epoch: Optional[int] = None,
) -> str:
    """ASCII Gantt chart of per-worker timelines (busy ``#``, wait ``.``,
    comm ``~``, crash downtime ``x``, background transfers ``-`` on a
    separate lane).

    ``timelines`` is a :class:`~repro.metrics.traces.RunTrace` (its recorded
    ``info["timelines"]`` are rendered), a sequence of
    :class:`~repro.metrics.timeline.WorkerTimeline` objects, or their
    serialized dictionaries (``RunTrace.info["timelines"]``).  Each row is one
    worker; a cell shows the activity occupying most of its time slice.  This
    is the schedule view behind the straggler and async analyses: persistent
    stragglers show as rows of solid ``#`` while their peers fill with ``.``
    on synchronous runs, and as staggered ``#`` blocks on quorum schedules.

    When the trace carries injected fault events (``info["faults"]``,
    recorded by :mod:`repro.distributed.faults`), each crash/co-crash marks
    ``X``, each restart ``^``, each checkpoint restore ``+``, each partition
    cut ``(`` and each heal ``)`` on the affected worker's row, on top of the
    ``x`` downtime / ``=`` unreachable fills.

    ``epoch`` (1-based, requires a trace) renders a single epoch instead of
    the cumulative fit: the trace's per-epoch boundary snapshots
    (``info["timeline_epochs"]``) locate the window on every worker's clock.
    Fault events are stamped on the global clock; the ones falling inside a
    worker's epoch window are remapped onto the sliced rows, so per-epoch
    Gantts keep their crash/restart/partition markers.
    """
    from repro.metrics.timeline import (
        WorkerTimeline,
        epoch_window,
        slice_epoch,
        timelines_from_dicts,
    )

    fault_events = ()
    if isinstance(timelines, RunTrace):
        trace = timelines
        fault_events = trace.info.get("faults", {}).get("events", ())
        rows = trace.info.get("timelines")
        if not rows:
            raise ValueError(
                "trace has no recorded timelines; run with engine='event' "
                "(or an asynchronous solver)"
            )
        timelines = timelines_from_dicts(rows)
        if epoch is not None:
            boundaries = trace.info.get("timeline_epochs", {}).get("boundaries")
            if not boundaries:
                raise ValueError(
                    "trace has no per-epoch timeline boundaries "
                    "(info['timeline_epochs'])"
                )
            # Events are stamped on the global clock; remap the ones landing
            # inside each worker's epoch window into the sliced frame (the
            # same window + shift slice_epoch applies to the segments).
            # Windows are half-open so a boundary event renders in exactly
            # one epoch; the final epoch keeps its right edge.
            starts, ends, t0 = epoch_window(boundaries, epoch, len(timelines))
            last = epoch == len(boundaries)
            remapped = []
            for event in fault_events:
                wid = int(event.get("worker_id", -1))
                t = float(event.get("time", -1.0))
                if not 0 <= wid < len(starts):
                    continue
                if starts[wid] <= t < ends[wid] or (last and t == ends[wid]):
                    remapped.append({**event, "time": t - t0})
            fault_events = remapped
            timelines = slice_epoch(timelines, boundaries, epoch)
            if title is None:
                title = f"{trace.method} — epoch {epoch}"
    elif epoch is not None:
        raise ValueError(
            "epoch slicing needs a RunTrace with recorded epoch boundaries; "
            "pass the trace instead of raw timelines"
        )
    if not timelines:
        raise ValueError("timelines must not be empty")
    if not isinstance(timelines[0], WorkerTimeline):
        timelines = timelines_from_dicts(timelines)
    if width < 10:
        raise ValueError("canvas must be at least 10 characters wide")
    span = until if until is not None else max(tl.t for tl in timelines)
    if span <= 0:
        return (title or "gantt") + "\n(no recorded activity)"

    def render(segments, glyph_for) -> str:
        # Majority activity per cell; later segments win exact ties so the
        # chart reflects what the worker moved on to.
        occupancy = [{} for _ in range(width)]
        for seg in segments:
            lo = int(np.clip(seg.start / span * width, 0, width - 1))
            hi = int(np.clip(np.ceil(seg.end / span * width), lo + 1, width))
            for cell in range(lo, hi):
                cell_start = cell * span / width
                cell_end = (cell + 1) * span / width
                overlap = min(seg.end, cell_end) - max(seg.start, cell_start)
                if overlap > 0:
                    bucket = occupancy[cell]
                    bucket[seg.kind] = bucket.get(seg.kind, 0.0) + overlap
        chars = []
        for bucket in occupancy:
            if not bucket:
                chars.append(" ")
                continue
            # >= so the later-inserted kind wins exact ties (segments are
            # appended chronologically, dicts preserve insertion order).
            kind, best = None, -1.0
            for candidate, overlap in bucket.items():
                if overlap >= best:
                    kind, best = candidate, overlap
            chars.append(glyph_for.get(kind, "?"))
        return "".join(chars)

    lines = [title] if title else []
    lines.append(
        f"gantt 0 .. {span:.3g}s   legend: # busy   . wait   ~ comm   "
        f"x down   = unreachable   - overlap   X crash   ^ restart   "
        f"+ restore   ( cut   ) heal"
    )
    row_of = {}
    for tl in timelines:
        lines.append(f"w{tl.worker_id:<3d}|{render(tl.segments, _GANTT_GLYPHS)}|")
        row_of[int(tl.worker_id)] = len(lines) - 1
        if tl.background:
            lines.append(f"    |{render(tl.background, {'comm': '-'})}| (background)")
    # Overlay crash/restart markers from recorded fault events.  Rows are
    # "wNNN|<cells>|": the cell area starts at column 5.
    for event in fault_events:
        row = row_of.get(int(event.get("worker_id", -1)))
        t = float(event.get("time", -1.0))
        if row is None or not 0.0 <= t <= span:
            continue
        col = int(np.clip(t / span * width, 0, width - 1))
        marker = _EVENT_MARKERS.get(event.get("kind"), "?")
        chars = list(lines[row])
        chars[5 + col] = marker
        lines[row] = "".join(chars)
    return "\n".join(lines)


def format_schedule(trace: RunTrace) -> str:
    """Human-readable summary of a trace's declared + observed round schedule.

    Solvers that compile their epochs into a
    :class:`~repro.distributed.schedule.RoundPlan` record the declared
    structure and the per-epoch observations in ``trace.info["schedule"]``;
    this renders them as the schedule table the harness reports print.
    """
    schedule = trace.info.get("schedule")
    if not schedule:
        return f"{trace.method}: no declared schedule (event-driven or legacy run)"
    declared = schedule.get("declared") or {}
    rounds = declared.get("rounds")
    lines = [
        f"schedule of {trace.method} ({declared.get('plan', trace.method)}):",
        "  declared: "
        + (
            f"{rounds} communication round(s)/epoch"
            if rounds is not None
            else "dynamic rounds (data-dependent inner loop)"
        )
        + f", {declared.get('local_steps', 0)} local step(s)"
        + (
            f", {declared['overlapped']} overlapped collective(s)"
            if declared.get("overlapped")
            else ""
        )
        + (
            f", on worker failure: {declared['on_failure']}"
            if declared.get("on_failure") not in (None, "raise")
            else ""
        ),
    ]
    def render_steps(steps, indent: str) -> None:
        for step in steps:
            kind = step.get("step")
            if kind == "local":
                lines.append(
                    f"{indent}local     {step.get('label', step.get('name', ''))}"
                )
            elif kind == "collective":
                flags = []
                if step.get("joint_with_previous"):
                    flags.append("joint")
                if step.get("overlap"):
                    flags.append("overlap")
                suffix = f" [{', '.join(flags)}]" if flags else ""
                lines.append(f"{indent}comm      {step['op']}({step['name']}){suffix}")
            elif kind == "dynamic":
                lines.append(
                    f"{indent}dynamic   {step['name']}: {step.get('rounds', '')}"
                )
            elif kind == "repeat":
                lines.append(f"{indent}repeat    x{step['times']}:")
                render_steps(step.get("steps", ()), indent + "  ")

    render_steps(declared.get("steps", ()), "    ")
    epochs = schedule.get("epochs", ())
    if epochs:
        observed = [e["rounds"] for e in epochs]
        total_bytes = sum(e.get("bytes", 0.0) for e in epochs)
        lines.append(
            f"  observed: rounds/epoch min {min(observed)} max {max(observed)} "
            f"over {len(epochs)} epoch(s), {total_bytes:.3g} bytes total"
        )
    return "\n".join(lines)


def format_plan_diff(diff) -> str:
    """Render a :class:`~repro.distributed.schedule_diff.PlanDiff` as text.

    One line per structural entry (changed / added / removed step), the
    header-level differences, and — when the diff was priced against a
    :class:`~repro.distributed.schedule_diff.ClusterProfile` — the modelled
    per-epoch cost of each plan and the delta, broken into compute, exposed
    communication, and expected fault stall.
    """
    lines = [f"plan diff: {diff.plan_a!r} -> {diff.plan_b!r}"]
    if diff.is_empty:
        lines.append("  structurally identical")

    def step_id(d: dict) -> str:
        return f"{d.get('step', '?')}({d.get('name', d.get('label', ''))})"

    for entry in diff.entries:
        if entry.kind == "changed":
            what = ", ".join(
                f"{key}: {old!r} -> {new!r}"
                for key, (old, new) in sorted(entry.fields.items())
            )
            lines.append(f"  ~ step {entry.index:>2} {step_id(entry.a)} {what}")
        elif entry.kind == "added":
            lines.append(f"  + step {entry.index:>2} {step_id(entry.b)}")
        else:
            lines.append(f"  - step {entry.index:>2} {step_id(entry.a)}")
    for key, vals in sorted(diff.header.items()):
        lines.append(f"  ~ header {key}: {vals['a']!r} -> {vals['b']!r}")
    if diff.estimate_a is not None and diff.estimate_b is not None:
        for tag, est in (("a", diff.estimate_a), ("b", diff.estimate_b)):
            lines.append(
                f"  modelled[{tag}] {est.plan}: {est.seconds:.3e}s/epoch "
                f"(compute {est.compute_seconds:.3e}, "
                f"comm {est.comm_seconds:.3e}, "
                f"hidden {est.hidden_seconds:.3e}, "
                f"fault stall {est.fault_stall_seconds:.3e}, "
                f"{est.rounds} round(s))"
                + (" [dynamic]" if est.dynamic else "")
            )
        delta = diff.modelled_delta
        sign = "+" if delta >= 0 else ""
        lines.append(
            f"  modelled delta: {sign}{delta:.3e}s/epoch "
            f"({'b slower' if delta > 0 else 'b faster' if delta < 0 else 'even'})"
        )
    return "\n".join(lines)


def plot_scaling(
    rows: Sequence[dict],
    *,
    x_key: str = "workers",
    y_key: str = "avg_epoch_time_ms",
    group_key: str = "method",
    width: int = 60,
    height: int = 15,
    title: Optional[str] = None,
) -> str:
    """ASCII plot of a scaling study (Figure 2's epoch time vs worker count)."""
    groups: Dict[str, Tuple[list, list]] = {}
    for row in rows:
        label = str(row.get(group_key, ""))
        groups.setdefault(label, ([], []))
        value = row.get(y_key)
        x = row.get(x_key)
        if value is None or x is None:
            continue
        if isinstance(value, float) and not math.isfinite(value):
            continue
        groups[label][0].append(float(x))
        groups[label][1].append(float(value))
    return ascii_line_plot(
        {k: v for k, v in groups.items() if v[0]},
        width=width,
        height=height,
        title=title or f"{y_key} vs {x_key}",
        x_label=x_key,
        y_label=y_key,
    )
