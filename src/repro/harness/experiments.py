"""Per-figure / per-table experiment drivers.

Every public function regenerates one table or figure of the paper's
evaluation section (plus two ablations for design choices DESIGN.md calls
out).  Each returns a dictionary with structured results (``rows`` and/or
``traces``) and a plain-text ``report`` mirroring what the paper plots — the
benchmark suite simply calls these functions and prints the reports.

All functions accept an :class:`~repro.harness.config.ExperimentScale`; the
default ``QUICK`` scale finishes in seconds so the whole suite can run in CI,
while ``SMALL``/``PAPER`` scale the workloads up (see EXPERIMENTS.md for the
recorded results).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


from repro.datasets.registry import DATASET_REGISTRY, PAPER_TABLE1, load_dataset
from repro.harness.config import (
    ClusterConfig,
    ExperimentScale,
    SolverConfig,
    test_size_for,
    train_size_for,
)
from repro.harness.runner import build_cluster, reference_optimum, run_method
from repro.metrics.summary import format_table
from repro.metrics.traces import (
    RunTrace,
    average_epoch_time,
    speedup_ratio,
    time_to_objective,
    time_to_relative_objective,
)

#: paper-name mapping used in the reports
_PAPER_NAMES = {
    "higgs_like": "HIGGS",
    "mnist_like": "MNIST",
    "cifar_like": "CIFAR-10",
    "e18_like": "E18",
}

_ALL_DATASETS = ("higgs_like", "mnist_like", "cifar_like", "e18_like")


def _scale(scale) -> ExperimentScale:
    return ExperimentScale(scale)


def _epoch_budget(scale: ExperimentScale, quick: int, small: int, paper: int) -> int:
    return {
        ExperimentScale.QUICK: quick,
        ExperimentScale.SMALL: small,
        ExperimentScale.PAPER: paper,
    }[scale]


def _cluster_config(
    dataset: str,
    n_workers: int,
    scale: ExperimentScale,
    *,
    n_train: Optional[int] = None,
    seed: int = 0,
) -> ClusterConfig:
    return ClusterConfig(
        dataset=dataset,
        n_workers=n_workers,
        n_train=n_train if n_train is not None else train_size_for(dataset, scale),
        n_test=test_size_for(dataset, scale),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1_datasets(scale=ExperimentScale.QUICK, *, seed: int = 0) -> dict:
    """Table 1: description of the datasets (paper values vs. reproduction).

    The reproduction columns describe the synthetic stand-ins actually
    instantiated at the requested scale.
    """
    scale = _scale(scale)
    rows: List[dict] = []
    for name in _ALL_DATASETS:
        spec = DATASET_REGISTRY[name]
        paper_key = {"higgs_like": "higgs", "mnist_like": "mnist",
                     "cifar_like": "cifar10", "e18_like": "e18"}[name]
        paper = PAPER_TABLE1[paper_key]
        train, test = load_dataset(
            name,
            n_train=train_size_for(name, scale),
            n_test=test_size_for(name, scale),
            random_state=seed,
        )
        rows.append(
            {
                "dataset": _PAPER_NAMES[name],
                "classes_paper": paper["n_classes"],
                "classes_repro": train.n_classes,
                "samples_paper": paper["n_samples"],
                "samples_repro": train.n_samples + test.n_samples,
                "test_paper": paper["test_size"],
                "test_repro": test.n_samples,
                "features_paper": paper["n_features"],
                "features_repro": train.n_features,
                "conditioning": spec.conditioning,
            }
        )
    report = format_table(rows, title="Table 1 — datasets (paper vs. reproduction)")
    return {"rows": rows, "report": report}


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------
def figure1_second_order_comparison(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 4,
    lam: float = 1e-5,
    seed: int = 0,
) -> dict:
    """Figure 1: training objective vs. time for the second-order methods.

    Newton-ADMM and GIANT use identical shared hyper-parameters (10 CG
    iterations at 1e-4 tolerance, 10 line-search iterations), as the paper
    specifies for fairness; InexactDANE and AIDE run fewer outer epochs
    because their per-epoch cost is orders of magnitude higher.
    """
    scale = _scale(scale)
    newton_epochs = _epoch_budget(scale, 25, 60, 100)
    dane_epochs = _epoch_budget(scale, 3, 5, 10)
    cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
    cluster, test = build_cluster(cluster_config)

    shared = dict(lam=lam, cg_max_iter=10, cg_tol=1e-4, line_search_max_iter=10)
    solvers = [
        SolverConfig("newton_admm", {**shared, "max_epochs": newton_epochs}),
        SolverConfig("giant", {**shared, "max_epochs": newton_epochs}),
        SolverConfig(
            "inexact_dane",
            {"lam": lam, "max_epochs": dane_epochs, "eta": 1.0, "mu": 0.0},
        ),
        SolverConfig(
            "aide",
            {"lam": lam, "max_epochs": dane_epochs, "eta": 1.0, "mu": 0.0, "tau": 1.0},
        ),
    ]

    traces: Dict[str, RunTrace] = {}
    for solver_config in solvers:
        traces[solver_config.name] = run_method(
            solver_config, cluster_config, cluster=cluster, test=test
        )

    # Objective target used in the paper's narrative ("to reach an objective
    # value less than 0.25 on MNIST ..."); at reproduction scale we use the
    # best objective any method achieved plus 10%.
    best = min(t.best_objective() for t in traces.values())
    target = best * 1.10
    rows = []
    for name, trace in traces.items():
        rows.append(
            {
                "method": name,
                "epochs": trace.n_epochs,
                "final_objective": trace.final.objective,
                "best_objective": trace.best_objective(),
                "avg_epoch_time_s": average_epoch_time(trace),
                "time_to_target_s": time_to_objective(trace, target),
                "total_modelled_time_s": trace.total_time(),
            }
        )
    report = format_table(
        rows,
        title=(
            f"Figure 1 — second-order methods on {_PAPER_NAMES.get(dataset, dataset)} "
            f"(lambda={lam:g}, target objective {target:.4g})"
        ),
    )
    return {"rows": rows, "traces": traces, "target": target, "report": report}


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------
def figure2_epoch_times(
    scale=ExperimentScale.QUICK,
    *,
    datasets: Sequence[str] = _ALL_DATASETS,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    lam: float = 1e-5,
    seed: int = 0,
) -> dict:
    """Figure 2: average epoch time under strong and weak scaling.

    Strong scaling keeps the training-set size fixed while workers increase;
    weak scaling keeps the per-worker sample count fixed.  Both Newton-ADMM
    and GIANT are run for a short, fixed number of epochs — the figure reports
    per-epoch cost, not convergence.
    """
    scale = _scale(scale)
    epochs = _epoch_budget(scale, 3, 5, 10)
    max_workers = max(worker_counts)
    rows: List[dict] = []

    for dataset in datasets:
        strong_total = train_size_for(dataset, scale)
        per_worker = max(strong_total // max_workers, 50)
        for mode in ("strong", "weak"):
            for n_workers in worker_counts:
                n_train = strong_total if mode == "strong" else per_worker * n_workers
                cluster_config = _cluster_config(
                    dataset, n_workers, scale, n_train=n_train, seed=seed
                )
                cluster, test = build_cluster(cluster_config)
                for method in ("newton_admm", "giant"):
                    solver_config = SolverConfig(
                        method,
                        dict(lam=lam, max_epochs=epochs, cg_max_iter=10, cg_tol=1e-4,
                             line_search_max_iter=10, record_accuracy=False),
                    )
                    trace = run_method(
                        solver_config, cluster_config, cluster=cluster, test=test
                    )
                    rows.append(
                        {
                            "dataset": _PAPER_NAMES[dataset],
                            "scaling": mode,
                            "workers": n_workers,
                            "n_train": n_train,
                            "method": method,
                            "avg_epoch_time_ms": 1e3 * average_epoch_time(trace),
                            "compute_ms": 1e3 * trace.final.compute_time / trace.n_epochs,
                            "comm_ms": 1e3 * trace.final.comm_time / trace.n_epochs,
                        }
                    )
    report = format_table(
        rows, title="Figure 2 — average epoch time (ms), strong & weak scaling"
    )
    return {"rows": rows, "report": report}


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------
def figure3_speedup_ratios(
    scale=ExperimentScale.QUICK,
    *,
    strong_datasets: Sequence[str] = _ALL_DATASETS,
    weak_datasets: Sequence[str] = ("mnist_like", "cifar_like", "higgs_like"),
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    lam: float = 1e-5,
    theta: float = 0.05,
    seed: int = 0,
) -> dict:
    """Figure 3: GIANT-over-Newton-ADMM speed-up ratio to relative objective theta.

    ``x*`` is obtained from a high-precision single-node Newton solve on the
    same training set, exactly as in the paper (and, like the paper, E18 is
    excluded from weak scaling because the weak-scaled set would be too large
    for the single-node reference).
    """
    scale = _scale(scale)
    epochs = _epoch_budget(scale, 40, 80, 200)
    max_workers = max(worker_counts)
    rows: List[dict] = []
    f_star_cache: Dict[Tuple[str, int], float] = {}

    def get_f_star(dataset: str, n_train: int, seed: int) -> float:
        key = (dataset, n_train)
        if key not in f_star_cache:
            train, _ = load_dataset(
                dataset, n_train=n_train, n_test=test_size_for(dataset, scale),
                random_state=seed,
            )
            _, f_star = reference_optimum(
                train, lam, max_iterations=60, cg_max_iter=60, cg_tol=1e-8,
                grad_tol=1e-9,
            )
            f_star_cache[key] = f_star
        return f_star_cache[key]

    plans = [("strong", d) for d in strong_datasets] + [
        ("weak", d) for d in weak_datasets
    ]
    for mode, dataset in plans:
        strong_total = train_size_for(dataset, scale)
        per_worker = max(strong_total // max_workers, 50)
        for n_workers in worker_counts:
            n_train = strong_total if mode == "strong" else per_worker * n_workers
            f_star = get_f_star(dataset, n_train, seed)
            cluster_config = _cluster_config(
                dataset, n_workers, scale, n_train=n_train, seed=seed
            )
            cluster, test = build_cluster(cluster_config)
            traces: Dict[str, RunTrace] = {}
            for method in ("newton_admm", "giant"):
                solver_config = SolverConfig(
                    method,
                    dict(lam=lam, max_epochs=epochs, cg_max_iter=10, cg_tol=1e-4,
                         line_search_max_iter=10, record_accuracy=False),
                )
                traces[method] = run_method(
                    solver_config, cluster_config, cluster=cluster, test=test
                )
            ratio = speedup_ratio(traces["giant"], traces["newton_admm"], f_star, theta=theta)
            rows.append(
                {
                    "dataset": _PAPER_NAMES[dataset],
                    "scaling": mode,
                    "workers": n_workers,
                    "f_star": f_star,
                    "admm_time_s": time_to_relative_objective(
                        traces["newton_admm"], f_star, theta=theta
                    ),
                    "giant_time_s": time_to_relative_objective(
                        traces["giant"], f_star, theta=theta
                    ),
                    "speedup_ratio": ratio,
                }
            )
    report = format_table(
        rows,
        title=f"Figure 3 — speed-up ratio of Newton-ADMM over GIANT (theta={theta})",
    )
    return {"rows": rows, "report": report}


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------
def figure4_first_order_comparison(
    scale=ExperimentScale.QUICK,
    *,
    datasets: Sequence[str] = _ALL_DATASETS,
    lam: float = 1e-5,
    sgd_step_sizes: Sequence[float] = (1e-2, 1e-1, 1.0),
    admm_cg_iters: Sequence[int] = (10, 20, 30),
    seed: int = 0,
) -> dict:
    """Figure 4: Newton-ADMM vs synchronous SGD (objective & accuracy vs time).

    Following the paper: 8 workers (16 for E18), SGD batch size 128 with the
    best step size from a sweep, Newton-ADMM with the best CG budget from
    {10, 20, 30} at tolerance 1e-10.
    """
    scale = _scale(scale)
    epochs = _epoch_budget(scale, 15, 50, 100)
    rows: List[dict] = []
    traces: Dict[str, Dict[str, RunTrace]] = {}

    for dataset in datasets:
        n_workers = 16 if dataset == "e18_like" else 8
        cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
        cluster, test = build_cluster(cluster_config)

        # --- Newton-ADMM: best CG budget -------------------------------------
        best_admm: Optional[RunTrace] = None
        for cg in admm_cg_iters:
            trace = run_method(
                SolverConfig(
                    "newton_admm",
                    dict(lam=lam, max_epochs=epochs, cg_max_iter=cg, cg_tol=1e-10),
                ),
                cluster_config,
                cluster=cluster,
                test=test,
            )
            if best_admm is None or trace.final.objective < best_admm.final.objective:
                best_admm = trace

        # --- synchronous SGD: best step size ----------------------------------
        best_sgd: Optional[RunTrace] = None
        for step in sgd_step_sizes:
            trace = run_method(
                SolverConfig(
                    "sync_sgd",
                    dict(lam=lam, max_epochs=epochs, step_size=step, batch_size=128),
                ),
                cluster_config,
                cluster=cluster,
                test=test,
            )
            if (
                best_sgd is None
                or trace.final.objective < best_sgd.final.objective
                or not math.isfinite(best_sgd.final.objective)
            ):
                if math.isfinite(trace.final.objective):
                    best_sgd = trace
        if best_sgd is None or best_admm is None:
            raise RuntimeError("figure4: no finite run found")

        traces[dataset] = {"newton_admm": best_admm, "sync_sgd": best_sgd}
        # Speed-up: time for SGD to reach its own final objective vs. time for
        # ADMM to reach the same value (the paper's headline 22.5x on HIGGS).
        sgd_final = best_sgd.final.objective
        admm_time = time_to_objective(best_admm, sgd_final)
        sgd_time = best_sgd.total_time()
        rows.append(
            {
                "dataset": _PAPER_NAMES[dataset],
                "workers": n_workers,
                "admm_final_obj": best_admm.final.objective,
                "sgd_final_obj": sgd_final,
                "admm_test_acc": best_admm.final.test_accuracy,
                "sgd_test_acc": best_sgd.final.test_accuracy,
                "admm_time_to_sgd_obj_s": admm_time,
                "sgd_total_time_s": sgd_time,
                "speedup_vs_sgd": (sgd_time / admm_time) if admm_time > 0 else float("inf"),
            }
        )
    report = format_table(
        rows, title="Figure 4 — Newton-ADMM vs synchronous SGD (modelled time)"
    )
    return {"rows": rows, "traces": traces, "report": report}


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------
def figure5_e18_weak_scaling(
    scale=ExperimentScale.QUICK,
    *,
    n_workers: int = 16,
    lams: Sequence[float] = (1e-3, 1e-5),
    seed: int = 0,
) -> dict:
    """Figure 5: weak scaling on the E18-like workload with 16 workers.

    Both solvers are run at both regularization strengths; the report gives
    average epoch times and final objectives (the paper's headline: ~1.87 s
    per epoch for Newton-ADMM vs 2.44 s for GIANT despite ~280k features).
    """
    scale = _scale(scale)
    epochs = _epoch_budget(scale, 15, 40, 100)
    per_worker = max(train_size_for("e18_like", scale) // 8, 50)
    n_train = per_worker * n_workers
    rows: List[dict] = []
    traces: Dict[str, RunTrace] = {}

    for lam in lams:
        cluster_config = _cluster_config(
            "e18_like", n_workers, scale, n_train=n_train, seed=seed
        )
        cluster, test = build_cluster(cluster_config)
        for method in ("newton_admm", "giant"):
            trace = run_method(
                SolverConfig(
                    method,
                    dict(lam=lam, max_epochs=epochs, cg_max_iter=10, cg_tol=1e-4),
                ),
                cluster_config,
                cluster=cluster,
                test=test,
            )
            traces[f"{method}_lam{lam:g}"] = trace
            rows.append(
                {
                    "lambda": lam,
                    "method": method,
                    "workers": n_workers,
                    "n_train": n_train,
                    "avg_epoch_time_s": average_epoch_time(trace),
                    "final_objective": trace.final.objective,
                    "final_test_acc": trace.final.test_accuracy,
                }
            )
    report = format_table(
        rows, title="Figure 5 — E18-like weak scaling with 16 workers"
    )
    return {"rows": rows, "traces": traces, "report": report}


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------
def ablation_penalty_policies(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 4,
    lam: float = 1e-5,
    seed: int = 0,
) -> dict:
    """Ablation: Spectral Penalty Selection vs residual balancing vs fixed rho."""
    scale = _scale(scale)
    epochs = _epoch_budget(scale, 25, 60, 100)
    cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
    cluster, test = build_cluster(cluster_config)
    rows = []
    traces = {}
    for penalty in ("spectral", "residual_balancing", "fixed"):
        trace = run_method(
            SolverConfig(
                "newton_admm",
                dict(lam=lam, max_epochs=epochs, penalty=penalty, cg_max_iter=10),
            ),
            cluster_config,
            cluster=cluster,
            test=test,
        )
        traces[penalty] = trace
        rows.append(
            {
                "penalty": penalty,
                "final_objective": trace.final.objective,
                "best_objective": trace.best_objective(),
                "final_primal_residual": trace.final.extras.get("primal_residual"),
                "avg_epoch_time_s": average_epoch_time(trace),
            }
        )
    report = format_table(rows, title="Ablation — ADMM penalty policies")
    return {"rows": rows, "traces": traces, "report": report}


def ablation_cg_budget(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 4,
    lam: float = 1e-5,
    cg_iters: Sequence[int] = (5, 10, 20, 30),
    seed: int = 0,
) -> dict:
    """Ablation: inner CG budget of the local Newton solves (Fig. 4 caption sweep)."""
    scale = _scale(scale)
    epochs = _epoch_budget(scale, 20, 50, 100)
    cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
    cluster, test = build_cluster(cluster_config)
    rows = []
    traces = {}
    for cg in cg_iters:
        trace = run_method(
            SolverConfig(
                "newton_admm",
                dict(lam=lam, max_epochs=epochs, cg_max_iter=cg, cg_tol=1e-10),
            ),
            cluster_config,
            cluster=cluster,
            test=test,
        )
        traces[cg] = trace
        rows.append(
            {
                "cg_max_iter": cg,
                "final_objective": trace.final.objective,
                "avg_epoch_time_s": average_epoch_time(trace),
                "total_time_s": trace.total_time(),
            }
        )
    report = format_table(rows, title="Ablation — CG budget per local Newton solve")
    return {"rows": rows, "traces": traces, "report": report}


def ablation_over_relaxation(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 4,
    lam: float = 1e-5,
    alphas: Sequence[float] = (1.0, 1.5, 1.8),
    seed: int = 0,
) -> dict:
    """Ablation: ADMM over-relaxation factor (alpha = 1 is the paper's setting)."""
    scale = _scale(scale)
    epochs = _epoch_budget(scale, 25, 60, 100)
    cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
    cluster, test = build_cluster(cluster_config)
    rows = []
    traces = {}
    for alpha in alphas:
        trace = run_method(
            SolverConfig(
                "newton_admm",
                dict(lam=lam, max_epochs=epochs, over_relaxation=alpha, cg_max_iter=10),
            ),
            cluster_config,
            cluster=cluster,
            test=test,
        )
        traces[alpha] = trace
        rows.append(
            {
                "over_relaxation": alpha,
                "final_objective": trace.final.objective,
                "best_objective": trace.best_objective(),
                "final_primal_residual": trace.final.extras.get("primal_residual"),
                "final_dual_residual": trace.final.extras.get("dual_residual"),
            }
        )
    report = format_table(rows, title="Ablation — ADMM over-relaxation factor")
    return {"rows": rows, "traces": traces, "report": report}


def ablation_interconnect_sensitivity(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 8,
    lam: float = 1e-5,
    networks: Sequence[str] = ("infiniband_100g", "ethernet_10g", "wan_slow"),
    seed: int = 0,
) -> dict:
    """Ablation: interconnect sensitivity of Newton-ADMM vs GIANT.

    The paper argues that Newton-ADMM's single communication round per
    iteration (vs GIANT's three) matters little on 100 Gb/s InfiniBand but
    becomes decisive "in environments with low bandwidth and high latency".
    This sweep re-runs both methods on progressively slower interconnects and
    reports the epoch-time ratio.
    """
    scale = _scale(scale)
    epochs = _epoch_budget(scale, 3, 5, 10)
    rows: List[dict] = []
    for network in networks:
        cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
        cluster_config.network = network
        cluster, test = build_cluster(cluster_config)
        epoch_times = {}
        comm_times = {}
        for method in ("newton_admm", "giant"):
            trace = run_method(
                SolverConfig(
                    method,
                    dict(lam=lam, max_epochs=epochs, cg_max_iter=10, cg_tol=1e-4,
                         record_accuracy=False),
                ),
                cluster_config,
                cluster=cluster,
                test=test,
            )
            epoch_times[method] = average_epoch_time(trace)
            comm_times[method] = trace.final.comm_time / trace.n_epochs
        rows.append(
            {
                "network": network,
                "admm_epoch_s": epoch_times["newton_admm"],
                "giant_epoch_s": epoch_times["giant"],
                "admm_comm_s": comm_times["newton_admm"],
                "giant_comm_s": comm_times["giant"],
                "giant_over_admm": epoch_times["giant"] / epoch_times["newton_admm"],
            }
        )
    report = format_table(
        rows, title="Ablation — interconnect sensitivity (epoch time, ADMM vs GIANT)"
    )
    return {"rows": rows, "report": report}


def ablation_straggler_sensitivity(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 8,
    lam: float = 1e-5,
    slowdowns: Sequence[float] = (1.0, 4.0, 16.0),
    seed: int = 0,
) -> dict:
    """Ablation: effect of a persistent straggler node on epoch time.

    Both methods are synchronous, so a straggler inflates every epoch; the
    sweep quantifies by how much as the straggler's slowdown factor grows.
    """
    from repro.distributed.cluster import SimulatedCluster
    from repro.distributed.stragglers import StragglerModel
    from repro.datasets.registry import load_dataset as _load

    scale = _scale(scale)
    epochs = _epoch_budget(scale, 3, 5, 10)
    n_train = train_size_for(dataset, scale)
    n_test = test_size_for(dataset, scale)
    train, test = _load(dataset, n_train=n_train, n_test=n_test, random_state=seed)
    rows: List[dict] = []
    for slowdown in slowdowns:
        for method in ("newton_admm", "giant"):
            straggler = (
                None
                if slowdown <= 1.0
                else StragglerModel(slowdown=slowdown, persistent_stragglers=[0])
            )
            cluster = SimulatedCluster(
                train, n_workers, straggler=straggler, random_state=seed
            )
            cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
            trace = run_method(
                SolverConfig(
                    method,
                    dict(lam=lam, max_epochs=epochs, cg_max_iter=10,
                         record_accuracy=False),
                ),
                cluster_config,
                cluster=cluster,
                test=test,
            )
            rows.append(
                {
                    "slowdown": slowdown,
                    "method": method,
                    "avg_epoch_time_s": average_epoch_time(trace),
                    "compute_s": trace.final.compute_time / trace.n_epochs,
                    "comm_s": trace.final.comm_time / trace.n_epochs,
                }
            )
    report = format_table(
        rows, title="Ablation — straggler sensitivity (persistent slow worker 0)"
    )
    return {"rows": rows, "report": report}


def ablation_overlap_giant(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 8,
    lam: float = 1e-5,
    network: str = "wan_slow",
    seed: int = 0,
) -> dict:
    """Ablation: overlapping GIANT's gradient all-reduce with independent work.

    GIANT's round-1 all-reduce can ride in the background while every worker
    evaluates the line search's step-independent term ``f_i(w)`` — the one
    piece of local work in the iteration that consumes neither the reduced
    gradient nor the direction, so the overlap is realizable on hardware (the
    CG solves stay strictly after the join; the schedule IR rejects plans
    that read an in-flight transfer).  On a network-bound configuration
    (slow WAN, event engine) the overlap variant's modelled epoch time must
    be strictly lower; the iterates are bit-identical because only the
    modelled schedule changes.  The report includes the declared round
    schedules so the difference is visible as structure, not just as a
    number.
    """
    from repro.harness.plotting import format_schedule

    scale = _scale(scale)
    epochs = _epoch_budget(scale, 4, 8, 15)
    rows: List[dict] = []
    traces: Dict[str, RunTrace] = {}
    for overlap in (False, True):
        cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
        cluster_config.network = network
        cluster_config.engine = "event"
        cluster, test = build_cluster(cluster_config)
        label = "giant_overlap" if overlap else "giant"
        trace = run_method(
            SolverConfig(
                "giant",
                dict(lam=lam, max_epochs=epochs, cg_max_iter=10, cg_tol=1e-4,
                     overlap_gradient=overlap, record_accuracy=False),
            ),
            cluster_config,
            cluster=cluster,
            test=test,
        )
        traces[label] = trace
        rows.append(
            {
                "variant": label,
                "overlap_gradient": overlap,
                "avg_epoch_time_s": average_epoch_time(trace),
                "comm_s_per_epoch": trace.final.comm_time / trace.n_epochs,
                "final_objective": trace.final.objective,
                "comm_rounds": trace.final.comm_rounds,
            }
        )
    base, over = rows[0], rows[1]
    saving = base["avg_epoch_time_s"] - over["avg_epoch_time_s"]
    rows.append(
        {
            "variant": "modelled saving",
            "overlap_gradient": "",
            "avg_epoch_time_s": saving,
            "comm_s_per_epoch": base["comm_s_per_epoch"] - over["comm_s_per_epoch"],
            "final_objective": base["final_objective"] - over["final_objective"],
            "comm_rounds": 0,
        }
    )
    report = (
        format_table(
            rows,
            title=(
                f"Ablation — GIANT gradient-allreduce overlap on {network} "
                f"({n_workers} workers, event engine)"
            ),
        )
        + "\n\n"
        + format_schedule(traces["giant"])
        + "\n\n"
        + format_schedule(traces["giant_overlap"])
    )
    return {"rows": rows, "traces": traces, "report": report}


def ablation_async_admm(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 8,
    lam: float = 1e-5,
    slowdown: float = 8.0,
    max_staleness: int = 10,
    seed: int = 0,
) -> dict:
    """Ablation: asynchronous execution under a persistent straggler.

    Synchronous Newton-ADMM pays the straggler's slowdown at every barrier;
    the event-driven variants do not.  The sweep runs sync Newton-ADMM,
    quorum-based async Newton-ADMM (quorum ``N - 1``, bounded staleness) and
    async parameter-server SGD on the same straggling cluster and reports the
    modelled time each needs to reach the *sync* run's final objective, plus
    the measured staleness of the asynchronous schedules.
    """
    from repro.datasets.registry import load_dataset as _load
    from repro.distributed.cluster import SimulatedCluster
    from repro.distributed.stragglers import StragglerModel

    scale = _scale(scale)
    sync_epochs = _epoch_budget(scale, 10, 25, 60)
    # One async "epoch" is a single z-update fed by ~quorum workers, versus a
    # full barrier over all N for sync, so the async run gets a larger budget;
    # the comparison below is on modelled *time*, not epochs.
    async_epochs = 4 * sync_epochs
    n_train = train_size_for(dataset, scale)
    n_test = test_size_for(dataset, scale)
    train, test = _load(dataset, n_train=n_train, n_test=n_test, random_state=seed)

    def make_cluster() -> SimulatedCluster:
        return SimulatedCluster(
            train,
            n_workers,
            straggler=StragglerModel(
                slowdown=slowdown, persistent_stragglers=[0], random_state=seed
            ),
            engine="event",
            random_state=seed,
        )

    cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
    shared = dict(lam=lam, cg_max_iter=10, cg_tol=1e-4, record_accuracy=False)
    solvers = [
        SolverConfig("newton_admm", {**shared, "max_epochs": sync_epochs}),
        SolverConfig(
            "async_newton_admm",
            {
                **shared,
                "max_epochs": async_epochs,
                "quorum": max(n_workers - 1, 1),
                "max_staleness": max_staleness,
            },
        ),
        SolverConfig(
            "async_sgd",
            dict(lam=lam, max_epochs=sync_epochs, step_size=0.1, batch_size=128,
                 record_accuracy=False),
        ),
    ]
    traces: Dict[str, RunTrace] = {}
    for solver_config in solvers:
        traces[solver_config.name] = run_method(
            solver_config, cluster_config, cluster=make_cluster(), test=test
        )

    target = traces["newton_admm"].final.objective
    rows = []
    for name, trace in traces.items():
        final = trace.final
        rows.append(
            {
                "method": name,
                "epochs": trace.n_epochs,
                "final_objective": final.objective,
                "total_modelled_time_s": trace.total_time(),
                "time_to_sync_objective_s": time_to_objective(trace, target),
                "comm_rounds": final.comm_rounds,
                "mean_staleness": final.extras.get(
                    "mean_staleness", final.extras.get("staleness", 0.0)
                ),
            }
        )
    report = format_table(
        rows,
        title=(
            f"Ablation — async execution under a persistent straggler "
            f"(slowdown {slowdown:g}x, worker 0, {n_workers} workers)"
        ),
    )
    return {"rows": rows, "traces": traces, "target": target, "report": report}


def _fault_policy_sweep(
    scale,
    *,
    dataset: str,
    n_workers: int,
    lam: float,
    seed: int,
    plan_fn,
    expected_error,
    nofault_policy: str,
    raise_outcome,
    stall_outcome: str,
    survived_message: str,
) -> dict:
    """Shared scaffolding of the fault-recovery ablations.

    Calibrates a no-fault synchronous Newton-ADMM run, asks ``plan_fn`` to
    turn its total modelled time into a fault schedule (``{"fault_model":
    () -> FailureModel, "title": str, ...}``), then replays the identical
    schedule through strict-sync ``raise`` (must abort with
    ``expected_error``), sync ``stall`` and quorum async Newton-ADMM on the
    event engine.  Returns the row table plus the raw pieces
    (``baseline``/``stalled``/``asyn`` traces, the async ``solver`` for fold
    accounting, ``base_time``, ``plan``) for driver-specific post-processing.
    """
    from repro.admm.async_newton_admm import AsyncNewtonADMM
    from repro.datasets.registry import load_dataset as _load
    from repro.distributed.cluster import SimulatedCluster

    scale = _scale(scale)
    sync_epochs = _epoch_budget(scale, 10, 25, 60)
    # One async "epoch" is one z-update fed by ~quorum workers; budget like
    # the async ablation so the comparison is on modelled time, not epochs.
    async_epochs = 4 * sync_epochs
    train, test = _load(
        dataset,
        n_train=train_size_for(dataset, scale),
        n_test=test_size_for(dataset, scale),
        random_state=seed,
    )

    def make_cluster(faults=None) -> "SimulatedCluster":
        return SimulatedCluster(
            train, n_workers, faults=faults, engine="event", random_state=seed
        )

    cluster_config = _cluster_config(dataset, n_workers, scale, seed=seed)
    shared = dict(lam=lam, cg_max_iter=10, cg_tol=1e-4, record_accuracy=False)

    # ---- calibration: the no-fault synchronous run -------------------------
    baseline = run_method(
        SolverConfig("newton_admm", {**shared, "max_epochs": sync_epochs}),
        cluster_config,
        cluster=make_cluster(),
        test=test,
    )
    base_time = baseline.total_time()
    target = baseline.final.objective
    base_t2t = time_to_objective(baseline, target)
    plan = plan_fn(base_time)
    fault_model = plan["fault_model"]

    traces: Dict[str, RunTrace] = {"newton_admm_nofault": baseline}
    rows: List[dict] = [
        {
            "method": "newton_admm",
            "policy": nofault_policy,
            "outcome": "completed",
            "final_objective": target,
            "total_modelled_time_s": base_time,
            "time_to_target_s": base_t2t,
            "modelled_delta_s": 0.0,
        }
    ]

    # ---- strict sync, policy 'raise': the run aborts -----------------------
    try:
        run_method(
            SolverConfig("newton_admm", {**shared, "max_epochs": sync_epochs}),
            cluster_config,
            cluster=make_cluster(fault_model()),
            test=test,
        )
        raise RuntimeError(survived_message)
    except expected_error as exc:
        rows.append(
            {
                "method": "newton_admm",
                "policy": "raise",
                "outcome": raise_outcome(exc),
                "final_objective": float("nan"),
                "total_modelled_time_s": float("nan"),
                "time_to_target_s": float("nan"),
                "modelled_delta_s": float("nan"),
            }
        )

    # ---- strict sync, policy 'stall': completes, paying the wait ------------
    stalled = run_method(
        SolverConfig(
            "newton_admm",
            {**shared, "max_epochs": sync_epochs, "on_failure": "stall"},
        ),
        cluster_config,
        cluster=make_cluster(fault_model()),
        test=test,
    )
    traces["newton_admm_stall"] = stalled
    stall_t2t = time_to_objective(stalled, target)
    rows.append(
        {
            "method": "newton_admm",
            "policy": "stall",
            "outcome": stall_outcome,
            "final_objective": stalled.final.objective,
            "total_modelled_time_s": stalled.total_time(),
            "time_to_target_s": stall_t2t,
            "modelled_delta_s": stall_t2t - base_t2t,
        }
    )

    # ---- quorum async: rides through ----------------------------------------
    async_kwargs = {
        **shared,
        "max_epochs": async_epochs,
        "quorum": max(n_workers - 1, 1),
        "max_staleness": 10,
    }
    solver = AsyncNewtonADMM(**async_kwargs)
    asyn = solver.fit(make_cluster(fault_model()), test=test)
    # The solver is instantiated directly (its fold/arrival accounting is
    # part of the result); stamp the provenance run_method would have.
    asyn.info["solver_config"] = {"name": "async_newton_admm", **async_kwargs}
    asyn.info["cluster_config"] = vars(cluster_config).copy()
    traces["async_newton_admm"] = asyn
    async_t2t = time_to_objective(asyn, target)
    rows.append(
        {
            "method": "async_newton_admm",
            "policy": "quorum (rides through)",
            "outcome": "completed",
            "final_objective": asyn.final.objective,
            "total_modelled_time_s": asyn.total_time(),
            "time_to_target_s": async_t2t,
            "modelled_delta_s": async_t2t - base_t2t,
        }
    )

    return {
        "rows": rows,
        "traces": traces,
        "target": target,
        "report": format_table(rows, title=plan["title"]),
        "base_time": base_time,
        "plan": plan,
        "solver": solver,
        "asyn": asyn,
    }


def ablation_faults(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 8,
    lam: float = 1e-5,
    crash_fraction: float = 0.35,
    downtime_fraction: float = 0.5,
    seed: int = 0,
) -> dict:
    """Ablation: worker loss mid-run — quorum async rides through, sync does not.

    A no-fault synchronous Newton-ADMM run calibrates the schedule: worker 0
    crashes ``crash_fraction`` of the way through its modelled time and stays
    down for ``downtime_fraction`` of it.  Under that *identical* fault
    schedule the sweep then runs strict-sync Newton-ADMM with its two
    declared policies — ``on_failure="raise"`` (the run aborts with a
    structured :class:`~repro.distributed.faults.WorkerLostError`) and
    ``on_failure="stall"`` (the cluster idles until the restart and pays the
    downtime at full price) — and quorum-based async Newton-ADMM (quorum
    ``N - 1``), which keeps firing z-updates off the survivors and folds the
    worker back in when it returns.  The report's ``modelled_delta_s`` column
    is the time-to-no-fault-target penalty each strategy pays for the same
    crash.
    """
    from repro.distributed.faults import FailureModel, WorkerLostError

    def plan_fn(base_time: float) -> dict:
        crash_time = crash_fraction * base_time
        restart_after = downtime_fraction * base_time
        return {
            "fault_model": lambda: FailureModel(
                crash_at_time={0: crash_time}, restart_after=restart_after
            ),
            "title": (
                f"Ablation — worker 0 crashes at t={crash_time:.3g}s, restarts "
                f"after {restart_after:.3g}s ({n_workers} workers, event engine)"
            ),
            "crash_time": crash_time,
            "restart_after": restart_after,
        }

    sweep = _fault_policy_sweep(
        scale,
        dataset=dataset,
        n_workers=n_workers,
        lam=lam,
        seed=seed,
        plan_fn=plan_fn,
        expected_error=WorkerLostError,
        nofault_policy="(no fault)",
        raise_outcome=lambda exc: (
            f"WorkerLostError: worker {exc.worker_id} at t={exc.time:.3g}s"
        ),
        stall_outcome="completed (stalled for restart)",
        survived_message=(
            "ablation-faults: strict-sync run survived an injected crash"
        ),
    )
    return {
        "rows": sweep["rows"],
        "traces": sweep["traces"],
        "target": sweep["target"],
        "crash_time": sweep["plan"]["crash_time"],
        "restart_after": sweep["plan"]["restart_after"],
        "report": sweep["report"],
    }


# ---------------------------------------------------------------------------
# Ablation: network partitions (fault model v2)
# ---------------------------------------------------------------------------
def ablation_partitions(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 8,
    lam: float = 1e-5,
    cut_fraction: float = 0.3,
    window_fraction: float = 0.5,
    seed: int = 0,
) -> dict:
    """Ablation: a master<->worker link dies and heals — quorum async rides it.

    A no-fault synchronous Newton-ADMM run calibrates the schedule: worker 0
    becomes *unreachable* (a :class:`~repro.distributed.faults.PartitionModel`
    cut — the node keeps computing, only its link is gone)
    ``cut_fraction`` of the way through the run, for ``window_fraction`` of
    it.  Under that identical partition the sweep runs strict-sync
    Newton-ADMM with ``on_failure="raise"`` (the barrier cannot form across
    the cut: structured :class:`~repro.distributed.faults.PartitionError`)
    and ``on_failure="stall"`` (the cluster idles until the heal, iterates
    bit-identical, only time lost), then quorum async Newton-ADMM (quorum
    ``N - 1``), which keeps firing z-updates off the reachable workers and
    folds the cut worker's delayed push back in — exactly once — when the
    partition heals.  Everything runs on the event engine so the cut
    worker's ``unreachable`` timeline segments are recorded.

    The returned ``rejoin`` block carries the fold accounting the benchmark
    asserts: per-fire fold lists are duplicate-free, every arrival is folded
    exactly once (``total_folds == total_arrivals``), and the cut worker is
    folded again at/after the heal.
    """
    from repro.distributed.faults import (
        FailureModel,
        PartitionError,
        PartitionModel,
    )

    def plan_fn(base_time: float) -> dict:
        cut_start = cut_fraction * base_time
        cut_end = cut_start + window_fraction * base_time
        return {
            "fault_model": lambda: FailureModel(
                partitions=PartitionModel(cuts=[((0,), cut_start, cut_end)])
            ),
            "title": (
                f"Ablation — worker 0 unreachable during "
                f"[{cut_start:.3g}s, {cut_end:.3g}s) ({n_workers} workers, "
                "event engine)"
            ),
            "cut_start": cut_start,
            "cut_end": cut_end,
        }

    sweep = _fault_policy_sweep(
        scale,
        dataset=dataset,
        n_workers=n_workers,
        lam=lam,
        seed=seed,
        plan_fn=plan_fn,
        expected_error=PartitionError,
        nofault_policy="(no partition)",
        raise_outcome=lambda exc: (
            f"PartitionError: worker {exc.worker_id} cut at t={exc.time:.3g}s"
        ),
        stall_outcome="completed (stalled until the heal)",
        survived_message=(
            "ablation-partitions: strict-sync run survived an open partition"
        ),
    )
    solver, asyn = sweep["solver"], sweep["asyn"]
    cut_start = sweep["plan"]["cut_start"]
    cut_end = sweep["plan"]["cut_end"]

    # ---- rejoin accounting: the healed worker folds exactly once ------------
    log = solver.staleness_log
    arrivals = solver.arrival_counts
    folds: Dict[int, int] = {}
    max_folds_per_fire = 0
    for entry in log:
        fired = entry["folded_workers"]
        max_folds_per_fire = max(
            max_folds_per_fire,
            max((fired.count(w) for w in set(fired)), default=0),
        )
        for w in fired:
            folds[w] = folds.get(w, 0) + 1
    post_heal_folds_of_cut_worker = sum(
        1 for entry in log if entry["time"] >= cut_end and 0 in entry["folded_workers"]
    )
    rejoin = {
        "cut_worker": 0,
        "cut_start": cut_start,
        "cut_end": cut_end,
        "total_arrivals": int(sum(arrivals.values())),
        "dropped_arrivals": int(solver.dropped_arrivals),
        "total_folds": int(sum(folds.values())),
        "max_folds_per_fire": int(max_folds_per_fire),
        "post_heal_folds_of_cut_worker": int(post_heal_folds_of_cut_worker),
        "partition_events": [
            dict(e) for e in asyn.info.get("faults", {}).get("events", [])
        ],
    }

    return {
        "rows": sweep["rows"],
        "traces": sweep["traces"],
        "target": sweep["target"],
        "cut_start": cut_start,
        "cut_end": cut_end,
        "rejoin": rejoin,
        "report": sweep["report"],
    }


def ablation_autotune(
    scale=ExperimentScale.QUICK,
    *,
    dataset: str = "mnist_like",
    n_workers: int = 8,
    lam: float = 1e-5,
    network: str = "infiniband_100g",
    slowdown: float = 8.0,
    n_stragglers: int = 2,
    n_trials: int = 6,
    seed: int = 0,
    check_reproducible: bool = True,
) -> dict:
    """Ablation: tournament-tune the schedule against a straggler+fault profile.

    Declares a hostile cluster profile — ``n_stragglers`` persistent
    stragglers at ``slowdown``× plus an MTBF crash/restart schedule
    calibrated from a fault-free baseline run (an MTBF fixed in wall-clock
    units would either never fire or always be down at another scale's
    modelled runtime) — then runs :func:`repro.distributed.run_tournament`:
    every hand-written solver plan the repo ships enters first, followed by
    ``n_trials`` seeded draws over quorum size, staleness bound, ADMM
    penalty / over-relaxation, and overlap flags.

    The headline assertion (made by the benchmark over this driver's rows):
    under the declared profile the tuned schedule reaches the synchronous
    baseline's final objective in strictly less modelled time than *every*
    hand-written plan, and the tournament is bit-reproducible under the
    fixed seed.  The report also prints the priced structural diff between
    the paper's 1-round Newton-ADMM plan and GIANT's 3-round plan under the
    same profile — the diff is the tuner's *explanation*, the tournament its
    *verdict*.
    """
    from repro.admm.newton_admm import NewtonADMM
    from repro.baselines.giant import GIANT
    from repro.datasets.registry import load_dataset as _load
    from repro.distributed.autotune import run_tournament
    from repro.distributed.cluster import SimulatedCluster
    from repro.distributed.schedule_diff import ClusterProfile, diff_plans
    from repro.distributed.stragglers import StragglerModel
    from repro.harness.plotting import format_plan_diff
    from repro.harness.runner import resolve_network

    scale = _scale(scale)
    sync_epochs = _epoch_budget(scale, 12, 25, 60)
    # The tournament fits ~10 candidates (async entrants at a 4x epoch
    # budget), so it runs on a reduced slice of the dataset; the schedule
    # comparison is about modelled cluster time, not statistical scale.
    n_train = min(train_size_for(dataset, scale), 2000)
    n_test = test_size_for(dataset, scale)
    train, test = _load(dataset, n_train=n_train, n_test=n_test, random_state=seed)
    net = resolve_network(network)

    def straggler() -> StragglerModel:
        return StragglerModel(
            slowdown=slowdown,
            persistent_stragglers=list(range(n_stragglers)),
            random_state=seed,
        )

    # ---- calibrate the fault schedule from a fault-free baseline ----------
    base_cluster = SimulatedCluster(
        train, n_workers, network=net, straggler=straggler(),
        engine="event", random_state=seed,
    )
    baseline = NewtonADMM(
        lam=lam, max_epochs=sync_epochs, cg_max_iter=10, record_accuracy=False
    ).fit(base_cluster, test=test)
    base_time = baseline.total_time()
    faults = f"mtbf={base_time / 6.0:g},restart={base_time / 25.0:g},seed={seed}"

    profile = ClusterProfile(
        n_workers=n_workers,
        network=net,
        straggler=straggler(),
        faults=faults,
        payload_bytes=8.0 * train.n_features * train.n_classes,
    )

    def tournament():
        return run_tournament(
            train, profile, seed=seed, n_trials=n_trials,
            sync_epochs=sync_epochs, lam=lam, test=test,
        )

    result = tournament()
    reproducible = None
    if check_reproducible:
        rerun = tournament()
        reproducible = rerun.winner == result.winner and all(
            a["label"] == b["label"] and a["score"] == b["score"]
            for a, b in zip(result.candidates, rerun.candidates)
        )

    rows = [
        {
            "candidate": c["label"],
            "hand_written": c["hand_written"],
            "epochs": c["epochs"],
            "score_time_to_target_s": c["score"],
            "final_objective": c["final_objective"],
            "total_modelled_time_s": c["total_modelled_time"],
        }
        for c in result.candidates
    ]

    # ---- priced structural diff: the paper's plan vs the 3-round shape ----
    def plan_of(solver):
        probe = SimulatedCluster(train, n_workers, random_state=seed)
        solver.fit(probe)
        return solver._plan_epoch(probe, 0)

    diff = diff_plans(
        plan_of(NewtonADMM(lam=lam, max_epochs=1, record_accuracy=False)),
        plan_of(GIANT(lam=lam, max_epochs=1, record_accuracy=False)),
        profile,
    )

    provenance = result.winner_trace.info["autotune"]
    lines = [
        format_table(
            rows,
            title=(
                f"Ablation — schedule autotuning under {n_stragglers} "
                f"persistent straggler(s) ({slowdown:g}x) + faults "
                f"({faults}) on {n_workers} workers / {network}"
            ),
        ),
        "",
        f"winner: {result.winner} (target objective {result.target:.6f}, "
        f"seed {result.seed})",
        f"beat every hand-written plan: "
        f"{provenance['beat_every_hand_written']}",
    ]
    if reproducible is not None:
        lines.append(f"bit-reproducible rerun (same profile + seed): {reproducible}")
    lines += ["", format_plan_diff(diff)]

    return {
        "rows": rows,
        "traces": result.traces,
        "result": result,
        "target": result.target,
        "profile": profile.describe(),
        "base_time": base_time,
        "reproducible": reproducible,
        "diff": diff,
        "report": "\n".join(lines),
    }
