"""Experiment harness: builds clusters, runs solvers, regenerates every table
and figure of the paper's evaluation section."""

from repro.harness.config import ClusterConfig, SolverConfig, ExperimentScale
from repro.harness.runner import (
    SOLVER_REGISTRY,
    build_cluster,
    make_solver,
    run_method,
    reference_optimum,
)
from repro.harness.experiments import (
    table1_datasets,
    figure1_second_order_comparison,
    figure2_epoch_times,
    figure3_speedup_ratios,
    figure4_first_order_comparison,
    figure5_e18_weak_scaling,
    ablation_penalty_policies,
    ablation_cg_budget,
    ablation_over_relaxation,
    ablation_interconnect_sensitivity,
    ablation_straggler_sensitivity,
)
from repro.harness.plotting import ascii_line_plot, plot_scaling, plot_traces
from repro.harness.serialization import (
    load_rows_csv,
    load_trace,
    save_experiment_result,
    save_rows_csv,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.harness.cli import EXPERIMENT_REGISTRY, main as cli_main

__all__ = [
    "ascii_line_plot",
    "plot_traces",
    "plot_scaling",
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "save_rows_csv",
    "load_rows_csv",
    "save_experiment_result",
    "EXPERIMENT_REGISTRY",
    "cli_main",
    "ClusterConfig",
    "SolverConfig",
    "ExperimentScale",
    "SOLVER_REGISTRY",
    "build_cluster",
    "make_solver",
    "run_method",
    "reference_optimum",
    "table1_datasets",
    "figure1_second_order_comparison",
    "figure2_epoch_times",
    "figure3_speedup_ratios",
    "figure4_first_order_comparison",
    "figure5_e18_weak_scaling",
    "ablation_penalty_policies",
    "ablation_cg_budget",
    "ablation_over_relaxation",
    "ablation_interconnect_sensitivity",
    "ablation_straggler_sensitivity",
]
