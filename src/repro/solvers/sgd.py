"""Mini-batch stochastic gradient descent (with optional momentum).

This is the single-node counterpart of the paper's synchronous-SGD baseline
(Figure 4): batch size 128, constant step size chosen by a sweep.  The solver
works on any objective that exposes a ``minibatch(indices)`` method (the
softmax and logistic losses do); otherwise it falls back to full gradients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
    TerminationCriteria,
)
from repro.utils.rng import check_random_state
from repro.utils.timer import Stopwatch


class SGD(Solver):
    """Mini-batch SGD.

    Parameters
    ----------
    step_size:
        Constant learning rate.
    batch_size:
        Mini-batch size (paper: 128).
    momentum:
        Classical momentum coefficient in [0, 1).
    max_epochs:
        Number of passes over the data.
    shuffle:
        Reshuffle sample order every epoch.
    record_every_epoch:
        Record the full objective/gradient once per epoch (an extra full pass,
        used for reporting only).
    """

    def __init__(
        self,
        *,
        step_size: float = 0.01,
        batch_size: int = 128,
        momentum: float = 0.0,
        max_epochs: int = 20,
        shuffle: bool = True,
        grad_tol: float = 0.0,
        record_every_epoch: bool = True,
        random_state=None,
    ):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.step_size = float(step_size)
        self.batch_size = int(batch_size)
        self.momentum = float(momentum)
        self.max_epochs = int(max_epochs)
        self.shuffle = bool(shuffle)
        self.record_every_epoch = bool(record_every_epoch)
        self.random_state = random_state
        self.criteria = TerminationCriteria(
            max_iterations=max_epochs, grad_tol=grad_tol
        )

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        w = self._prepare_start(objective, w0)
        rng = check_random_state(self.random_state)
        stopwatch = Stopwatch().start()
        records = []
        velocity = np.zeros_like(w)

        n = objective.n_samples
        supports_minibatch = hasattr(objective, "minibatch") and n > 0
        batch = min(self.batch_size, n) if n > 0 else 0

        f_val = objective.value(w)
        grad_norm = float("inf")
        converged = False
        epoch = 0

        for epoch in range(1, self.max_epochs + 1):
            if supports_minibatch:
                order = np.arange(n)
                if self.shuffle:
                    rng.shuffle(order)
                for start in range(0, n, batch):
                    idx = order[start : start + batch]
                    grad = objective.minibatch(idx).gradient(w)
                    velocity = self.momentum * velocity - self.step_size * grad
                    w = w + velocity
            else:
                grad = objective.gradient(w)
                velocity = self.momentum * velocity - self.step_size * grad
                w = w + velocity

            if self.record_every_epoch or epoch == self.max_epochs:
                f_val, full_grad = objective.value_and_gradient(w)
                grad_norm = float(np.linalg.norm(full_grad))
                record = IterationRecord(
                    iteration=epoch - 1,
                    objective=f_val,
                    grad_norm=grad_norm,
                    step_size=self.step_size,
                    wall_time=stopwatch.elapsed,
                    extras={"epoch": epoch},
                )
                records.append(record)
                if callback is not None:
                    callback(record, w)
                if self.criteria.grad_tol > 0 and grad_norm <= self.criteria.grad_tol:
                    converged = True
                    break

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=epoch,
            converged=converged,
            records=records,
            info={"wall_time": stopwatch.elapsed, "batch_size": batch},
        )
