"""Adaptive first-order methods: Adam, Adagrad, RMSProp, Adadelta.

The paper's related-work section lists these as the commonly used first-order
alternatives; they are provided as single-node solvers so examples and
ablations can compare them against Newton-CG and Newton-ADMM on equal
footing.  All share the same mini-batch loop as :class:`repro.solvers.sgd.SGD`
and differ only in the per-coordinate update rule.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
)
from repro.utils.rng import check_random_state
from repro.utils.timer import Stopwatch


class _AdaptiveBase(Solver):
    """Shared epoch/mini-batch loop for the adaptive methods."""

    def __init__(
        self,
        *,
        step_size: float = 0.001,
        batch_size: int = 128,
        max_epochs: int = 20,
        shuffle: bool = True,
        random_state=None,
    ):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.step_size = float(step_size)
        self.batch_size = int(batch_size)
        self.max_epochs = int(max_epochs)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    @abstractmethod
    def _init_state(self, dim: int) -> dict:
        """Per-coordinate accumulator state."""

    @abstractmethod
    def _update(self, w: np.ndarray, grad: np.ndarray, state: dict, t: int) -> np.ndarray:
        """Return the new iterate given the mini-batch gradient."""

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        w = self._prepare_start(objective, w0)
        rng = check_random_state(self.random_state)
        stopwatch = Stopwatch().start()
        records = []
        state = self._init_state(w.shape[0])

        n = objective.n_samples
        supports_minibatch = hasattr(objective, "minibatch") and n > 0
        batch = min(self.batch_size, n) if n > 0 else 0
        f_val = objective.value(w)
        grad_norm = float("inf")
        t = 0

        for epoch in range(1, self.max_epochs + 1):
            if supports_minibatch:
                order = np.arange(n)
                if self.shuffle:
                    rng.shuffle(order)
                for start in range(0, n, batch):
                    idx = order[start : start + batch]
                    grad = objective.minibatch(idx).gradient(w)
                    t += 1
                    w = self._update(w, grad, state, t)
            else:
                grad = objective.gradient(w)
                t += 1
                w = self._update(w, grad, state, t)

            f_val, full_grad = objective.value_and_gradient(w)
            grad_norm = float(np.linalg.norm(full_grad))
            record = IterationRecord(
                iteration=epoch - 1,
                objective=f_val,
                grad_norm=grad_norm,
                step_size=self.step_size,
                wall_time=stopwatch.elapsed,
                extras={"epoch": epoch},
            )
            records.append(record)
            if callback is not None:
                callback(record, w)

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=self.max_epochs,
            converged=False,
            records=records,
            info={"wall_time": stopwatch.elapsed},
        )


class Adam(_AdaptiveBase):
    """Adam (Kingma & Ba, 2014)."""

    def __init__(self, *, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8, **kwargs):
        super().__init__(**kwargs)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def _init_state(self, dim: int) -> dict:
        return {"m": np.zeros(dim), "v": np.zeros(dim)}

    def _update(self, w, grad, state, t):
        state["m"] = self.beta1 * state["m"] + (1 - self.beta1) * grad
        state["v"] = self.beta2 * state["v"] + (1 - self.beta2) * grad**2
        m_hat = state["m"] / (1 - self.beta1**t)
        v_hat = state["v"] / (1 - self.beta2**t)
        return w - self.step_size * m_hat / (np.sqrt(v_hat) + self.eps)


class Adagrad(_AdaptiveBase):
    """Adagrad (Duchi et al., 2011)."""

    def __init__(self, *, eps: float = 1e-8, **kwargs):
        super().__init__(**kwargs)
        self.eps = float(eps)

    def _init_state(self, dim: int) -> dict:
        return {"g2": np.zeros(dim)}

    def _update(self, w, grad, state, t):
        state["g2"] += grad**2
        return w - self.step_size * grad / (np.sqrt(state["g2"]) + self.eps)


class RMSProp(_AdaptiveBase):
    """RMSProp (Tieleman & Hinton, 2012)."""

    def __init__(self, *, decay: float = 0.9, eps: float = 1e-8, **kwargs):
        super().__init__(**kwargs)
        self.decay = float(decay)
        self.eps = float(eps)

    def _init_state(self, dim: int) -> dict:
        return {"g2": np.zeros(dim)}

    def _update(self, w, grad, state, t):
        state["g2"] = self.decay * state["g2"] + (1 - self.decay) * grad**2
        return w - self.step_size * grad / (np.sqrt(state["g2"]) + self.eps)


class Adadelta(_AdaptiveBase):
    """Adadelta (Zeiler, 2012) — step_size acts as an overall multiplier."""

    def __init__(self, *, decay: float = 0.95, eps: float = 1e-6, step_size: float = 1.0, **kwargs):
        super().__init__(step_size=step_size, **kwargs)
        self.decay = float(decay)
        self.eps = float(eps)

    def _init_state(self, dim: int) -> dict:
        return {"g2": np.zeros(dim), "dx2": np.zeros(dim)}

    def _update(self, w, grad, state, t):
        state["g2"] = self.decay * state["g2"] + (1 - self.decay) * grad**2
        dx = -np.sqrt(state["dx2"] + self.eps) / np.sqrt(state["g2"] + self.eps) * grad
        state["dx2"] = self.decay * state["dx2"] + (1 - self.decay) * dx**2
        return w + self.step_size * dx
