"""Armijo backtracking line search (Algorithm 3 of the paper).

Starting from ``alpha = alpha0`` the step is halved (multiplied by the
back-tracking parameter ``rho``) until the sufficient-decrease condition

    F(x + alpha p) <= F(x) + alpha * beta * p @ g(x)

holds or ``max_iter`` halvings have been tried.  Unlike GIANT's distributed
line search, this runs *locally* on each worker and terminates as soon as the
condition holds — one of the two per-iteration cost advantages the paper
claims for Newton-ADMM.

The search is backend-agnostic by construction: it touches the iterate only
through the objective callable, vector arithmetic, and one inner product, all
of which operate natively on whatever array backend produced ``x``/``p``/``g``
(see :mod:`repro.backend`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.utils.validation import check_probability


@dataclass
class LineSearchResult:
    """Outcome of a backtracking line search.

    Attributes
    ----------
    step_size:
        Accepted step (0 when no step satisfied the condition and
        ``accept_on_failure`` was False).
    f_new:
        Objective at ``x + step_size * p`` (equals ``f_x`` when rejected).
    n_evaluations:
        Number of objective evaluations performed.
    success:
        Whether the Armijo condition was satisfied.
    """

    step_size: float
    f_new: float
    n_evaluations: int
    success: bool


def armijo_backtracking(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    p: np.ndarray,
    g: np.ndarray,
    f_x: Optional[float] = None,
    *,
    alpha0: float = 1.0,
    beta: float = 1e-4,
    rho: float = 0.5,
    max_iter: int = 10,
    accept_on_failure: bool = True,
) -> LineSearchResult:
    """Backtracking line search along direction ``p``.

    Parameters
    ----------
    f:
        Objective value callable.
    x, p, g:
        Current point, search direction, and gradient at ``x``.
    f_x:
        Objective at ``x`` (computed if omitted).
    alpha0:
        Initial step (1 for Newton steps).
    beta:
        Sufficient-decrease constant in (0, 1).
    rho:
        Back-tracking factor in (0, 1); the paper halves the step (rho=0.5).
    max_iter:
        Maximum number of *reductions* (the paper uses 10).
    accept_on_failure:
        If no tested step satisfies the condition, return the last (smallest)
        step instead of zero; keeping the iterate moving matches the paper's
        Algorithm 3, which breaks out of the loop and uses the current alpha.
    """
    beta = check_probability(beta, name="beta")
    rho = check_probability(rho, name="rho")
    if alpha0 <= 0:
        raise ValueError(f"alpha0 must be positive, got {alpha0}")
    if max_iter < 0:
        raise ValueError(f"max_iter must be >= 0, got {max_iter}")

    n_evals = 0
    if f_x is None:
        f_x = float(f(x))
        n_evals += 1
    slope = float(p @ g)
    if slope > 0:
        # p is not a descent direction; fall back to the negative gradient.
        p = -g
        slope = float(p @ g)

    alpha = float(alpha0)
    f_new = f_x
    for i in range(max_iter + 1):
        candidate = x + alpha * p
        f_new = float(f(candidate))
        n_evals += 1
        if f_new <= f_x + alpha * beta * slope:
            return LineSearchResult(
                step_size=alpha, f_new=f_new, n_evaluations=n_evals, success=True
            )
        if i == max_iter:
            break
        alpha *= rho

    if accept_on_failure and f_new < f_x:
        return LineSearchResult(
            step_size=alpha, f_new=f_new, n_evaluations=n_evals, success=False
        )
    return LineSearchResult(
        step_size=0.0, f_new=f_x, n_evaluations=n_evals, success=False
    )
