"""Stochastic variance-reduced gradient (SVRG, Johnson & Zhang 2013).

InexactDANE/AIDE solve their local subproblems with SVRG; the paper's Figure 1
configuration uses 100 SVRG iterations with an update frequency of ``2n``.
This implementation follows the standard two-loop structure: an outer loop
computes the full gradient at a snapshot, the inner loop takes variance-
reduced stochastic steps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
)
from repro.utils.rng import check_random_state
from repro.utils.timer import Stopwatch


class SVRG(Solver):
    """SVRG with mini-batch inner steps.

    Parameters
    ----------
    step_size:
        Inner-loop learning rate (the paper sweeps 1e-4..1e4 on a log grid).
    n_outer:
        Number of outer (snapshot) iterations.
    inner_per_sample:
        Inner-loop length as a multiple of the sample count (the paper's
        "updating frequency 2n" corresponds to 2.0).
    batch_size:
        Mini-batch size of the inner stochastic steps.
    """

    def __init__(
        self,
        *,
        step_size: float = 0.01,
        n_outer: int = 10,
        inner_per_sample: float = 2.0,
        batch_size: int = 1,
        max_inner: int = 2000,
        random_state=None,
    ):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if n_outer < 1:
            raise ValueError(f"n_outer must be >= 1, got {n_outer}")
        if inner_per_sample <= 0:
            raise ValueError(
                f"inner_per_sample must be positive, got {inner_per_sample}"
            )
        self.step_size = float(step_size)
        self.n_outer = int(n_outer)
        self.inner_per_sample = float(inner_per_sample)
        self.batch_size = int(batch_size)
        self.max_inner = int(max_inner)
        self.random_state = random_state

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        w = self._prepare_start(objective, w0)
        rng = check_random_state(self.random_state)
        stopwatch = Stopwatch().start()
        records = []

        n = objective.n_samples
        supports_minibatch = hasattr(objective, "minibatch") and n > 0
        if not supports_minibatch:
            # Degenerate case: SVRG without sampling is plain gradient descent.
            n_inner = 1
        else:
            n_inner = min(int(self.inner_per_sample * n), self.max_inner)
            n_inner = max(n_inner, 1)

        f_val = objective.value(w)
        grad_norm = float("inf")

        for outer in range(1, self.n_outer + 1):
            snapshot = w.copy()
            full_grad = objective.gradient(snapshot)
            if supports_minibatch:
                for _ in range(n_inner):
                    idx = rng.integers(0, n, size=self.batch_size)
                    batch = objective.minibatch(idx)
                    g_w = batch.gradient(w)
                    g_snap = batch.gradient(snapshot)
                    w = w - self.step_size * (g_w - g_snap + full_grad)
            else:
                w = w - self.step_size * full_grad

            f_val, grad = objective.value_and_gradient(w)
            grad_norm = float(np.linalg.norm(grad))
            record = IterationRecord(
                iteration=outer - 1,
                objective=f_val,
                grad_norm=grad_norm,
                step_size=self.step_size,
                wall_time=stopwatch.elapsed,
                extras={"inner_iterations": n_inner},
            )
            records.append(record)
            if callback is not None:
                callback(record, w)

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=self.n_outer,
            converged=False,
            records=records,
            info={"wall_time": stopwatch.elapsed, "inner_iterations": n_inner},
        )
