"""Trust-region Newton with a Steihaug-Toint CG subproblem solver.

The line-search Newton-CG of :mod:`repro.solvers.newton_cg` is what the paper
runs inside every ADMM subproblem; the trust-region variant is the standard
alternative globalization (Nocedal & Wright, ch. 4) and is included both as an
ablation of that design choice and as a robust reference solver for the
ill-conditioned workloads.  Like the rest of the library it is Hessian-free:
the model Hessian is only touched through Hessian-vector products inside the
Steihaug CG loop, which truncates at the trust-region boundary or at the first
direction of negative curvature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
    TerminationCriteria,
)
from repro.utils.timer import Stopwatch


@dataclass
class SteihaugResult:
    """Outcome of one Steihaug-Toint CG subproblem solve.

    Attributes
    ----------
    p:
        Approximate minimizer of the quadratic model within the trust region.
    n_iterations:
        CG iterations performed.
    hit_boundary:
        Whether the step was truncated at the trust-region boundary.
    negative_curvature:
        Whether a direction of negative curvature was encountered.
    model_decrease:
        Predicted decrease ``m(0) - m(p)`` of the quadratic model (>= 0).
    """

    p: np.ndarray
    n_iterations: int
    hit_boundary: bool
    negative_curvature: bool
    model_decrease: float


def steihaug_cg(
    hvp,
    grad: np.ndarray,
    radius: float,
    *,
    tol: float = 1e-4,
    max_iter: int = 50,
) -> SteihaugResult:
    """Approximately minimize ``g @ p + 0.5 p @ H p`` subject to ``||p|| <= radius``.

    Parameters
    ----------
    hvp:
        Callable computing ``H @ v``.
    grad:
        Gradient ``g`` at the current iterate.
    radius:
        Trust-region radius.
    tol:
        Relative residual tolerance for the interior CG iterations.
    max_iter:
        CG iteration budget.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    grad = np.asarray(grad, dtype=np.float64).ravel()
    dim = grad.shape[0]
    p = np.zeros(dim)
    r = -grad.copy()
    d = r.copy()
    g_norm = float(np.linalg.norm(grad))
    if g_norm == 0.0:
        return SteihaugResult(p, 0, False, False, 0.0)
    threshold = tol * g_norm

    def model_decrease(step: np.ndarray) -> float:
        return -(float(grad @ step) + 0.5 * float(step @ hvp(step)))

    for k in range(max_iter):
        Hd = np.asarray(hvp(d)).ravel()
        dHd = float(d @ Hd)
        if dHd <= 0.0:
            # Negative curvature: follow d to the boundary.
            tau = _boundary_step(p, d, radius)
            p_out = p + tau * d
            return SteihaugResult(p_out, k + 1, True, True, model_decrease(p_out))
        rr = float(r @ r)
        alpha = rr / dHd
        p_next = p + alpha * d
        if float(np.linalg.norm(p_next)) >= radius:
            tau = _boundary_step(p, d, radius)
            p_out = p + tau * d
            return SteihaugResult(p_out, k + 1, True, False, model_decrease(p_out))
        r = r - alpha * Hd
        p = p_next
        if float(np.linalg.norm(r)) <= threshold:
            return SteihaugResult(p, k + 1, False, False, model_decrease(p))
        beta = float(r @ r) / rr
        d = r + beta * d

    return SteihaugResult(p, max_iter, False, False, model_decrease(p))


def _boundary_step(p: np.ndarray, d: np.ndarray, radius: float) -> float:
    """Positive ``tau`` with ``||p + tau d|| = radius``."""
    dd = float(d @ d)
    pd = float(p @ d)
    pp = float(p @ p)
    discriminant = pd * pd - dd * (pp - radius * radius)
    discriminant = max(discriminant, 0.0)
    return (-pd + np.sqrt(discriminant)) / dd


class TrustRegionNewton(Solver):
    """Hessian-free trust-region Newton method.

    Parameters
    ----------
    max_iterations:
        Outer iteration budget.
    grad_tol:
        Stop when ``||g(x)|| <= grad_tol``.
    initial_radius, max_radius:
        Starting and maximum trust-region radius.
    eta:
        Acceptance threshold on the actual-vs-predicted decrease ratio.
    cg_max_iter, cg_tol:
        Budget and relative tolerance of the Steihaug CG subproblem solves.
    """

    def __init__(
        self,
        *,
        max_iterations: int = 50,
        grad_tol: float = 1e-8,
        initial_radius: float = 1.0,
        max_radius: float = 100.0,
        eta: float = 0.1,
        cg_max_iter: int = 50,
        cg_tol: float = 1e-4,
        rel_obj_tol: float = 0.0,
    ):
        self.criteria = TerminationCriteria(
            max_iterations=max_iterations, grad_tol=grad_tol, rel_obj_tol=rel_obj_tol
        )
        if initial_radius <= 0 or max_radius <= 0:
            raise ValueError("trust-region radii must be positive")
        if initial_radius > max_radius:
            raise ValueError(
                f"initial_radius {initial_radius} exceeds max_radius {max_radius}"
            )
        if not 0.0 <= eta < 0.25:
            raise ValueError(f"eta must lie in [0, 0.25), got {eta}")
        self.initial_radius = float(initial_radius)
        self.max_radius = float(max_radius)
        self.eta = float(eta)
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        w = self._prepare_start(objective, w0)
        stopwatch = Stopwatch().start()
        records = []
        radius = self.initial_radius
        total_cg_iters = 0
        n_rejected = 0

        # Fused forward pass; the returned operator stays bound to ``w`` so
        # every Steihaug matvec — including those of *rejected* steps, which
        # re-solve at the same iterate with a smaller radius — reuses the
        # cached logits and probabilities.
        f_val, grad, hvp_op = objective.value_and_gradient_and_hvp_operator(w)
        grad_norm = float(np.linalg.norm(grad))
        converged = self.criteria.gradient_converged(grad_norm)
        n_iter = 0

        while not converged and n_iter < self.criteria.max_iterations:
            sub = steihaug_cg(
                hvp_op.matvec,
                grad,
                radius,
                tol=self.cg_tol,
                max_iter=self.cg_max_iter,
            )
            total_cg_iters += sub.n_iterations
            step_norm = float(np.linalg.norm(sub.p))
            if step_norm == 0.0 or sub.model_decrease <= 0.0:
                # The model predicts no decrease: either we are at a stationary
                # point or the radius collapsed — stop.
                converged = True
                break

            candidate = w + sub.p
            f_candidate = objective.value(candidate)
            actual = f_val - f_candidate
            ratio = actual / sub.model_decrease

            # Radius update (Nocedal & Wright, Algorithm 4.1).
            if ratio < 0.25:
                radius = 0.25 * radius
            elif ratio > 0.75 and sub.hit_boundary:
                radius = min(2.0 * radius, self.max_radius)

            accepted = ratio > self.eta and actual > 0
            if accepted:
                w = candidate
                prev_val = f_val
                f_val, grad, hvp_op = objective.value_and_gradient_and_hvp_operator(w)
                grad_norm = float(np.linalg.norm(grad))
            else:
                n_rejected += 1
                prev_val = f_val
            n_iter += 1

            record = IterationRecord(
                iteration=n_iter - 1,
                objective=f_val,
                grad_norm=grad_norm,
                step_size=step_norm if accepted else 0.0,
                wall_time=stopwatch.elapsed,
                extras={
                    "radius": radius,
                    "ratio": float(ratio),
                    "cg_iterations": sub.n_iterations,
                    "hit_boundary": float(sub.hit_boundary),
                    "negative_curvature": float(sub.negative_curvature),
                    "accepted": float(accepted),
                },
            )
            records.append(record)
            if callback is not None:
                callback(record, w)

            if radius < 1e-14:
                break
            converged = self.criteria.gradient_converged(grad_norm) or (
                accepted and self.criteria.objective_converged(prev_val, f_val)
            )

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=n_iter,
            converged=bool(converged),
            records=records,
            info={
                "total_cg_iterations": total_cg_iters,
                "rejected_steps": n_rejected,
                "final_radius": radius,
                "wall_time": stopwatch.elapsed,
            },
        )
