"""Full-batch gradient descent with optional Armijo line search.

Primarily a reference first-order method for tests and examples; the
stochastic variants used by the paper's first-order baselines live in
:mod:`repro.solvers.sgd` and :mod:`repro.solvers.adaptive`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.objectives.base import Objective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
    TerminationCriteria,
)
from repro.solvers.line_search import armijo_backtracking
from repro.utils.timer import Stopwatch


class GradientDescent(Solver):
    """Deterministic gradient descent.

    Parameters
    ----------
    step_size:
        Fixed step when ``line_search`` is False; initial step otherwise.
    line_search:
        Use Armijo backtracking instead of a fixed step.
    """

    def __init__(
        self,
        *,
        step_size: float = 1.0,
        max_iterations: int = 500,
        grad_tol: float = 1e-8,
        rel_obj_tol: float = 0.0,
        line_search: bool = True,
    ):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = float(step_size)
        self.line_search = bool(line_search)
        self.criteria = TerminationCriteria(
            max_iterations=max_iterations, grad_tol=grad_tol, rel_obj_tol=rel_obj_tol
        )

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        w = self._prepare_start(objective, w0)
        stopwatch = Stopwatch().start()
        records = []

        f_val, grad = objective.value_and_gradient(w)
        grad_norm = float(np.linalg.norm(grad))
        converged = self.criteria.gradient_converged(grad_norm)
        n_iter = 0

        while not converged and n_iter < self.criteria.max_iterations:
            direction = -grad
            if self.line_search:
                ls = armijo_backtracking(
                    objective.value, w, direction, grad, f_val,
                    alpha0=self.step_size, max_iter=20,
                )
                step = ls.step_size
                if step == 0.0:
                    converged = True
                    break
            else:
                step = self.step_size
            w = w + step * direction
            prev_val = f_val
            f_val, grad = objective.value_and_gradient(w)
            grad_norm = float(np.linalg.norm(grad))
            n_iter += 1
            record = IterationRecord(
                iteration=n_iter - 1,
                objective=f_val,
                grad_norm=grad_norm,
                step_size=step,
                wall_time=stopwatch.elapsed,
            )
            records.append(record)
            if callback is not None:
                callback(record, w)
            converged = self.criteria.gradient_converged(grad_norm) or (
                self.criteria.objective_converged(prev_val, f_val)
            )

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=n_iter,
            converged=bool(converged),
            records=records,
            info={"wall_time": stopwatch.elapsed},
        )
