"""Sub-sampled Newton-CG (Roosta-Khorasani & Mahoney, refs. [20, 21] of the paper).

The paper's convergence argument for inexact Newton leans on the sub-sampled
Newton analysis: a Hessian built from a uniformly sampled subset of the data
is a spectrally accurate surrogate, so replacing ``H`` by the sub-sampled
Hessian in the CG solve preserves the linear-quadratic convergence while
cutting the per-iteration Hessian-vector-product cost by the sampling ratio.
This solver implements exactly that: full gradients, sub-sampled Hessians,
CG + Armijo backtracking — another single-node engine that can be dropped into
the ADMM x-update.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.cg import conjugate_gradient
from repro.objectives.base import Objective, RegularizedObjective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
    TerminationCriteria,
)
from repro.solvers.line_search import armijo_backtracking
from repro.utils.rng import check_random_state
from repro.utils.timer import Stopwatch


def _split_loss_and_regularizer(objective: Objective):
    """Return ``(sampled_part, deterministic_part)`` of an objective.

    For a :class:`RegularizedObjective` only the data-fit loss is sub-sampled;
    the regularizer's Hessian is exact and cheap.  Any other objective that
    exposes ``minibatch`` is sampled as a whole.
    """
    if isinstance(objective, RegularizedObjective) and hasattr(objective.loss, "minibatch"):
        return objective.loss, objective.regularizer
    if hasattr(objective, "minibatch"):
        return objective, None
    raise TypeError(
        "SubsampledNewton requires an objective whose data-fit part supports "
        "minibatch sampling (e.g. SoftmaxCrossEntropy or a RegularizedObjective "
        "wrapping one)"
    )


class SubsampledNewton(Solver):
    """Newton-CG with a uniformly sub-sampled Hessian.

    Parameters
    ----------
    hessian_sample_fraction:
        Fraction of the data used to build the Hessian estimate each
        iteration (the gradient always uses the full data).
    min_hessian_samples:
        Lower bound on the sample count, so tiny problems keep a meaningful
        estimate.
    max_iterations, grad_tol, rel_obj_tol:
        Outer-loop termination (same semantics as :class:`NewtonCG`).
    cg_max_iter, cg_tol:
        Inner CG budget and relative tolerance.
    line_search_*:
        Armijo backtracking parameters.
    random_state:
        Seed controlling the per-iteration Hessian samples.
    """

    def __init__(
        self,
        *,
        hessian_sample_fraction: float = 0.1,
        min_hessian_samples: int = 10,
        max_iterations: int = 50,
        grad_tol: float = 1e-8,
        cg_max_iter: int = 10,
        cg_tol: float = 1e-4,
        line_search_beta: float = 1e-4,
        line_search_rho: float = 0.5,
        line_search_max_iter: int = 10,
        rel_obj_tol: float = 0.0,
        random_state=0,
    ):
        if not 0.0 < hessian_sample_fraction <= 1.0:
            raise ValueError(
                f"hessian_sample_fraction must lie in (0, 1], got {hessian_sample_fraction}"
            )
        if min_hessian_samples < 1:
            raise ValueError(
                f"min_hessian_samples must be >= 1, got {min_hessian_samples}"
            )
        self.hessian_sample_fraction = float(hessian_sample_fraction)
        self.min_hessian_samples = int(min_hessian_samples)
        self.criteria = TerminationCriteria(
            max_iterations=max_iterations, grad_tol=grad_tol, rel_obj_tol=rel_obj_tol
        )
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)
        self.line_search_beta = float(line_search_beta)
        self.line_search_rho = float(line_search_rho)
        self.line_search_max_iter = int(line_search_max_iter)
        self.random_state = random_state

    def _sample_size(self, n_samples: int) -> int:
        size = int(round(self.hessian_sample_fraction * n_samples))
        return min(max(size, self.min_hessian_samples), n_samples)

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        sampled_part, deterministic_part = _split_loss_and_regularizer(objective)
        n_samples = sampled_part.n_samples
        if n_samples < 1:
            raise ValueError("objective reports zero samples; cannot sub-sample")
        rng = check_random_state(self.random_state)

        w = self._prepare_start(objective, w0)
        stopwatch = Stopwatch().start()
        records = []
        total_cg_iters = 0
        total_ls_evals = 0

        f_val, grad = objective.value_and_gradient(w)
        grad_norm = float(np.linalg.norm(grad))
        converged = self.criteria.gradient_converged(grad_norm)
        n_iter = 0
        sample_size = self._sample_size(n_samples)

        while not converged and n_iter < self.criteria.max_iterations:
            idx = rng.choice(n_samples, size=sample_size, replace=False)
            sampled = sampled_part.minibatch(idx)

            def subsampled_hvp(v: np.ndarray) -> np.ndarray:
                out = sampled.hvp(w, v)
                if deterministic_part is not None:
                    out = out + deterministic_part.hvp(w, v)
                return out

            cg_result = conjugate_gradient(
                subsampled_hvp, -grad, tol=self.cg_tol, max_iter=self.cg_max_iter
            )
            direction = cg_result.x
            if not np.any(direction):
                direction = -grad
            ls = armijo_backtracking(
                objective.value,
                w,
                direction,
                grad,
                f_val,
                alpha0=1.0,
                beta=self.line_search_beta,
                rho=self.line_search_rho,
                max_iter=self.line_search_max_iter,
            )
            total_cg_iters += cg_result.n_iterations
            total_ls_evals += ls.n_evaluations
            if ls.step_size == 0.0:
                converged = True
                break

            w = w + ls.step_size * direction
            prev_val = f_val
            f_val, grad = objective.value_and_gradient(w)
            grad_norm = float(np.linalg.norm(grad))
            n_iter += 1

            record = IterationRecord(
                iteration=n_iter - 1,
                objective=f_val,
                grad_norm=grad_norm,
                step_size=ls.step_size,
                wall_time=stopwatch.elapsed,
                extras={
                    "cg_iterations": cg_result.n_iterations,
                    "line_search_evals": ls.n_evaluations,
                    "hessian_samples": float(sample_size),
                },
            )
            records.append(record)
            if callback is not None:
                callback(record, w)

            converged = self.criteria.gradient_converged(grad_norm) or (
                self.criteria.objective_converged(prev_val, f_val)
            )

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=n_iter,
            converged=bool(converged),
            records=records,
            info={
                "total_cg_iterations": total_cg_iters,
                "total_line_search_evals": total_ls_evals,
                "hessian_sample_size": sample_size,
                "wall_time": stopwatch.elapsed,
            },
        )
