"""Inexact Newton-CG (Algorithm 1 of the paper).

At each iterate the Newton system ``H(x) p = -g(x)`` is solved approximately
with conjugate gradient (relative tolerance ``theta``, small iteration
budget), and the step is globalized with Armijo backtracking (Algorithm 3).
Only Hessian-vector products are used, so the method scales to the
high-dimensional E18-like problems.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.cg import conjugate_gradient
from repro.objectives.base import Objective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
    TerminationCriteria,
)
from repro.solvers.line_search import armijo_backtracking
from repro.utils.timer import Stopwatch


class NewtonCG(Solver):
    """Hessian-free inexact Newton method with Armijo line search.

    Parameters
    ----------
    max_iterations:
        Outer Newton iteration budget.
    grad_tol:
        Stop when ``||g(x)|| <= grad_tol``.
    cg_max_iter, cg_tol:
        Budget and relative tolerance of the inner CG solve (the paper uses
        10 iterations at 1e-4 for Figure 1 and sweeps 10/20/30 at 1e-10 for
        Figure 4).
    line_search_beta, line_search_rho, line_search_max_iter:
        Armijo parameters (paper defaults: beta small, halving, 10 iters).
    rel_obj_tol:
        Optional early stop on relative objective change.
    cg_block:
        Route the inner solve through the block-CG entry point
        (``conjugate_gradient(..., block=True)``).  The Newton system has a
        single right-hand side, which always takes the exact scalar
        recurrence, so this flag never changes iterates — it exists so
        callers solving stacked systems through the same configuration get
        the batched path.
    precision:
        ``"mixed"`` accumulates the CG reduction scalars in float64 (see
        :mod:`repro.backend.precision`); ``None`` follows the session
        default.
    """

    def __init__(
        self,
        *,
        max_iterations: int = 50,
        grad_tol: float = 1e-8,
        cg_max_iter: int = 10,
        cg_tol: float = 1e-4,
        line_search_beta: float = 1e-4,
        line_search_rho: float = 0.5,
        line_search_max_iter: int = 10,
        rel_obj_tol: float = 0.0,
        cg_block: bool = False,
        precision: Optional[str] = None,
    ):
        self.criteria = TerminationCriteria(
            max_iterations=max_iterations, grad_tol=grad_tol, rel_obj_tol=rel_obj_tol
        )
        if cg_max_iter < 1:
            raise ValueError(f"cg_max_iter must be >= 1, got {cg_max_iter}")
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)
        self.line_search_beta = float(line_search_beta)
        self.line_search_rho = float(line_search_rho)
        self.line_search_max_iter = int(line_search_max_iter)
        self.cg_block = bool(cg_block)
        self.precision = precision

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        w = self._prepare_start(objective, w0)
        backend = objective.backend
        stopwatch = Stopwatch().start()
        records = []
        total_cg_iters = 0
        total_ls_evals = 0

        # The fused entry point computes the forward pass (logits,
        # log-sum-exp, probabilities) once; the returned Hessian operator is
        # bound to this exact iterate so every CG matvec reuses it.
        f_val, grad, hvp_op = objective.value_and_gradient_and_hvp_operator(w)
        grad_norm = backend.norm(grad)
        converged = self.criteria.gradient_converged(grad_norm)
        n_iter = 0

        while not converged and n_iter < self.criteria.max_iterations:
            cg_result = conjugate_gradient(
                hvp_op,
                -grad,
                tol=self.cg_tol,
                max_iter=self.cg_max_iter,
                backend=backend,
                precision=self.precision,
                block=self.cg_block,
            )
            direction = cg_result.x
            if not backend.any_nonzero(direction):
                direction = -grad
            ls = armijo_backtracking(
                objective.value,
                w,
                direction,
                grad,
                f_val,
                alpha0=1.0,
                beta=self.line_search_beta,
                rho=self.line_search_rho,
                max_iter=self.line_search_max_iter,
            )
            total_cg_iters += cg_result.n_iterations
            total_ls_evals += ls.n_evaluations

            if ls.step_size == 0.0:
                # No progress possible along the (approximate) Newton
                # direction or the gradient — treat as converged to avoid
                # spinning.
                converged = True
                break

            w = w + ls.step_size * direction
            prev_val = f_val
            f_val, grad, hvp_op = objective.value_and_gradient_and_hvp_operator(w)
            grad_norm = backend.norm(grad)
            n_iter += 1

            record = IterationRecord(
                iteration=n_iter - 1,
                objective=f_val,
                grad_norm=grad_norm,
                step_size=ls.step_size,
                wall_time=stopwatch.elapsed,
                extras={
                    "cg_iterations": cg_result.n_iterations,
                    "cg_relative_residual": cg_result.relative_residual,
                    "line_search_evals": ls.n_evaluations,
                },
            )
            records.append(record)
            if callback is not None:
                callback(record, w)

            converged = self.criteria.gradient_converged(grad_norm) or (
                self.criteria.objective_converged(prev_val, f_val)
            )

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=n_iter,
            converged=bool(converged),
            records=records,
            info={
                "total_cg_iterations": total_cg_iters,
                "total_line_search_evals": total_ls_evals,
                "wall_time": stopwatch.elapsed,
            },
        )
