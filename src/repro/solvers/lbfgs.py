"""Limited-memory BFGS.

Not part of the paper's evaluation, but a standard quasi-Newton reference
point; included so users of the library can compare the Hessian-free Newton-CG
path against a curvature-pair method on the same objectives.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.objectives.base import Objective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
    TerminationCriteria,
)
from repro.solvers.line_search import armijo_backtracking
from repro.utils.timer import Stopwatch


class LBFGS(Solver):
    """L-BFGS with Armijo backtracking.

    Parameters
    ----------
    memory:
        Number of curvature pairs retained (``m`` in the usual notation).
    """

    def __init__(
        self,
        *,
        memory: int = 10,
        max_iterations: int = 200,
        grad_tol: float = 1e-8,
        rel_obj_tol: float = 0.0,
    ):
        if memory < 1:
            raise ValueError(f"memory must be >= 1, got {memory}")
        self.memory = int(memory)
        self.criteria = TerminationCriteria(
            max_iterations=max_iterations, grad_tol=grad_tol, rel_obj_tol=rel_obj_tol
        )

    @staticmethod
    def _two_loop(
        grad: np.ndarray,
        pairs: Deque[Tuple[np.ndarray, np.ndarray, float]],
    ) -> np.ndarray:
        """Standard two-loop recursion producing ``-H_approx^{-1} g``."""
        q = grad.copy()
        alphas = []
        for s, y, rho in reversed(pairs):
            alpha = rho * float(s @ q)
            q -= alpha * y
            alphas.append(alpha)
        if pairs:
            s, y, _ = pairs[-1]
            gamma = float(s @ y) / max(float(y @ y), 1e-300)
            q *= gamma
        for (s, y, rho), alpha in zip(pairs, reversed(alphas)):
            beta = rho * float(y @ q)
            q += (alpha - beta) * s
        return -q

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        w = self._prepare_start(objective, w0)
        stopwatch = Stopwatch().start()
        records = []
        pairs: Deque[Tuple[np.ndarray, np.ndarray, float]] = deque(maxlen=self.memory)

        f_val, grad = objective.value_and_gradient(w)
        grad_norm = float(np.linalg.norm(grad))
        converged = self.criteria.gradient_converged(grad_norm)
        n_iter = 0

        while not converged and n_iter < self.criteria.max_iterations:
            direction = self._two_loop(grad, pairs) if pairs else -grad
            ls = armijo_backtracking(
                objective.value, w, direction, grad, f_val, alpha0=1.0, max_iter=25
            )
            if ls.step_size == 0.0:
                converged = True
                break
            w_new = w + ls.step_size * direction
            prev_val = f_val
            f_val, grad_new = objective.value_and_gradient(w_new)

            s = w_new - w
            y = grad_new - grad
            sy = float(s @ y)
            if sy > 1e-12:
                pairs.append((s, y, 1.0 / sy))

            w, grad = w_new, grad_new
            grad_norm = float(np.linalg.norm(grad))
            n_iter += 1
            record = IterationRecord(
                iteration=n_iter - 1,
                objective=f_val,
                grad_norm=grad_norm,
                step_size=ls.step_size,
                wall_time=stopwatch.elapsed,
                extras={"memory_pairs": len(pairs)},
            )
            records.append(record)
            if callback is not None:
                callback(record, w)
            converged = self.criteria.gradient_converged(grad_norm) or (
                self.criteria.objective_converged(prev_val, f_val)
            )

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=n_iter,
            converged=bool(converged),
            records=records,
            info={"wall_time": stopwatch.elapsed},
        )
