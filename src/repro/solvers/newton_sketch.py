"""Newton-Sketch (Pilanci & Wainwright) — sketched-Hessian Newton iterations.

The paper's related work cites Newton-Sketch (via Berahas et al., ref. [1]) as
the other main family of approximate second-order methods next to sub-sampled
Newton.  Instead of sampling rows of the data, the square-root factor ``A(w)``
of the Gauss-Newton Hessian ``H(w) = A(w)^T A(w)`` is compressed with a
randomized sketch ``S`` (Gaussian, count sketch, SRHT, or row sampling from
:mod:`repro.linalg.sketching`), and the Newton system is solved against the
sketched Hessian ``(S A)^T (S A) + reg``.

The solver works with any objective whose data-fit part exposes
``hessian_sqrt(w)`` (``(m, dim)`` array with ``H = sqrt^T sqrt``):
:class:`~repro.objectives.logistic.BinaryLogistic` and
:class:`~repro.objectives.least_squares.LeastSquares` provide it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.cg import conjugate_gradient
from repro.linalg.sketching import sketch_matrix
from repro.objectives.base import Objective, RegularizedObjective
from repro.solvers.base import (
    CallbackType,
    IterationRecord,
    Solver,
    SolverResult,
    TerminationCriteria,
)
from repro.solvers.line_search import armijo_backtracking
from repro.utils.rng import check_random_state
from repro.utils.timer import Stopwatch


def _split_sqrt_part(objective: Objective):
    """Return ``(sqrt_part, extra_part)`` where ``sqrt_part.hessian_sqrt`` exists."""
    if isinstance(objective, RegularizedObjective) and hasattr(
        objective.loss, "hessian_sqrt"
    ):
        return objective.loss, objective.regularizer
    if hasattr(objective, "hessian_sqrt"):
        return objective, None
    raise TypeError(
        "NewtonSketch requires an objective whose data-fit part exposes "
        "hessian_sqrt(w) (BinaryLogistic, LeastSquares, or a RegularizedObjective "
        "wrapping one)"
    )


class NewtonSketch(Solver):
    """Newton's method with a randomly sketched Gauss-Newton Hessian.

    Parameters
    ----------
    sketch_size:
        Number of sketch rows ``m``; accuracy improves with ``m`` while the
        per-iteration cost scales linearly in it.
    sketch_kind:
        ``"gaussian"`` (default), ``"count"``, ``"rows"`` or ``"srht"``.
    max_iterations, grad_tol, rel_obj_tol:
        Outer-loop termination.
    cg_max_iter, cg_tol:
        Budget and tolerance of the CG solve against the sketched Hessian.
    line_search_*:
        Armijo backtracking parameters.
    random_state:
        Seed for the per-iteration sketches.
    """

    def __init__(
        self,
        *,
        sketch_size: int = 100,
        sketch_kind: str = "gaussian",
        max_iterations: int = 50,
        grad_tol: float = 1e-8,
        cg_max_iter: int = 25,
        cg_tol: float = 1e-6,
        line_search_beta: float = 1e-4,
        line_search_rho: float = 0.5,
        line_search_max_iter: int = 20,
        rel_obj_tol: float = 0.0,
        random_state=0,
    ):
        if sketch_size < 1:
            raise ValueError(f"sketch_size must be >= 1, got {sketch_size}")
        self.sketch_size = int(sketch_size)
        self.sketch_kind = str(sketch_kind)
        self.criteria = TerminationCriteria(
            max_iterations=max_iterations, grad_tol=grad_tol, rel_obj_tol=rel_obj_tol
        )
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)
        self.line_search_beta = float(line_search_beta)
        self.line_search_rho = float(line_search_rho)
        self.line_search_max_iter = int(line_search_max_iter)
        self.random_state = random_state

    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        sqrt_part, extra_part = _split_sqrt_part(objective)
        rng = check_random_state(self.random_state)

        w = self._prepare_start(objective, w0)
        stopwatch = Stopwatch().start()
        records = []
        total_cg_iters = 0
        total_ls_evals = 0

        f_val, grad = objective.value_and_gradient(w)
        grad_norm = float(np.linalg.norm(grad))
        converged = self.criteria.gradient_converged(grad_norm)
        n_iter = 0

        while not converged and n_iter < self.criteria.max_iterations:
            A = np.asarray(sqrt_part.hessian_sqrt(w))
            if A.ndim != 2 or A.shape[1] != objective.dim:
                raise ValueError(
                    f"hessian_sqrt returned shape {A.shape}, expected (*, {objective.dim})"
                )
            m = min(self.sketch_size, A.shape[0])
            seed = int(rng.integers(0, 2**31 - 1))
            S = sketch_matrix(self.sketch_kind, m, A.shape[0], random_state=seed)
            SA = np.asarray(S @ A)

            def sketched_hvp(v: np.ndarray) -> np.ndarray:
                out = SA.T @ (SA @ v)
                if extra_part is not None:
                    out = out + extra_part.hvp(w, v)
                return out

            cg_result = conjugate_gradient(
                sketched_hvp, -grad, tol=self.cg_tol, max_iter=self.cg_max_iter
            )
            direction = cg_result.x
            if not np.any(direction):
                direction = -grad
            ls = armijo_backtracking(
                objective.value,
                w,
                direction,
                grad,
                f_val,
                alpha0=1.0,
                beta=self.line_search_beta,
                rho=self.line_search_rho,
                max_iter=self.line_search_max_iter,
            )
            total_cg_iters += cg_result.n_iterations
            total_ls_evals += ls.n_evaluations
            if ls.step_size == 0.0:
                converged = True
                break

            w = w + ls.step_size * direction
            prev_val = f_val
            f_val, grad = objective.value_and_gradient(w)
            grad_norm = float(np.linalg.norm(grad))
            n_iter += 1

            record = IterationRecord(
                iteration=n_iter - 1,
                objective=f_val,
                grad_norm=grad_norm,
                step_size=ls.step_size,
                wall_time=stopwatch.elapsed,
                extras={
                    "cg_iterations": cg_result.n_iterations,
                    "line_search_evals": ls.n_evaluations,
                    "sketch_rows": float(m),
                },
            )
            records.append(record)
            if callback is not None:
                callback(record, w)

            converged = self.criteria.gradient_converged(grad_norm) or (
                self.criteria.objective_converged(prev_val, f_val)
            )

        stopwatch.stop()
        return SolverResult(
            w=w,
            objective=f_val,
            grad_norm=grad_norm,
            n_iterations=n_iter,
            converged=bool(converged),
            records=records,
            info={
                "total_cg_iterations": total_cg_iters,
                "total_line_search_evals": total_ls_evals,
                "sketch_kind": self.sketch_kind,
                "sketch_size": self.sketch_size,
                "wall_time": stopwatch.elapsed,
            },
        )
