"""Single-node solvers.

The inexact Newton-CG solver (Algorithm 1 of the paper) is the workhorse used
inside every Newton-ADMM worker; the first-order solvers are the single-node
counterparts of the distributed baselines and are exposed for completeness and
for the examples.
"""

from repro.solvers.base import (
    CountingObjective,
    IterationRecord,
    Solver,
    SolverResult,
    TerminationCriteria,
)
from repro.solvers.line_search import armijo_backtracking, LineSearchResult
from repro.solvers.newton_cg import NewtonCG
from repro.solvers.newton_sketch import NewtonSketch
from repro.solvers.subsampled_newton import SubsampledNewton
from repro.solvers.trust_region import SteihaugResult, TrustRegionNewton, steihaug_cg
from repro.solvers.gradient_descent import GradientDescent
from repro.solvers.sgd import SGD
from repro.solvers.adaptive import Adam, Adagrad, RMSProp, Adadelta
from repro.solvers.svrg import SVRG
from repro.solvers.lbfgs import LBFGS

__all__ = [
    "CountingObjective",
    "IterationRecord",
    "Solver",
    "SolverResult",
    "TerminationCriteria",
    "armijo_backtracking",
    "LineSearchResult",
    "NewtonCG",
    "TrustRegionNewton",
    "steihaug_cg",
    "SteihaugResult",
    "SubsampledNewton",
    "NewtonSketch",
    "GradientDescent",
    "SGD",
    "Adam",
    "Adagrad",
    "RMSProp",
    "Adadelta",
    "SVRG",
    "LBFGS",
]
