"""Shared solver machinery: results, iteration records, termination, counting."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.backend import copy_array
from repro.objectives.base import Objective


@dataclass
class IterationRecord:
    """One outer iteration of a solver.

    Attributes
    ----------
    iteration:
        0-based outer iteration index.
    objective:
        Objective value after the iteration.
    grad_norm:
        Euclidean norm of the gradient after the iteration.
    step_size:
        Step size actually taken (``nan`` when not applicable).
    wall_time:
        Cumulative measured wall-clock seconds since the solve started.
    extras:
        Solver-specific diagnostics (CG iterations, line-search evals, ...).
    """

    iteration: int
    objective: float
    grad_norm: float
    step_size: float = float("nan")
    wall_time: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class SolverResult:
    """Outcome of a single-node solve."""

    w: np.ndarray
    objective: float
    grad_norm: float
    n_iterations: int
    converged: bool
    records: List[IterationRecord] = field(default_factory=list)
    info: Dict[str, object] = field(default_factory=dict)

    def objective_trace(self) -> np.ndarray:
        return np.array([r.objective for r in self.records])

    def grad_norm_trace(self) -> np.ndarray:
        return np.array([r.grad_norm for r in self.records])


@dataclass
class TerminationCriteria:
    """Stopping rules shared by the iterative solvers.

    A solve stops when *any* of the criteria triggers:

    * gradient norm below ``grad_tol`` (the paper's ``||g|| < eps`` test),
    * relative objective decrease below ``rel_obj_tol`` between iterations,
    * iteration budget ``max_iterations`` exhausted (reported as not
      converged).
    """

    max_iterations: int = 100
    grad_tol: float = 1e-8
    rel_obj_tol: float = 0.0

    def gradient_converged(self, grad_norm: float) -> bool:
        return grad_norm <= self.grad_tol

    def objective_converged(self, prev: float, current: float) -> bool:
        if self.rel_obj_tol <= 0.0:
            return False
        denom = max(abs(prev), 1e-300)
        return abs(prev - current) / denom <= self.rel_obj_tol


class CountingObjective(Objective):
    """Wrapper that counts evaluations and accumulated FLOPs of an objective.

    The distributed runtime wraps every worker's local objective in one of
    these; the FLOP total is what the device model converts into modelled
    compute time.
    """

    def __init__(self, base: Objective):
        self.base = base
        self.dim = base.dim
        self.n_value = 0
        self.n_gradient = 0
        self.n_hvp = 0
        self.flops = 0.0

    @property
    def backend(self):
        return self.base.backend

    def value(self, w: np.ndarray) -> float:
        self.n_value += 1
        self.flops += self.base.flops_value()
        return self.base.value(w)

    def gradient(self, w: np.ndarray) -> np.ndarray:
        self.n_gradient += 1
        self.flops += self.base.flops_gradient()
        return self.base.gradient(w)

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        self.n_value += 1
        self.n_gradient += 1
        # Charged as the *fused* cost: value and gradient share the forward
        # pass (logits + log-sum-exp), so this is less than
        # flops_value() + flops_gradient() for objectives that fuse.
        self.flops += self.base.flops_value_and_gradient()
        return self.base.value_and_gradient(w)

    def hvp(self, w: np.ndarray, v: np.ndarray) -> np.ndarray:
        self.n_hvp += 1
        self.flops += self.base.flops_hvp()
        return self.base.hvp(w, v)

    def hvp_mat(self, w: np.ndarray, V) -> np.ndarray:
        n_rhs = int(V.shape[1])
        self.n_hvp += n_rhs
        self.flops += n_rhs * self.base.flops_hvp()
        return self.base.hvp_mat(w, V)

    def add_flops(self, flops: float) -> None:
        """Charge work performed outside the wrapper (e.g. mini-batch
        gradients computed directly from the shard by a distributed SGD
        baseline) so it still shows up in the device-time model."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        self.flops += float(flops)

    def reset_counters(self) -> None:
        self.n_value = 0
        self.n_gradient = 0
        self.n_hvp = 0
        self.flops = 0.0

    def counters(self) -> Dict[str, float]:
        return {
            "n_value": self.n_value,
            "n_gradient": self.n_gradient,
            "n_hvp": self.n_hvp,
            "flops": self.flops,
        }

    # FLOP estimates pass straight through.
    def flops_value(self) -> float:
        return self.base.flops_value()

    def flops_gradient(self) -> float:
        return self.base.flops_gradient()

    def flops_value_and_gradient(self) -> float:
        return self.base.flops_value_and_gradient()

    def flops_hvp(self) -> float:
        return self.base.flops_hvp()

    @property
    def n_samples(self) -> int:
        return self.base.n_samples


CallbackType = Callable[[IterationRecord, np.ndarray], None]


class Solver(ABC):
    """Base class for single-node solvers.

    Subclasses implement :meth:`minimize`; construction captures
    hyper-parameters so a configured solver can be reused across problems
    (which is how the distributed drivers use them on every worker).
    """

    @abstractmethod
    def minimize(
        self,
        objective: Objective,
        w0: Optional[np.ndarray] = None,
        *,
        callback: Optional[CallbackType] = None,
    ) -> SolverResult:
        """Minimize ``objective`` starting from ``w0`` (zeros by default)."""

    @staticmethod
    def _prepare_start(objective: Objective, w0: Optional[np.ndarray]) -> np.ndarray:
        if w0 is None:
            return objective.initial_point()
        return copy_array(objective.backend.as_vector(w0, objective.dim, name="w0"))
