"""Micro-batched inference: many concurrent requests, one backend GEMM.

The paper's serving-side observation is that multiclass scoring is a single
``(n, p) @ (p, C-1)`` GEMM plus elementwise softmax work — so *n* concurrent
one-row requests cost barely more than one of them if they are stacked into
one batch.  :class:`MicroBatcher` implements the standard dynamic-batching
policy: the scoring thread drains whatever is queued, waits at most a
configurable window (``0.5–5 ms``) for stragglers, flushes early when a
target batch size is reached, and scores the stacked rows with **one**
forward pass through the same fused log-sum-exp machinery the training
objectives use (:meth:`~repro.backend.base.ArrayBackend.fused_lse_probs`).
Per-request slices are then handed back through futures.

Equivalence contract (pinned in ``tests/test_serving_engine.py``): scoring N
stacked requests as one batch returns, for every request, probabilities
*bit-identical* to scoring it alone on the NumPy fp64 path at the pinned
shapes, and identical to ``SoftmaxCrossEntropy.predict_proba`` — the scorer
replicates its reference-class completion op for op.  The one caveat: BLAS
may select a different GEMM kernel per batch *shape*, which can move results
by ~1 ulp between, say, a 1-row and an 8-row batch at large feature counts;
fp32 models additionally score at their storage precision.  Both tolerances
are documented in ``docs/serving.md``.

Hot swap: each batch snapshots the model reference once, immediately before
scoring; :meth:`MicroBatcher.set_model` replaces the reference atomically
under the queue lock.  An in-flight request is therefore scored by exactly
one fully-loaded :class:`~repro.serving.registry.ServedModel` — never a torn
mixture of two versions.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.backend import BackendLike, get_backend
from repro.serving.errors import InferenceError
from repro.serving.registry import ModelRegistry, ServedModel


def validate_rows(rows, n_features: int) -> np.ndarray:
    """Coerce one request's rows into a dense ``(r, n_features)`` float array."""
    try:
        X = np.asarray(rows, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise InferenceError(f"rows are not numeric: {exc}") from exc
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2 or X.shape[0] == 0:
        raise InferenceError(
            f"rows must be a non-empty 1-D or 2-D array, got shape {X.shape}"
        )
    if X.shape[1] != n_features:
        raise InferenceError(
            f"rows have {X.shape[1]} features, model expects {n_features}"
        )
    if not np.all(np.isfinite(X)):
        raise InferenceError("rows contain NaN or Inf")
    return X


def score_probabilities(backend, model: ServedModel, X) -> np.ndarray:
    """Full-class probabilities ``(n, C)`` for ``X`` under ``model`` — one GEMM.

    Issues exactly one forward pass: one ``matmul`` for the logits and one
    fused log-sum-exp + softmax kernel, then the same reference-class
    completion as :func:`repro.objectives.numerics.full_class_probabilities`
    (op-for-op, so results are bit-identical to the objective's
    ``predict_proba`` on the NumPy backend).  Inputs are cast to the model's
    storage dtype, so fp32 models score in fp32.
    """
    xp = backend.xp
    W = backend.asarray(model.weight_matrix())
    X = backend.asarray(X, dtype=model.dtype)
    logits = xp.matmul(X, W)
    _, p_nonref = backend.fused_lse_probs(logits)
    p_ref = 1.0 - xp.sum(p_nonref, axis=1, keepdims=True)
    p_ref = xp.clip(p_ref, 0.0, 1.0)
    return backend.to_numpy(xp.hstack([p_nonref, p_ref]))


@dataclass
class _Request:
    X: np.ndarray
    kind: str  # "proba" | "predict"
    future: Future
    submitted: float


class BatcherStats:
    """Counters the bench and the ``/stats`` endpoint read."""

    def __init__(self):
        self._lock = threading.Lock()
        self.n_requests = 0
        self.n_rows = 0
        self.n_batches = 0
        self.batch_sizes: List[int] = []
        self.swaps = 0

    def record_batch(self, n_requests: int, n_rows: int) -> None:
        with self._lock:
            self.n_requests += n_requests
            self.n_rows += n_rows
            self.n_batches += 1
            self.batch_sizes.append(n_requests)

    def record_swap(self) -> None:
        with self._lock:
            self.swaps += 1

    def summary(self) -> dict:
        with self._lock:
            sizes = list(self.batch_sizes)
        return {
            "requests": self.n_requests,
            "rows": self.n_rows,
            "batches": self.n_batches,
            "mean_batch_requests": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max_batch_requests": max(sizes) if sizes else 0,
            "model_swaps": self.swaps,
        }


class MicroBatcher:
    """Accumulate concurrent requests for one model and score them together.

    Parameters
    ----------
    backend:
        Array backend the forward pass runs on.
    model:
        Initial :class:`ServedModel`; replace with :meth:`set_model`.
    window_s:
        Maximum extra time the scoring thread waits for more requests after
        it picked up the first one.  ``0`` means drain-only batching: score
        whatever has queued up while the previous batch was being computed.
    max_batch_rows:
        Hard cap on stacked rows per forward pass (memory bound).
    max_batch_requests:
        Flush early once this many requests are queued (``None`` = no early
        flush).  Serving systems set this near the expected concurrency so a
        full batch never idles out the window.
    """

    def __init__(
        self,
        backend,
        model: ServedModel,
        *,
        window_s: float = 0.002,
        max_batch_rows: int = 8192,
        max_batch_requests: Optional[int] = None,
        scorer: Callable = score_probabilities,
    ):
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch_rows < 1:
            raise ValueError(f"max_batch_rows must be >= 1, got {max_batch_rows}")
        self.backend = backend
        self.window_s = float(window_s)
        self.max_batch_rows = int(max_batch_rows)
        self.max_batch_requests = (
            None if max_batch_requests is None else int(max_batch_requests)
        )
        self._scorer = scorer
        self._model = model
        self._cond = threading.Condition()
        self._queue: List[_Request] = []
        self._held = False
        self._closed = False
        self.stats = BatcherStats()
        self._thread = threading.Thread(
            target=self._run, name=f"microbatch-{model.name}", daemon=True
        )
        self._thread.start()

    # -- public API --------------------------------------------------------
    @property
    def model(self) -> ServedModel:
        with self._cond:
            return self._model

    def set_model(self, model: ServedModel) -> ServedModel:
        """Hot-swap the served model; returns the previous one.

        Requests already queued are scored with whichever snapshot their
        batch takes — each batch sees exactly one model.
        """
        with self._cond:
            previous, self._model = self._model, model
        self.stats.record_swap()
        return previous

    def submit(self, X: np.ndarray, kind: str = "proba") -> Future:
        """Enqueue one request; the future resolves to its sliced result."""
        if kind not in ("proba", "predict"):
            raise ValueError(f"kind must be 'proba' or 'predict', got {kind!r}")
        future: Future = Future()
        request = _Request(X=X, kind=kind, future=future, submitted=time.monotonic())
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.append(request)
            self._cond.notify_all()
        return future

    def hold(self) -> None:
        """Test hook: park the scoring thread so a batch can be staged."""
        with self._cond:
            self._held = True

    def release(self) -> None:
        with self._cond:
            self._held = False
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=5.0)

    # -- scoring loop ------------------------------------------------------
    def _full(self) -> bool:
        if self.max_batch_requests is not None and len(self._queue) >= self.max_batch_requests:
            return True
        rows = sum(r.X.shape[0] for r in self._queue)
        return rows >= self.max_batch_rows

    def _run(self) -> None:
        while True:
            with self._cond:
                while (not self._queue or self._held) and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                if not self._held and self.window_s > 0 and not self._full():
                    deadline = time.monotonic() + self.window_s
                    while not self._closed and not self._full():
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(timeout=remaining)
                batch: List[_Request] = []
                rows = 0
                while self._queue and len(self._queue[0].X) + rows <= self.max_batch_rows:
                    if (
                        self.max_batch_requests is not None
                        and len(batch) >= self.max_batch_requests
                    ):
                        break
                    request = self._queue.pop(0)
                    rows += request.X.shape[0]
                    batch.append(request)
                if not batch and self._queue:
                    # A single over-sized request: score it alone.
                    batch = [self._queue.pop(0)]
                    rows = batch[0].X.shape[0]
                model = self._model  # one snapshot per batch (hot-swap safety)
            if batch:
                self._score_batch(batch, model)

    def _score_batch(self, batch: List[_Request], model: ServedModel) -> None:
        X = (
            np.concatenate([r.X for r in batch], axis=0)
            if len(batch) > 1
            else batch[0].X
        )
        try:
            probs = self._scorer(self.backend, model, X)
        except BaseException as exc:  # surface scoring failures per request
            for request in batch:
                request.future.set_exception(exc)
            return
        self.stats.record_batch(len(batch), X.shape[0])
        offset = 0
        for request in batch:
            r = request.X.shape[0]
            block = probs[offset : offset + r]
            offset += r
            if request.kind == "predict":
                request.future.set_result(np.argmax(block, axis=1).astype(np.int64))
            else:
                request.future.set_result(np.array(block, copy=True))


class InferenceEngine:
    """Registry-backed serving engine: one :class:`MicroBatcher` per model.

    ``predict``/``predict_proba`` with ``batched=True`` (the default) go
    through the micro-batcher; ``batched=False`` scores the request
    immediately in the calling thread with its own forward pass — the
    per-request baseline the bench compares against.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        backend: BackendLike = None,
        window_s: float = 0.002,
        max_batch_rows: int = 8192,
        max_batch_requests: Optional[int] = None,
    ):
        self.registry = registry
        self.backend = get_backend(backend)
        self.window_s = float(window_s)
        self.max_batch_rows = int(max_batch_rows)
        self.max_batch_requests = max_batch_requests
        self._batchers: Dict[str, MicroBatcher] = {}
        self._lock = threading.Lock()

    # -- model lifecycle ---------------------------------------------------
    def _batcher(self, name: str) -> MicroBatcher:
        with self._lock:
            batcher = self._batchers.get(name)
            if batcher is None:
                model = self.registry.load(name)
                batcher = MicroBatcher(
                    self.backend,
                    model,
                    window_s=self.window_s,
                    max_batch_rows=self.max_batch_rows,
                    max_batch_requests=self.max_batch_requests,
                )
                self._batchers[name] = batcher
            return batcher

    def model(self, name: str) -> ServedModel:
        """The model currently being served for ``name``."""
        return self._batcher(name).model

    def refresh(self, name: str) -> ServedModel:
        """Reload ``name``'s active registry version and hot-swap it in.

        Returns the model now being served.  In-flight requests finish on
        whichever snapshot their batch took; no request is dropped.
        """
        model = self.registry.load(name)
        with self._lock:
            batcher = self._batchers.get(name)
        if batcher is None:
            return self._batcher(name).model
        if batcher.model.version != model.version:
            batcher.set_model(model)
        return model

    # -- scoring -----------------------------------------------------------
    def predict_proba(self, name: str, rows, *, batched: bool = True) -> np.ndarray:
        """Class probabilities ``(r, C)`` for one request."""
        batcher = self._batcher(name)
        X = validate_rows(rows, batcher.model.n_features)
        if not batched:
            return score_probabilities(self.backend, batcher.model, X)
        return self._batcher(name).submit(X, kind="proba").result()

    def predict(self, name: str, rows, *, batched: bool = True) -> np.ndarray:
        """Most-likely class per row for one request."""
        batcher = self._batcher(name)
        X = validate_rows(rows, batcher.model.n_features)
        if not batched:
            probs = score_probabilities(self.backend, batcher.model, X)
            return np.argmax(probs, axis=1).astype(np.int64)
        return batcher.submit(X, kind="predict").result()

    # -- introspection / shutdown -----------------------------------------
    def stats(self) -> dict:
        with self._lock:
            batchers = dict(self._batchers)
        return {
            "window_s": self.window_s,
            "max_batch_rows": self.max_batch_rows,
            "max_batch_requests": self.max_batch_requests,
            "backend": self.backend.name,
            "models": {
                name: {"version": b.model.version, **b.stats.summary()}
                for name, b in batchers.items()
            },
        }

    def close(self) -> None:
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()
