"""Background training jobs on top of the harness runner.

A job is one :func:`repro.harness.runner.run_method` call — the same code
path as ``python -m repro run`` — executed on a worker thread.  Progress
streams out of the solver's per-epoch trace records via the ``on_record``
callback, cancellation is cooperative via ``should_stop`` (polled at every
epoch boundary), and a finished job can auto-publish its final iterate into
the model registry (``publish_as``), closing the train → serve loop.

Every cluster option the CLI accepts is accepted here, including
``engine="process"`` (real worker OS processes); on that engine progress
arrives when the fit returns and cancellation applies from the next epoch of
the *submitting* process only — the limitation is recorded on the job.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Dict, List, Optional

from repro.harness.config import ClusterConfig, SolverConfig
from repro.harness.runner import SOLVER_REGISTRY, run_method
from repro.metrics.traces import EpochRecord
from repro.serving.errors import JobError, JobNotFoundError
from repro.serving.registry import ModelRegistry

#: terminal states a job can end in
TERMINAL_STATES = ("succeeded", "failed", "cancelled")


def _record_dict(record: EpochRecord) -> dict:
    return {
        "epoch": record.epoch,
        "objective": record.objective,
        "grad_norm": record.grad_norm,
        "train_accuracy": record.train_accuracy,
        "test_accuracy": record.test_accuracy,
        "modelled_time": record.modelled_time,
        "comm_rounds": record.comm_rounds,
    }


class TrainingJob:
    """State of one submitted training run (thread-safe snapshots)."""

    def __init__(self, job_id: str, payload: dict):
        self.id = job_id
        self.payload = payload
        self.status = "queued"
        self.records: List[dict] = []
        self.error: Optional[dict] = None
        self.published: Optional[dict] = None
        self.result: Optional[dict] = None
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.cancel_requested = threading.Event()
        self._lock = threading.Lock()

    def snapshot(self, *, after: int = 0) -> dict:
        """JSON view of the job; ``after`` returns only records past that epoch."""
        with self._lock:
            records = [r for r in self.records if r["epoch"] > after]
            return {
                "id": self.id,
                "status": self.status,
                "solver": self.payload.get("solver", {}).get("name"),
                "dataset": self.payload.get("cluster", {}).get("dataset"),
                "epochs_done": len(self.records),
                "records": records,
                "error": self.error,
                "published": self.published,
                "result": self.result,
                "submitted": self.submitted,
                "started": self.started,
                "finished": self.finished,
                "cancel_requested": self.cancel_requested.is_set(),
            }

    def append_record(self, record: EpochRecord) -> None:
        with self._lock:
            self.records.append(_record_dict(record))


class TrainingJobManager:
    """Submit / inspect / cancel training jobs; optionally publish results."""

    def __init__(self, registry: Optional[ModelRegistry] = None):
        self.registry = registry
        self._jobs: Dict[str, TrainingJob] = {}
        self._lock = threading.Lock()
        self._counter = 0

    # -- submission --------------------------------------------------------
    def _validate(self, payload: dict) -> tuple:
        solver = dict(payload.get("solver") or {})
        cluster = dict(payload.get("cluster") or {})
        name = solver.pop("name", None)
        if not name:
            raise JobError("payload.solver.name is required")
        if name not in SOLVER_REGISTRY:
            raise JobError(
                f"unknown solver {name!r}; available: {sorted(SOLVER_REGISTRY)}"
            )
        if "dataset" not in cluster:
            raise JobError("payload.cluster.dataset is required")
        known = {f for f in ClusterConfig.__dataclass_fields__}
        unknown = set(cluster) - known
        if unknown:
            raise JobError(
                f"unknown cluster option(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}"
            )
        publish_as = payload.get("publish_as")
        if publish_as is not None and self.registry is None:
            raise JobError("publish_as requires a model registry")
        try:
            solver_config = SolverConfig(name=name, kwargs=solver)
            cluster_config = ClusterConfig(**cluster)
        except (TypeError, ValueError) as exc:
            raise JobError(f"invalid job config: {exc}") from exc
        return solver_config, cluster_config, publish_as

    def submit(self, payload: dict) -> dict:
        """Validate and start one job; returns its initial snapshot."""
        solver_config, cluster_config, publish_as = self._validate(payload)
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:04d}"
            job = TrainingJob(job_id, payload)
            self._jobs[job_id] = job
        thread = threading.Thread(
            target=self._run,
            args=(job, solver_config, cluster_config, publish_as),
            name=job_id,
            daemon=True,
        )
        thread.start()
        return job.snapshot()

    def _run(
        self,
        job: TrainingJob,
        solver_config: SolverConfig,
        cluster_config: ClusterConfig,
        publish_as: Optional[str],
    ) -> None:
        job.status = "running"
        job.started = time.time()
        try:
            trace = run_method(
                solver_config,
                cluster_config,
                on_record=job.append_record,
                should_stop=job.cancel_requested.is_set,
            )
        except Exception as exc:
            job.error = {"type": type(exc).__name__, "detail": str(exc)}
            job.error["traceback"] = traceback.format_exc(limit=10)
            job.status = "failed"
            job.finished = time.time()
            return
        cancelled = trace.info.get("stopped") == "requested"
        job.result = {
            "epochs": trace.n_epochs,
            "final_objective": (
                float(trace.final.objective) if trace.records else None
            ),
            "final_test_accuracy": (
                float(trace.final.test_accuracy) if trace.records else None
            ),
            "modelled_time": trace.total_time("modelled"),
            "method": trace.method,
            "dataset": trace.dataset,
        }
        if publish_as and not cancelled:
            model = self.registry.publish_trace(
                publish_as, trace, metadata={"job_id": job.id}
            )
            job.published = {"name": model.name, "version": model.version}
        job.status = "cancelled" if cancelled else "succeeded"
        job.finished = time.time()

    # -- inspection / cancellation ----------------------------------------
    def _job(self, job_id: str) -> TrainingJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job {job_id!r}")
        return job

    def get(self, job_id: str, *, after: int = 0) -> dict:
        return self._job(job_id).snapshot(after=after)

    def list_jobs(self) -> List[dict]:
        with self._lock:
            jobs = list(self._jobs.values())
        out = []
        for job in sorted(jobs, key=lambda j: j.id):
            snapshot = job.snapshot()
            snapshot.pop("records", None)
            out.append(snapshot)
        return out

    def cancel(self, job_id: str) -> dict:
        """Request cooperative cancellation; the job stops at its next epoch."""
        job = self._job(job_id)
        if job.status not in TERMINAL_STATES:
            job.cancel_requested.set()
        return job.snapshot()

    def wait(self, job_id: str, *, timeout: float = 60.0, poll: float = 0.02) -> dict:
        """Block until the job reaches a terminal state (test/smoke helper)."""
        deadline = time.monotonic() + timeout
        job = self._job(job_id)
        while job.status not in TERMINAL_STATES:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.status!r} after {timeout}s"
                )
            time.sleep(poll)
        return job.snapshot()
