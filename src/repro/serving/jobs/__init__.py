"""Training jobs: submit a solver+dataset config, poll progress, cancel."""

from repro.serving.jobs.manager import TrainingJob, TrainingJobManager
