"""High-throughput serving layer: model registry, micro-batched inference,
and a training-job API.

See ``docs/serving.md`` for the guide.  Quick tour::

    from repro.serving import ModelRegistry, InferenceEngine

    registry = ModelRegistry("model_registry")
    registry.publish("mnist", w, n_classes=10)          # atomic, versioned
    engine = InferenceEngine(registry, window_s=0.002)  # micro-batching
    engine.predict_proba("mnist", rows)                 # one GEMM per batch

    python -m repro serve --root model_registry         # the HTTP app
"""

from repro.serving.engine import InferenceEngine, MicroBatcher, score_probabilities
from repro.serving.errors import (
    InferenceError,
    JobError,
    JobNotFoundError,
    ModelFormatError,
    ModelNotFoundError,
    RegistryError,
    ServingDependencyError,
    ServingError,
)
from repro.serving.jobs.manager import TrainingJob, TrainingJobManager
from repro.serving.registry import ModelRegistry, ServedModel
