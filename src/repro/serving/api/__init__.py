"""Versioned HTTP API surface (route table + dispatch, framework-agnostic)."""

from repro.serving.api.v1 import ROUTES, V1Api
