"""``/api/v1`` — the serving API's route table and dispatcher.

The route table below is the single definition of the HTTP surface.  Two
frontends consume it:

* :mod:`repro.serving.app` registers every route on a FastAPI app (when
  FastAPI is installed — the ``serve`` extra);
* :mod:`repro.serving.http_fallback` serves the same routes from a
  stdlib ``ThreadingHTTPServer`` so ``python -m repro serve`` works without
  optional dependencies (and so CI can smoke-test the API anywhere).

Handlers return ``(status_code, payload)`` and never raise for client
errors: every :class:`~repro.serving.errors.ServingError` is mapped to its
structured ``{"error": {"type": ..., "detail": ...}}`` response.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from repro.serving.engine import InferenceEngine
from repro.serving.errors import ServingError
from repro.serving.jobs.manager import TrainingJobManager
from repro.serving.registry import ModelRegistry
from repro.serving.services.inference import InferenceService
from repro.serving.services.models import ModelService

#: (HTTP method, path template, V1Api handler name).  ``{param}`` segments
#: become FastAPI path parameters / fallback-regex capture groups.
ROUTES = (
    ("GET", "/api/v1/health", "health"),
    ("GET", "/api/v1/models", "list_models"),
    ("GET", "/api/v1/models/{name}", "describe_model"),
    ("POST", "/api/v1/models/{name}", "publish_model"),
    ("POST", "/api/v1/models/{name}/activate", "activate_model"),
    ("POST", "/api/v1/models/{name}/rollback", "rollback_model"),
    ("POST", "/api/v1/models/{name}/predict", "predict"),
    ("POST", "/api/v1/models/{name}/predict_proba", "predict_proba"),
    ("GET", "/api/v1/stats", "stats"),
    ("GET", "/api/v1/jobs", "list_jobs"),
    ("POST", "/api/v1/jobs", "submit_job"),
    ("GET", "/api/v1/jobs/{job_id}", "get_job"),
    ("POST", "/api/v1/jobs/{job_id}/cancel", "cancel_job"),
)


def _template_regex(template: str) -> re.Pattern:
    pattern = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template)
    return re.compile(f"^{pattern}$")


class V1Api:
    """The v1 API: services wired together plus a method/path dispatcher."""

    def __init__(
        self,
        registry: ModelRegistry,
        engine: InferenceEngine,
        jobs: TrainingJobManager,
    ):
        self.registry = registry
        self.engine = engine
        self.jobs = jobs
        self.models = ModelService(registry, engine)
        self.inference = InferenceService(engine)
        self._routes = [
            (method, template, _template_regex(template), handler)
            for method, template, handler in ROUTES
        ]

    # -- handlers (each returns (status, payload)) -------------------------
    def health(self, params, query, payload):
        return 200, {
            "status": "ok",
            "backend": self.engine.backend.name,
            "window_s": self.engine.window_s,
            "models": len(self.registry.list_models()),
        }

    def list_models(self, params, query, payload):
        return 200, self.models.list_models()

    def describe_model(self, params, query, payload):
        return 200, self.models.describe(params["name"])

    def publish_model(self, params, query, payload):
        return 201, self.models.publish(params["name"], payload or {})

    def activate_model(self, params, query, payload):
        return 200, self.models.activate(params["name"], payload or {})

    def rollback_model(self, params, query, payload):
        return 200, self.models.rollback(params["name"])

    def predict(self, params, query, payload):
        return 200, self.inference.predict(params["name"], payload or {})

    def predict_proba(self, params, query, payload):
        return 200, self.inference.predict_proba(params["name"], payload or {})

    def stats(self, params, query, payload):
        return 200, self.inference.stats()

    def list_jobs(self, params, query, payload):
        return 200, {"jobs": self.jobs.list_jobs()}

    def submit_job(self, params, query, payload):
        return 201, self.jobs.submit(payload or {})

    def get_job(self, params, query, payload):
        after = int(query.get("after", 0)) if query else 0
        return 200, self.jobs.get(params["job_id"], after=after)

    def cancel_job(self, params, query, payload):
        return 200, self.jobs.cancel(params["job_id"])

    # -- dispatch ----------------------------------------------------------
    def call(
        self,
        handler: str,
        params: Dict[str, str],
        query: Optional[Dict[str, str]] = None,
        payload: Optional[dict] = None,
    ) -> Tuple[int, dict]:
        """Invoke one handler by name, mapping ServingError to its status."""
        try:
            return getattr(self, handler)(params, query or {}, payload or {})
        except ServingError as exc:
            return exc.status, {"error": exc.to_payload()}

    def dispatch(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        payload: Optional[dict] = None,
    ) -> Tuple[int, dict]:
        """Route a raw (method, path) — the stdlib fallback server's entry."""
        path_exists = False
        for route_method, _, regex, handler in self._routes:
            match = regex.match(path)
            if not match:
                continue
            path_exists = True
            if route_method != method.upper():
                continue
            return self.call(handler, match.groupdict(), query, payload)
        if path_exists:
            return 405, {"error": {"type": "method_not_allowed", "detail": method}}
        return 404, {"error": {"type": "not_found", "detail": path}}
