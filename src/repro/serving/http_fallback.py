"""Stdlib HTTP frontend for the serving API (no optional dependencies).

A ``ThreadingHTTPServer`` that parses JSON bodies and hands every request to
:meth:`repro.serving.api.v1.V1Api.dispatch` — the exact dispatcher the
FastAPI app delegates to — so the two frontends cannot drift.  Used by
``python -m repro serve`` when FastAPI is not installed, by the CI smoke
script, and by the API tests (which exercise the full HTTP round trip with
``http.client``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.serving.api.v1 import V1Api


class _Handler(BaseHTTPRequestHandler):
    api: V1Api  # set on the subclass built in FallbackServer

    # Serving must stay quiet under load-generating benchmarks.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _respond(self) -> None:
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query))
        length = int(self.headers.get("Content-Length") or 0)
        payload = None
        if length:
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw)
            except ValueError:
                self._write(400, {"error": {"type": "bad_json", "detail": "body is not JSON"}})
                return
        try:
            status, body = self.api.dispatch(self.command, split.path, query, payload)
        except Exception as exc:  # internal bug: structured 500, keep serving
            status, body = 500, {
                "error": {"type": "internal", "detail": f"{type(exc).__name__}: {exc}"}
            }
        self._write(status, body)

    def _write(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._respond()

    def do_POST(self):  # noqa: N802
        self._respond()


class FallbackServer:
    """Threaded HTTP server over a :class:`V1Api`; ``port=0`` picks a free one."""

    def __init__(self, api: V1Api, *, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundHandler", (_Handler,), {"api": api})
        self.api = api
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def start_background(self) -> "FallbackServer":
        """Serve on a daemon thread (tests and the smoke script)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="serving-http", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.api.engine.close()
