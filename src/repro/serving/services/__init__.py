"""Framework-agnostic service layer between the API routes and the core."""

from repro.serving.services.inference import InferenceService
from repro.serving.services.models import ModelService
