"""Model-lifecycle operations behind the ``/api/v1/models`` routes.

Pure Python (no web framework imports): both the FastAPI app and the stdlib
fallback server call these methods, so the API surface has one source of
truth and can be tested without HTTP.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.harness.serialization import decode_array, load_trace
from repro.serving.engine import InferenceEngine
from repro.serving.errors import RegistryError
from repro.serving.registry import ModelRegistry


class ModelService:
    """Publish / activate / roll back registry models and hot-swap the engine."""

    def __init__(self, registry: ModelRegistry, engine: Optional[InferenceEngine] = None):
        self.registry = registry
        self.engine = engine

    def list_models(self) -> dict:
        return {"models": self.registry.list_models()}

    def describe(self, name: str) -> dict:
        info = self.registry.describe(name)
        current = info.get("current")
        if current is not None:
            info["model"] = self.registry.load(name, current).describe()
        return info

    def publish(self, name: str, payload: dict) -> dict:
        """Publish from inline weights or from a saved trace file.

        Payload forms::

            {"weights": [...] | encoded-array, "n_classes": C,
             "n_features": p?, "metadata": {...}?, "activate": true?}
            {"trace_path": "results/run_trace.json", "metadata": {...}?}

        Inline weight lists publish as fp64; the encoded-array form
        (:func:`repro.harness.serialization.encode_array`) preserves the
        training dtype bit-exactly.
        """
        activate = bool(payload.get("activate", True))
        metadata = payload.get("metadata") or {}
        if "trace_path" in payload:
            try:
                trace = load_trace(payload["trace_path"])
            except FileNotFoundError as exc:
                raise RegistryError(f"trace_path not found: {exc}") from exc
            except ValueError as exc:
                raise RegistryError(f"trace_path is not a valid trace: {exc}") from exc
            model = self.registry.publish_trace(
                name, trace, metadata=metadata, activate=activate
            )
        else:
            if "weights" not in payload or "n_classes" not in payload:
                raise RegistryError(
                    "publish payload needs either 'trace_path' or "
                    "'weights' + 'n_classes'"
                )
            weights = payload["weights"]
            if isinstance(weights, dict):
                try:
                    weights = decode_array(weights)
                except ValueError as exc:
                    raise RegistryError(f"bad encoded weights: {exc}") from exc
            else:
                try:
                    weights = np.asarray(weights, dtype=np.float64)
                except (TypeError, ValueError) as exc:
                    raise RegistryError(f"weights are not numeric: {exc}") from exc
            model = self.registry.publish(
                name,
                weights,
                n_classes=int(payload["n_classes"]),
                n_features=(
                    int(payload["n_features"]) if "n_features" in payload else None
                ),
                metadata=metadata,
                activate=activate,
            )
        if activate and self.engine is not None:
            self.engine.refresh(name)
        return {"published": model.describe(), "active": activate}

    def activate(self, name: str, payload: dict) -> dict:
        if "version" not in payload:
            raise RegistryError("activate payload needs 'version'")
        model = self.registry.activate(name, int(payload["version"]))
        if self.engine is not None:
            self.engine.refresh(name)
        return {"activated": model.describe()}

    def rollback(self, name: str) -> dict:
        model = self.registry.rollback(name)
        if self.engine is not None:
            self.engine.refresh(name)
        return {"activated": model.describe(), "rollback": True}
