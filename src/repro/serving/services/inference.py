"""Prediction operations behind the ``/predict`` routes."""

from __future__ import annotations

from repro.serving.engine import InferenceEngine
from repro.serving.errors import InferenceError


class InferenceService:
    """Score requests through the micro-batching engine."""

    def __init__(self, engine: InferenceEngine):
        self.engine = engine

    def _mode(self, payload: dict) -> bool:
        mode = payload.get("mode", "batched")
        if mode not in ("batched", "direct"):
            raise InferenceError(
                f"mode must be 'batched' or 'direct', got {mode!r}"
            )
        return mode == "batched"

    def predict(self, name: str, payload: dict) -> dict:
        """Class labels for ``payload["rows"]`` (one request, r rows)."""
        batched = self._mode(payload)
        labels = self.engine.predict(name, payload.get("rows"), batched=batched)
        model = self.engine.model(name)
        return {
            "model": name,
            "version": model.version,
            "mode": "batched" if batched else "direct",
            "predictions": [int(label) for label in labels],
        }

    def predict_proba(self, name: str, payload: dict) -> dict:
        """Class probabilities ``(r, C)`` for ``payload["rows"]``."""
        batched = self._mode(payload)
        probs = self.engine.predict_proba(name, payload.get("rows"), batched=batched)
        model = self.engine.model(name)
        return {
            "model": name,
            "version": model.version,
            "mode": "batched" if batched else "direct",
            "n_classes": model.n_classes,
            "probabilities": [[float(p) for p in row] for row in probs],
        }

    def stats(self) -> dict:
        return {"engine": self.engine.stats()}
