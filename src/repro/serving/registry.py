"""Versioned, persisted model registry with atomic publish and hot swap.

Layout on disk (everything under one ``root`` directory)::

    root/
      <model-name>/
        versions/
          000001/model.json     # immutable once published
          000002/model.json
        CURRENT                 # text file holding the active version number
        history.json            # activation log (drives rollback)

The two invariants the serving layer depends on:

* **Version files are immutable.**  ``publish`` writes ``model.json`` to a
  temporary file and ``os.replace``s it into place; after that the file is
  never rewritten.  A reader that resolved a version can therefore never see
  a torn model — the worst case is reading a *previous* CURRENT pointer.
* **Activation is atomic.**  ``CURRENT`` is swapped with ``os.replace`` after
  the target version has been loaded and validated, so the pointer can never
  name a corrupt or missing version.

Weights are stored with :func:`repro.harness.serialization.encode_array`
(base64 of the raw bytes + dtype + shape), so a published fp32 model loads
back bit-exactly as fp32 — the registry inherits the round-trip guarantee
pinned in ``tests/test_serving_registry.py``.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.harness.serialization import decode_array, encode_array
from repro.metrics.traces import RunTrace
from repro.serving.errors import ModelFormatError, ModelNotFoundError, RegistryError

SCHEMA = "repro-model/v1"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ServedModel:
    """One immutable, fully-loaded model version.

    The inference engine snapshots a reference to one of these per batch;
    because instances are frozen and version files immutable, an in-flight
    request can never observe a half-swapped model.
    """

    name: str
    version: int
    weights: np.ndarray  #: flat ``(C-1)*p`` vector, original dtype
    n_classes: int
    n_features: int
    metadata: dict = field(default_factory=dict)
    created: float = 0.0

    @property
    def dim(self) -> int:
        return (self.n_classes - 1) * self.n_features

    @property
    def dtype(self) -> np.dtype:
        return self.weights.dtype

    def weight_matrix(self) -> np.ndarray:
        """Weights as the ``(p, C-1)`` matrix the scoring GEMM consumes."""
        return self.weights.reshape(self.n_classes - 1, self.n_features).T

    def describe(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "n_classes": self.n_classes,
            "n_features": self.n_features,
            "dtype": str(self.dtype),
            "created": self.created,
            "metadata": dict(self.metadata),
        }


class ModelRegistry:
    """Filesystem-backed model store; see the module docstring for layout.

    All mutating operations serialize on an in-process lock; reads are
    lock-free (they only touch immutable version files plus the atomically
    swapped ``CURRENT`` pointer), which is what makes hot swap under
    concurrent readers safe.
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # -- paths -------------------------------------------------------------
    def _model_dir(self, name: str) -> Path:
        if not _NAME_RE.match(name or ""):
            raise RegistryError(
                f"invalid model name {name!r}: use letters, digits, '._-' "
                "(must not start with a separator)"
            )
        return self.root / name

    def _version_file(self, name: str, version: int) -> Path:
        return self._model_dir(name) / "versions" / f"{version:06d}" / "model.json"

    # -- publish -----------------------------------------------------------
    def publish(
        self,
        name: str,
        weights,
        *,
        n_classes: int,
        n_features: Optional[int] = None,
        metadata: Optional[dict] = None,
        activate: bool = True,
    ) -> ServedModel:
        """Persist a new version of ``name`` and (by default) activate it.

        ``weights`` is the flat ``(C-1)*p`` coefficient vector in its storage
        dtype (a ``(p, C-1)`` matrix is accepted and flattened).  Returns the
        published :class:`ServedModel`.
        """
        weights = np.asarray(weights)
        if int(n_classes) < 2:
            raise RegistryError(f"n_classes must be >= 2, got {n_classes}")
        n_classes = int(n_classes)
        if weights.ndim == 2:
            # (p, C-1) matrix layout -> flat vector, matching _as_matrix.
            if weights.shape[1] != n_classes - 1:
                raise RegistryError(
                    f"weight matrix must have {n_classes - 1} columns "
                    f"(n_classes={n_classes}), got shape {weights.shape}"
                )
            weights = weights.T.ravel()
        if weights.ndim != 1:
            raise RegistryError(
                f"weights must be a flat vector or (p, C-1) matrix, "
                f"got ndim={weights.ndim}"
            )
        if weights.size == 0 or weights.size % (n_classes - 1) != 0:
            raise RegistryError(
                f"weight vector of size {weights.size} is not divisible by "
                f"n_classes - 1 = {n_classes - 1}"
            )
        inferred = weights.size // (n_classes - 1)
        if n_features is None:
            n_features = inferred
        elif int(n_features) != inferred:
            raise RegistryError(
                f"n_features={n_features} inconsistent with weight vector of "
                f"size {weights.size} and n_classes={n_classes} "
                f"(expected {inferred})"
            )
        with self._lock:
            directory = self._model_dir(name)
            versions_dir = directory / "versions"
            versions_dir.mkdir(parents=True, exist_ok=True)
            version = (self.versions(name) or [0])[-1] + 1
            payload = {
                "schema": SCHEMA,
                "name": name,
                "version": version,
                "n_classes": n_classes,
                "n_features": int(n_features),
                "weights": encode_array(weights),
                "metadata": dict(metadata or {}),
                "created": time.time(),
            }
            target = self._version_file(name, version)
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(payload, indent=2))
            os.replace(tmp, target)  # after this, the version file is immutable
            model = self._load_file(target, name, version)
            if activate:
                self._activate_locked(name, version)
            return model

    def publish_trace(
        self,
        name: str,
        trace: RunTrace,
        *,
        metadata: Optional[dict] = None,
        activate: bool = True,
    ) -> ServedModel:
        """Publish the final iterate of a finished training run.

        Shape information comes from the trace's cluster description
        (``trace.info["cluster"]``), provenance (method, dataset, epochs,
        final objective) is recorded into the version's metadata.
        """
        if trace.final_w is None:
            raise RegistryError("trace has no final_w to publish")
        cluster = trace.info.get("cluster") or {}
        n_classes = cluster.get("n_classes")
        if n_classes is None:
            raise RegistryError(
                "trace.info['cluster'] lacks 'n_classes'; pass weights to "
                "publish() explicitly"
            )
        provenance = {
            "method": trace.method,
            "dataset": trace.dataset,
            "n_workers": trace.n_workers,
            "n_epochs": trace.n_epochs,
        }
        if trace.records:
            provenance["final_objective"] = float(trace.final.objective)
            provenance["final_test_accuracy"] = float(trace.final.test_accuracy)
        provenance.update(metadata or {})
        return self.publish(
            name,
            np.asarray(trace.final_w),
            n_classes=int(n_classes),
            metadata=provenance,
            activate=activate,
        )

    # -- activation / rollback --------------------------------------------
    def activate(self, name: str, version: int) -> ServedModel:
        """Atomically point ``CURRENT`` at ``version`` (hot swap).

        The target version is loaded and validated *before* the pointer is
        swapped, so ``CURRENT`` can never reference a corrupt model.
        """
        with self._lock:
            return self._activate_locked(name, int(version))

    def _activate_locked(self, name: str, version: int) -> ServedModel:
        model = self.load(name, version)  # validates existence + format
        directory = self._model_dir(name)
        current = directory / "CURRENT"
        tmp = directory / "CURRENT.tmp"
        tmp.write_text(f"{version}\n")
        os.replace(tmp, current)
        self._append_history(name, version)
        return model

    def _history_file(self, name: str) -> Path:
        return self._model_dir(name) / "history.json"

    def _append_history(self, name: str, version: int) -> None:
        path = self._history_file(name)
        history = self.history(name)
        history.append({"version": version, "time": time.time()})
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(history, indent=2))
        os.replace(tmp, path)

    def history(self, name: str) -> List[dict]:
        """Activation log, oldest first (empty for never-activated models)."""
        path = self._history_file(name)
        if not path.exists():
            return []
        try:
            return list(json.loads(path.read_text()))
        except ValueError:
            return []

    def rollback(self, name: str) -> ServedModel:
        """Re-activate the version that was active before the current one."""
        with self._lock:
            history = self.history(name)
            current = self.current_version(name)
            previous = [h["version"] for h in history if h["version"] != current]
            if not previous:
                raise RegistryError(
                    f"model {name!r} has no previous activation to roll back to"
                )
            return self._activate_locked(name, int(previous[-1]))

    # -- reading -----------------------------------------------------------
    def versions(self, name: str) -> List[int]:
        """Published version numbers of ``name``, ascending ([] if none)."""
        versions_dir = self._model_dir(name) / "versions"
        if not versions_dir.exists():
            return []
        out = []
        for entry in versions_dir.iterdir():
            if entry.is_dir() and entry.name.isdigit():
                out.append(int(entry.name))
        return sorted(out)

    def current_version(self, name: str) -> Optional[int]:
        """The active version of ``name`` (None when never activated)."""
        current = self._model_dir(name) / "CURRENT"
        try:
            return int(current.read_text().strip())
        except FileNotFoundError:
            return None
        except ValueError as exc:
            raise ModelFormatError(
                f"CURRENT pointer of model {name!r} is corrupt: {exc}"
            ) from exc

    def load(self, name: str, version: Optional[int] = None) -> ServedModel:
        """Load one version (the active one when ``version`` is None)."""
        if version is None:
            version = self.current_version(name)
            if version is None:
                if not self.versions(name):
                    raise ModelNotFoundError(f"model {name!r} does not exist")
                raise ModelNotFoundError(
                    f"model {name!r} has no active version; activate one first"
                )
        version = int(version)
        path = self._version_file(name, version)
        if not path.exists():
            known = self.versions(name)
            raise ModelNotFoundError(
                f"model {name!r} has no version {version}"
                + (f" (published: {known})" if known else " (no versions published)")
            )
        return self._load_file(path, name, version)

    def _load_file(self, path: Path, name: str, version: int) -> ServedModel:
        try:
            payload = json.loads(path.read_text())
        except ValueError as exc:
            raise ModelFormatError(
                f"model file {path} is not valid JSON ({exc})"
            ) from exc
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
            found = payload.get("schema") if isinstance(payload, dict) else type(payload).__name__
            raise ModelFormatError(
                f"model file {path} has schema {found!r}, expected {SCHEMA!r}"
            )
        try:
            weights = decode_array(payload["weights"])
            n_classes = int(payload["n_classes"])
            n_features = int(payload["n_features"])
            metadata = dict(payload.get("metadata") or {})
            created = float(payload.get("created", 0.0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelFormatError(
                f"model file {path} is corrupt or truncated: {exc}"
            ) from exc
        if weights.shape != ((n_classes - 1) * n_features,):
            raise ModelFormatError(
                f"model file {path}: weight shape {weights.shape} does not "
                f"match n_classes={n_classes}, n_features={n_features}"
            )
        return ServedModel(
            name=name,
            version=version,
            weights=weights,
            n_classes=n_classes,
            n_features=n_features,
            metadata=metadata,
            created=created,
        )

    def list_models(self) -> List[dict]:
        """One summary row per model, sorted by name."""
        out = []
        for entry in sorted(self.root.iterdir()) if self.root.exists() else []:
            if not entry.is_dir() or entry.name.startswith("_"):
                continue
            if not _NAME_RE.match(entry.name):
                continue
            versions = self.versions(entry.name)
            if not versions:
                continue
            out.append(
                {
                    "name": entry.name,
                    "current": self.current_version(entry.name),
                    "versions": versions,
                }
            )
        return out

    def describe(self, name: str) -> dict:
        """Full description of one model (versions, current, history)."""
        versions = self.versions(name)
        if not versions:
            raise ModelNotFoundError(f"model {name!r} does not exist")
        current = self.current_version(name)
        return {
            "name": name,
            "current": current,
            "versions": versions,
            "history": self.history(name),
        }
