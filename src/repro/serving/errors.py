"""Structured errors of the serving layer.

Every error a client can trigger derives from :class:`ServingError` and
carries a stable ``kind`` string plus an HTTP status, so the API layer maps
failures to structured JSON responses (``{"error": {...}}``) instead of
leaking tracebacks as 500s.  Internal bugs still raise ordinary exceptions.
"""

from __future__ import annotations


class ServingError(Exception):
    """Base class for client-visible serving failures."""

    #: stable machine-readable error identifier
    kind: str = "serving_error"
    #: HTTP status the API layer responds with
    status: int = 400

    def to_payload(self) -> dict:
        """The ``error`` object returned to API clients."""
        return {"type": self.kind, "detail": str(self)}


class RegistryError(ServingError):
    """Model-registry failures (bad names, version conflicts, I/O)."""

    kind = "registry_error"
    status = 400


class ModelNotFoundError(RegistryError):
    """The requested model name or version does not exist."""

    kind = "model_not_found"
    status = 404


class ModelFormatError(RegistryError):
    """A model file exists but is corrupt, truncated, or schema-incompatible.

    Raised instead of letting ``json``/``base64`` exceptions escape, so a
    damaged file on disk yields a structured 409 — never a traceback.
    """

    kind = "model_format_error"
    status = 409


class InferenceError(ServingError):
    """Bad prediction input (wrong feature count, non-numeric rows, ...)."""

    kind = "inference_error"
    status = 422


class JobError(ServingError):
    """Training-job submission/config failures."""

    kind = "job_error"
    status = 400


class JobNotFoundError(JobError):
    """The requested training-job id does not exist."""

    kind = "job_not_found"
    status = 404


class ServingDependencyError(ServingError):
    """An optional serving dependency (FastAPI / uvicorn) is missing."""

    kind = "missing_dependency"
    status = 500
