"""FastAPI application factory (the ``serve`` extra) plus server bootstrap.

FastAPI / uvicorn are optional (``pip install .[serve]``).  When they are
missing, :func:`create_app` raises a structured
:class:`~repro.serving.errors.ServingDependencyError` and
:func:`run_server` transparently falls back to the stdlib HTTP server
(:mod:`repro.serving.http_fallback`) — same routes, same JSON, no extra
dependencies — so ``python -m repro serve`` works in any environment.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.backend import BackendLike
from repro.serving.api.v1 import ROUTES, V1Api
from repro.serving.engine import InferenceEngine
from repro.serving.errors import ServingDependencyError
from repro.serving.jobs.manager import TrainingJobManager
from repro.serving.registry import ModelRegistry


def build_api(
    root,
    *,
    backend: BackendLike = None,
    window_s: float = 0.002,
    max_batch_rows: int = 8192,
    max_batch_requests: Optional[int] = None,
) -> V1Api:
    """Wire registry + engine + job manager into one :class:`V1Api`."""
    registry = ModelRegistry(root)
    engine = InferenceEngine(
        registry,
        backend=backend,
        window_s=window_s,
        max_batch_rows=max_batch_rows,
        max_batch_requests=max_batch_requests,
    )
    jobs = TrainingJobManager(registry)
    return V1Api(registry, engine, jobs)


def fastapi_available() -> bool:
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def create_app(root=None, *, api: Optional[V1Api] = None, **engine_kwargs):
    """Build the FastAPI app over an existing or freshly-wired :class:`V1Api`.

    Every route in :data:`~repro.serving.api.v1.ROUTES` is registered to
    delegate to the shared dispatcher, so the FastAPI surface is identical to
    the stdlib fallback's.
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse
    except ImportError as exc:
        raise ServingDependencyError(
            "FastAPI is not installed; pip install 'repro-newton-admm[serve]' "
            "or use repro.serving.http_fallback (python -m repro serve does "
            "this automatically)"
        ) from exc
    if api is None:
        if root is None:
            raise ValueError("create_app needs a registry root or a prebuilt api")
        api = build_api(root, **engine_kwargs)

    app = FastAPI(
        title="repro-newton-admm serving",
        description="Micro-batched inference + training jobs over the model registry",
        version="1.0",
    )
    app.state.api = api

    def _make_endpoint(handler_name: str):
        async def endpoint(request: Request):
            body = await request.body()
            if body:
                try:
                    payload = json.loads(body)
                except ValueError:
                    return JSONResponse(
                        status_code=400,
                        content={"error": {"type": "bad_json", "detail": "body is not JSON"}},
                    )
            else:
                payload = {}
            status, content = api.call(
                handler_name,
                dict(request.path_params),
                dict(request.query_params),
                payload,
            )
            return JSONResponse(status_code=status, content=content)

        endpoint.__name__ = handler_name
        return endpoint

    for method, template, handler_name in ROUTES:
        app.add_api_route(
            template, _make_endpoint(handler_name), methods=[method], name=handler_name
        )
    return app


def run_server(
    root,
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    backend: BackendLike = None,
    window_s: float = 0.002,
    max_batch_rows: int = 8192,
    max_batch_requests: Optional[int] = None,
    print_fn=print,
) -> int:
    """Start the serving app, preferring uvicorn+FastAPI, else the fallback.

    Blocks until interrupted; returns a process exit code.
    """
    api = build_api(
        root,
        backend=backend,
        window_s=window_s,
        max_batch_rows=max_batch_rows,
        max_batch_requests=max_batch_requests,
    )
    if fastapi_available():
        try:
            import uvicorn
        except ImportError:
            uvicorn = None
        if uvicorn is not None:
            app = create_app(api=api)
            print_fn(
                f"serving (FastAPI/uvicorn) on http://{host}:{port} — registry "
                f"root {api.registry.root}"
            )
            uvicorn.run(app, host=host, port=port, log_level="warning")
            return 0
    from repro.serving.http_fallback import FallbackServer

    server = FallbackServer(api, host=host, port=port)
    print_fn(
        f"serving (stdlib fallback; install '[serve]' extra for FastAPI) on "
        f"http://{host}:{server.port} — registry root {api.registry.root}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0
