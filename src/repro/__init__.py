"""repro — reproduction of "Newton-ADMM: A Distributed GPU-Accelerated
Optimizer for Multiclass Classification Problems" (Fang et al., SC 2020).

Quick start::

    from repro import NewtonADMM, SimulatedCluster, load_dataset

    train, test = load_dataset("mnist_like")
    cluster = SimulatedCluster(train, n_workers=4)
    solver = NewtonADMM(lam=1e-5, max_epochs=50)
    trace = solver.fit(cluster, test=test)
    print(trace.final.objective, trace.final.test_accuracy)

The package is organized as:

* :mod:`repro.core` / :mod:`repro.admm` — the Newton-ADMM solver (the paper's
  contribution);
* :mod:`repro.solvers` — single-node solvers, including the inexact Newton-CG
  sub-solver;
* :mod:`repro.objectives`, :mod:`repro.linalg`, :mod:`repro.datasets` — the
  numerical substrates;
* :mod:`repro.distributed` — the simulated cluster (network/device cost
  models, collectives, workers);
* :mod:`repro.baselines` — GIANT, InexactDANE, AIDE, DiSCO, CoCoA and
  synchronous SGD;
* :mod:`repro.harness` — experiment drivers that regenerate every table and
  figure of the paper.
"""

from repro.admm.async_newton_admm import AsyncNewtonADMM
from repro.admm.newton_admm import NewtonADMM
from repro.admm.penalty import FixedPenalty, ResidualBalancing, SpectralPenalty
from repro.backend import (
    ArrayBackend,
    available_backends,
    get_backend,
    set_default_backend,
)
from repro.baselines import (
    AIDE,
    AsynchronousSGD,
    CoCoA,
    DiSCO,
    GIANT,
    InexactDANE,
    SynchronousSGD,
)
from repro.datasets.base import ClassificationDataset, train_test_split
from repro.datasets.registry import load_dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.engine import EventEngine
from repro.distributed.collectives import TunedNetworkModel, tuned_network
from repro.distributed.device import DeviceModel, tesla_p100
from repro.distributed.faults import (
    CheckpointModel,
    FailureModel,
    PartitionError,
    PartitionModel,
    WorkerLostError,
)
from repro.distributed.network import NetworkModel, ethernet_10g, infiniband_100g
from repro.distributed.stragglers import StragglerModel
from repro.metrics.traces import RunTrace, speedup_ratio
from repro.objectives.base import RegularizedObjective
from repro.objectives.logistic import BinaryLogistic
from repro.objectives.regularizers import L2Regularizer
from repro.objectives.softmax import SoftmaxCrossEntropy
from repro.solvers.newton_cg import NewtonCG

__version__ = "1.0.0"

__all__ = [
    "NewtonADMM",
    "AsyncNewtonADMM",
    "ArrayBackend",
    "available_backends",
    "get_backend",
    "set_default_backend",
    "SpectralPenalty",
    "ResidualBalancing",
    "FixedPenalty",
    "GIANT",
    "InexactDANE",
    "AIDE",
    "DiSCO",
    "CoCoA",
    "SynchronousSGD",
    "AsynchronousSGD",
    "NewtonCG",
    "TunedNetworkModel",
    "tuned_network",
    "StragglerModel",
    "FailureModel",
    "PartitionModel",
    "PartitionError",
    "CheckpointModel",
    "WorkerLostError",
    "EventEngine",
    "SimulatedCluster",
    "ClassificationDataset",
    "train_test_split",
    "load_dataset",
    "DeviceModel",
    "NetworkModel",
    "tesla_p100",
    "infiniband_100g",
    "ethernet_10g",
    "RunTrace",
    "speedup_ratio",
    "SoftmaxCrossEntropy",
    "BinaryLogistic",
    "L2Regularizer",
    "RegularizedObjective",
    "__version__",
]
