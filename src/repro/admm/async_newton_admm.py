"""Asynchronous (bounded-staleness, quorum-based) Newton-ADMM.

Synchronous Newton-ADMM already has the minimum of one synchronization point
per iteration, but that point is still a *full barrier*: a single persistent
straggler stretches every iteration to its pace.  This variant removes the
barrier.  Each worker runs its local inexact-Newton x-update on its own
timeline (on the cluster's :class:`~repro.distributed.engine.EventEngine`)
and pushes ``rho_i x_i - y_i`` to the master as soon as it finishes; the
master fires the closed-form consensus z-update (eq. 7) as soon as

* a **quorum** of workers has arrived since the last z-update, and
* no worker's latest contribution is more than ``max_staleness`` z-versions
  old (the bounded-staleness condition — the master stalls for stragglers
  only often enough to keep every contribution fresh within the bound).

Workers that miss a z-update keep computing against their stale consensus
variable and are folded in when they arrive (their previous payload stays in
the master's running sum until then, as in stale-synchronous consensus
methods à la Tutunov et al.'s distributed Newton setting).  Staleness is
therefore *measured from the schedule* and recorded per z-update in
:attr:`staleness_log`.

Communication stays one round per z-update (a reduce of the arrived payloads
joint with the z broadcast), so the paper's "single round per iteration"
invariant carries over to the asynchronous execution path.

Under an injected :class:`~repro.distributed.faults.FailureModel` the quorum
schedule *rides through* worker loss: a crashed worker's in-flight push is
dropped, its held contribution leaves the master's running sums (the
consensus update reweights over the survivors), quorum and the staleness gate
shrink to the live membership, and a restarted worker rejoins with a fresh
x-update from its last checkpointed state.  Strict-sync Newton-ADMM, by
contrast, raises :class:`~repro.distributed.faults.WorkerLostError` or stalls
— the difference the ``ablation-faults`` experiment measures.

Network partitions (:class:`~repro.distributed.faults.PartitionModel`) are
weaker than crashes and the schedule rides through them too: a cut worker
keeps *computing* against its stale consensus variable — its timeline fills
with ``unreachable`` segments instead of freezing — and its push is simply
delayed to the heal, at which point the late arrival is folded into exactly
one z-update (the master replaces the held payload, so nothing is counted
twice) and the bounded-staleness gate resumes covering it.  The
``ablation-partitions`` experiment measures this against a synchronous run
that must stall for the whole window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.admm.newton_admm import NewtonADMM
from repro.admm.penalty import PenaltyObservation, PolicyFactory, make_penalty_policy
from repro.backend import copy_array
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.comm import _nbytes
from repro.distributed.faults import (
    crash_guard,
    crashed_at_start,
    partition_transfer_guard,
    pop_next_arrival,
)
from repro.distributed.solver_base import DistributedSolver
from repro.distributed.worker import Worker
from repro.objectives.base import ProximallyAugmentedObjective


class AsyncNewtonADMM(NewtonADMM):
    """Event-driven Newton-ADMM with quorum z-updates and bounded staleness.

    One "epoch" of this solver is one z-update (one consensus iteration), so
    ``max_epochs`` counts z-updates; under stragglers a z-update completes in
    roughly the quorum's time rather than the slowest worker's.

    Parameters (beyond :class:`~repro.admm.newton_admm.NewtonADMM`)
    ----------
    quorum:
        How many arrivals trigger a z-update: an ``int`` count, a float in
        ``(0, 1]`` interpreted as a fraction of the workers (rounded up), or
        ``None`` for ``max(n_workers - 1, 1)`` — tolerate one straggler.
    max_staleness:
        Upper bound on how many z-versions old any worker's contribution may
        be when a z-update fires; the master waits for stragglers that would
        violate it.  Must be >= 1.
    """

    name = "async_newton_admm"

    #: event-queue schedule has no SPMD replica form; on
    #: ``engine="process"`` this solver runs on the in-process
    #: simulated event engine instead of real worker processes.
    supports_process_engine = False

    def __init__(
        self,
        *,
        lam: float = 1e-5,
        max_epochs: int = 100,
        rho0: Optional[float] = None,
        penalty: Union[str, PolicyFactory] = "spectral",
        local_newton_iters: int = 1,
        cg_max_iter: int = 10,
        cg_tol: float = 1e-4,
        cg_tol_decay: float = 1.0,
        line_search_max_iter: int = 10,
        over_relaxation: float = 1.0,
        quorum: Union[int, float, None] = None,
        max_staleness: int = 10,
        evaluate_every: int = 1,
        record_accuracy: bool = True,
        tol_grad: float = 0.0,
    ):
        super().__init__(
            lam=lam,
            max_epochs=max_epochs,
            rho0=rho0,
            penalty=penalty,
            local_newton_iters=local_newton_iters,
            cg_max_iter=cg_max_iter,
            cg_tol=cg_tol,
            cg_tol_decay=cg_tol_decay,
            line_search_max_iter=line_search_max_iter,
            over_relaxation=over_relaxation,
            evaluate_every=evaluate_every,
            record_accuracy=record_accuracy,
            tol_grad=tol_grad,
        )
        if max_staleness < 1:
            raise ValueError(f"max_staleness must be >= 1, got {max_staleness}")
        # Floats are always fractions of the cluster (1.0 = every worker),
        # ints are always absolute counts (1 = first arrival fires).
        if isinstance(quorum, float):
            if not 0.0 < quorum <= 1.0:
                raise ValueError(
                    f"fractional quorum must lie in (0, 1], got {quorum}"
                )
        elif quorum is not None and int(quorum) < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        self.quorum = quorum
        self.max_staleness = int(max_staleness)
        self._staleness_log: List[Dict[str, float]] = []
        self._pending: List[int] = []
        self._contrib: Dict[int, object] = {}
        self._rho: Dict[int, float] = {}
        self._contrib_version: Dict[int, int] = {}
        self._z_version = 0
        self._p2p_seconds = 0.0
        self._payload_bytes = 0.0
        #: crashed workers -> scheduled restart time (inf = never)
        self._dead: Dict[int, float] = {}
        #: arrivals delivered to the master, per worker (run state)
        self._arrivals: Dict[int, int] = {}
        #: arrivals never folded: their worker was lost (never-healing cut,
        #: or a crash during the delayed pull) between arriving and the fire
        self._dropped_arrivals = 0

    def _resolve_quorum(self, n_workers: int) -> int:
        if self.quorum is None:
            q = max(n_workers - 1, 1)
        elif isinstance(self.quorum, float):
            q = int(np.ceil(self.quorum * n_workers))
        else:
            q = int(self.quorum)
        if not 1 <= q <= n_workers:
            raise ValueError(
                f"quorum {q} out of range for {n_workers} workers"
            )
        return q

    # -- scheduling ----------------------------------------------------------
    def _start_x_update(self, cluster: SimulatedCluster, worker: Worker) -> None:
        """Run the worker's local inexact-Newton solve against its *local*
        view of the consensus variable and post the push event.

        The numbers are computed eagerly (the simulation is in-process) but
        the completion is scheduled on the worker's own timeline: modelled
        compute seconds (straggler-scaled, keyed by worker id) plus the push
        transfer, which travels while other workers keep computing.

        Under fault injection, a crash inside the cycle freezes the worker's
        timeline at the crash and drops the push: the in-flight contribution
        never reaches the master (the local state acts as a checkpoint a
        restarted worker resumes from).
        """
        engine = cluster.engine
        fs = cluster.fault_state
        start = engine.time_of(worker.worker_id)
        if fs is not None:
            fs.begin_cycle(worker.worker_id, start)
            restart = crashed_at_start(fs, worker.worker_id, start)
            if restart is not None:
                self._dead[worker.worker_id] = restart
                return
        alpha = self.over_relaxation
        z_local = worker.get_vector("z_local")
        x = worker.get_vector("x")
        y = worker.get_vector("y")
        rho = float(worker.state["rho"])
        epoch = self._z_version + 1

        worker.mark_flops()
        center = z_local + y / rho
        subproblem = ProximallyAugmentedObjective(worker.objective, rho, center)
        result = self._make_local_solver(epoch).minimize(subproblem, x)
        x_new = result.w
        x_relaxed = (
            x_new if alpha == 1.0 else alpha * x_new + (1.0 - alpha) * z_local
        )
        y_hat = y + rho * (z_local - x_relaxed)
        worker.set_vector("x", x_new)
        worker.set_vector("x_relaxed", x_relaxed)
        worker.set_vector("y_hat", y_hat)
        seconds = worker.modelled_compute_time() * cluster.straggler_factor(
            worker.worker_id
        )
        if fs is not None:
            # Crashed mid-cycle: partial work on the timeline, no push — the
            # in-flight contribution is dropped.
            restart = crash_guard(
                fs, engine, worker.worker_id, start, seconds,
                self._p2p_seconds, busy_label="x-update", comm_label="push",
            )
            if restart is not None:
                self._dead[worker.worker_id] = restart
                return
        engine.compute(worker.worker_id, seconds, label="x-update")
        if fs is not None and fs.has_partitions:
            # Behind a cut the worker keeps its computed state but the push
            # cannot cross the link: its timeline fills with "unreachable"
            # until the heal and the arrival below is delayed accordingly.
            # A worker lost during the delayed transfer (never-healing cut,
            # or a crash before the push lands) drops the payload entirely.
            restart = partition_transfer_guard(
                fs, engine, worker.worker_id, self._p2p_seconds,
                comm_label="push",
            )
            if restart is not None:
                self._dead[worker.worker_id] = restart
                return
        else:
            engine.communicate(
                worker.worker_id, self._p2p_seconds, label="push"
            )
        engine.post(
            worker.worker_id,
            0.0,
            payload={
                "payload": rho * x_relaxed - y,
                "rho": rho,
                "version": int(worker.state["z_version"]),
                "newton_iters": result.n_iterations,
                "cg_iters": result.info.get("total_cg_iterations", 0),
            },
        )

    # -- hooks ---------------------------------------------------------------
    def _initialize(self, cluster: SimulatedCluster, w0) -> None:
        backend = cluster.backend
        w0 = backend.as_vector(w0, cluster.dim, name="w0")
        self._z = copy_array(w0)
        self._last_extras = {}
        self._staleness_log = []
        rho0 = self.rho0 if self.rho0 is not None else 1.0 / cluster.n_total
        if self._custom_policy_factory is not None:
            policy_factory: PolicyFactory = self._custom_policy_factory
            rho0 = policy_factory().initial_rho()
        else:
            policy_factory = make_penalty_policy(self.penalty, rho0=rho0)

        self._resolve_quorum(cluster.n_workers)  # validate early
        self._pending = []
        self._contrib = {}
        self._rho = {}
        self._contrib_version = {}
        self._z_version = 0
        self._dead = {}
        self._arrivals = {}
        self._dropped_arrivals = 0
        self._payload_bytes = float(_nbytes(w0))
        self._p2p_seconds = cluster.network.point_to_point(self._payload_bytes)

        for worker in cluster.workers:
            worker.set_vector("x", w0)
            worker.set_vector(
                "y", backend.zeros(cluster.dim, dtype=getattr(w0, "dtype", None))
            )
            worker.set_vector("z_local", w0)
            worker.state["rho"] = rho0
            worker.state["policy"] = policy_factory()
            worker.state["z_version"] = 0
            # Until a worker first reports, the master holds its initial
            # contribution rho0 * x_i - y_i = rho0 * w0.
            self._contrib[worker.worker_id] = rho0 * copy_array(w0)
            self._rho[worker.worker_id] = rho0
            self._contrib_version[worker.worker_id] = 0
        for worker in cluster.workers:
            self._start_x_update(cluster, worker)

    def _revive(self, cluster: SimulatedCluster, worker_id: int, restart: float) -> None:
        """Fold a restarted worker back in: downtime onto its timeline, then a
        fresh x-update from its last checkpointed state."""
        fs = cluster.fault_state
        fs.note_restart(worker_id, restart)
        fs.catch_up_timeline(cluster.engine, worker_id, restart)
        self._dead.pop(worker_id, None)
        self._start_x_update(cluster, cluster.workers[worker_id])

    def _next_event(self, cluster: SimulatedCluster):
        """Earliest arrival, reviving restartable crashed workers first."""
        if not self._dead:
            return cluster.engine.pop()
        return pop_next_arrival(
            cluster.engine,
            self._dead,
            lambda wid, r: self._revive(cluster, wid, r),
        )

    def _can_fire(self, quorum: int) -> bool:
        if len(self._pending) < quorum:
            return False
        # Bounded staleness gates on *in-flight* workers only: a pending
        # (arrived) worker's contribution is the freshest it can offer and the
        # fire is what refreshes it, whereas waiting for an in-flight worker
        # genuinely brings newer data.  Every non-pending worker has exactly
        # one in-flight event, so a blocked fire always makes progress.
        # Crashed workers cannot bring fresh data and are excluded.
        pending = set(self._pending)
        lagging = [
            version
            for worker_id, version in self._contrib_version.items()
            if worker_id not in pending and worker_id not in self._dead
        ]
        if not lagging:
            return True
        # Strict bound: an in-flight worker that started from version v can
        # rejoin one fire later at the earliest, so allowing fires only while
        # v > z_version - max_staleness guarantees no contribution older than
        # max_staleness versions is ever folded into a z-update.
        return min(lagging) > self._z_version - self.max_staleness

    def _epoch(self, cluster: SimulatedCluster, epoch: int):
        """Pop arrivals until one z-update fires; return the new consensus."""
        if self._z is None:
            raise RuntimeError("AsyncNewtonADMM._epoch called before _initialize")
        engine = cluster.engine
        backend = cluster.backend
        quorum = self._resolve_quorum(cluster.n_workers)
        newton_iters: List[float] = []
        cg_iters: List[float] = []

        while True:
            event = self._next_event(cluster)
            data = event.payload
            worker_id = event.worker_id
            self._arrivals[worker_id] = self._arrivals.get(worker_id, 0) + 1
            self._contrib[worker_id] = data["payload"]
            self._rho[worker_id] = data["rho"]
            self._contrib_version[worker_id] = data["version"]
            if worker_id not in self._pending:
                self._pending.append(worker_id)
            newton_iters.append(float(data["newton_iters"]))
            cg_iters.append(float(data["cg_iters"]))
            # Quorum shrinks to the live membership: the schedule rides
            # through worker loss instead of waiting for the dead.
            n_alive = cluster.n_workers - len(self._dead)
            if self._can_fire(max(1, min(quorum, n_alive))):
                break

        # ---- consensus z-update at the quorum time --------------------------
        # Crashed workers' held contributions leave the running sums: the
        # consensus update reweights over the surviving membership (eq. 7
        # with the live rho_i only).
        fired_at = event.time
        self._z_version += 1
        live = [wid for wid in sorted(self._contrib) if wid not in self._dead]
        rho_sum = float(sum(self._rho[wid] for wid in live))
        payload_sum = None
        for worker_id in live:
            contribution = self._contrib[worker_id]
            payload_sum = (
                copy_array(contribution)
                if payload_sum is None
                else payload_sum + contribution
            )
        z_new = payload_sum / (self.lam + rho_sum)
        ages = [
            float(self._z_version - 1 - self._contrib_version[wid])
            for wid in live
        ]

        # One communication round per z-update: the arrived payloads reduce to
        # the master jointly with the z broadcast back to the quorum.
        comm_seconds = 2.0 * self._p2p_seconds
        cluster.comm.log.record(
            "async_reduce",
            self._payload_bytes * len(self._pending),
            self._p2p_seconds,
            new_round=True,
        )
        cluster.comm.log.record(
            "async_bcast",
            self._payload_bytes * len(self._pending),
            self._p2p_seconds,
            new_round=False,
        )

        # ---- fold the quorum back in: dual updates + next cycles -----------
        primal_sq = 0.0
        dual_sq = 0.0
        fs = cluster.fault_state
        folded: List[int] = []
        for worker_id in self._pending:
            worker = cluster.workers[worker_id]
            engine.wait_until(worker.worker_id, fired_at, label="quorum")
            if fs is not None and fs.has_partitions:
                # A worker cut between its arrival and the fire cannot pull
                # the fresh z until the partition heals — and may be lost
                # while it waits (never-healing cut, or a crash before the
                # pull lands), in which case its dual update never happens.
                restart = partition_transfer_guard(
                    fs, engine, worker.worker_id, self._p2p_seconds,
                    comm_label="pull-z",
                )
                if restart is not None:
                    self._dead[worker.worker_id] = restart
                    self._dropped_arrivals += 1
                    continue
            else:
                engine.communicate(
                    worker.worker_id, self._p2p_seconds, label="pull-z"
                )
            folded.append(worker_id)
            z_old_local = worker.get_vector("z_local")
            x_relaxed = worker.get_vector("x_relaxed")
            y = worker.get_vector("y")
            y_hat = worker.get_vector("y_hat")
            rho = float(worker.state["rho"])
            y_new = y + rho * (z_new - x_relaxed)
            primal_res = backend.norm(x_relaxed - z_new)
            dual_res = rho * backend.norm(z_new - z_old_local)
            obs = PenaltyObservation(
                iteration=self._z_version,
                x_new=x_relaxed,
                z_new=z_new,
                z_old=z_old_local,
                y_new=y_new,
                y_old=y,
                y_hat=y_hat,
                rho=rho,
                primal_residual=primal_res,
                dual_residual=dual_res,
            )
            new_rho = float(worker.state["policy"].update(obs))
            worker.set_vector("y", y_new)
            worker.set_vector("z_local", z_new)
            worker.state["rho"] = new_rho
            worker.state["z_version"] = self._z_version
            worker.objective.add_flops(10.0 * worker.dim)
            primal_sq += primal_res**2
            dual_sq += dual_res**2
            self._start_x_update(cluster, worker)
        n_folded = len(folded)
        self._pending = []

        # Restarts that fell due before this z-update rejoin now even if the
        # quorum never needed their events, so the recorded fault events and
        # the live membership reflect the schedule honestly.
        for wid, r in sorted(self._dead.items()):
            if r <= fired_at:
                self._revive(cluster, wid, r)

        engine.advance_global_to(
            fired_at + self._p2p_seconds, comm_seconds=comm_seconds
        )

        self._staleness_log.append(
            {
                "z_version": float(self._z_version),
                "time": float(fired_at),
                "mean_staleness": float(np.mean(ages)),
                "max_staleness": float(np.max(ages)),
                "quorum_size": float(n_folded),
                # The arrivals folded into this fire, in fold order.  Each
                # arrival passes the staleness gate exactly once: a rejoined
                # (healed / restarted) worker's held payload is *replaced* on
                # arrival, never summed twice.
                "folded_workers": [int(w) for w in folded],
            }
        )
        self._z = z_new
        self._last_extras = {
            "primal_residual": float(np.sqrt(primal_sq)),
            "dual_residual": float(np.sqrt(dual_sq)),
            "mean_rho": float(np.mean([self._rho[wid] for wid in live])),
            "quorum_size": float(n_folded),
            "mean_staleness": float(np.mean(ages)),
            "max_staleness": float(np.max(ages)),
            "local_newton_iters": float(np.mean(newton_iters)),
            "local_cg_iters": float(np.mean(cg_iters)),
            "alive_workers": float(cluster.n_workers - len(self._dead)),
        }
        return z_new

    @property
    def staleness_log(self) -> List[Dict[str, float]]:
        """Measured contribution staleness (z-versions) per fired z-update.

        Run state, not a hyper-parameter: exposed read-only so
        :meth:`hyperparameters` (which walks instance attributes) never
        embeds a previous run's log in provenance.
        """
        return self._staleness_log

    @property
    def arrival_counts(self) -> Dict[int, int]:
        """Arrivals the master received, per worker (run state, read-only).

        Every arrival is folded into exactly one z-update — except an
        arrival whose worker was *lost* between arriving and the fire (a
        never-healing cut, or a crash before its delayed pull landed), which
        is dropped instead (counted in :attr:`dropped_arrivals`).  So
        ``sum(len(s["folded_workers"]) for s in staleness_log)`` equals
        ``sum(arrival_counts.values()) - dropped_arrivals`` — the invariant
        the partition ablation asserts to show a healed worker's stale
        contribution is never double-counted.
        """
        return dict(self._arrivals)

    @property
    def dropped_arrivals(self) -> int:
        """Arrivals never folded: their worker was lost between arriving and
        the fire — behind a never-healing partition, or crashed before its
        delayed pull could land (run state)."""
        return self._dropped_arrivals

    def hyperparameters(self) -> dict:
        out = DistributedSolver.hyperparameters(self)
        out["quorum"] = self.quorum if self.quorum is not None else "n-1"
        return out
