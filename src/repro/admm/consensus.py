"""Consensus variable update and ADMM residuals.

For the L2 regularizer ``g(z) = (lam/2) ||z||^2`` the z-update of eq. (6b) has
the closed form of eq. (7):

    z^{k+1} (lam + sum_i rho_i) = sum_i (rho_i x_i^{k+1} - y_i^k)

which the master evaluates after gathering the per-worker vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def consensus_z_update(
    x_list: Sequence[np.ndarray],
    y_list: Sequence[np.ndarray],
    rho_list: Sequence[float],
    lam: float,
) -> np.ndarray:
    """Closed-form consensus update for L2 regularization (paper eq. 7).

    Parameters
    ----------
    x_list, y_list:
        Per-worker primal iterates ``x_i^{k+1}`` and duals ``y_i^k``.
    rho_list:
        Per-worker penalties ``rho_i^k``.
    lam:
        L2 regularization strength.
    """
    n = len(x_list)
    if not (len(y_list) == len(rho_list) == n) or n == 0:
        raise ValueError(
            f"x_list, y_list, rho_list must be non-empty and equal length, got "
            f"{len(x_list)}, {len(y_list)}, {len(rho_list)}"
        )
    if lam < 0:
        raise ValueError(f"lam must be non-negative, got {lam}")
    rho_sum = float(np.sum(rho_list))
    if lam + rho_sum <= 0:
        raise ValueError("lam + sum(rho) must be positive for the z-update")
    numerator = np.zeros_like(np.asarray(x_list[0], dtype=np.float64))
    for x_i, y_i, rho_i in zip(x_list, y_list, rho_list):
        numerator += rho_i * np.asarray(x_i, dtype=np.float64) - np.asarray(
            y_i, dtype=np.float64
        )
    return numerator / (lam + rho_sum)


@dataclass
class ADMMResiduals:
    """Primal/dual residual norms and their stopping thresholds (Boyd §3.3)."""

    primal_norm: float
    dual_norm: float
    primal_tol: float
    dual_tol: float

    @property
    def converged(self) -> bool:
        return self.primal_norm <= self.primal_tol and self.dual_norm <= self.dual_tol


def admm_residuals(
    x_list: Sequence[np.ndarray],
    z_new: np.ndarray,
    z_old: np.ndarray,
    y_list: Sequence[np.ndarray],
    rho_list: Sequence[float],
    *,
    abs_tol: float = 1e-6,
    rel_tol: float = 1e-4,
) -> ADMMResiduals:
    """Compute consensus-ADMM primal and dual residuals with Boyd's tolerances.

    The primal residual stacks ``x_i - z`` over workers; the dual residual is
    ``rho_i (z^{k+1} - z^k)`` stacked over workers.
    """
    z_new = np.asarray(z_new, dtype=np.float64)
    z_old = np.asarray(z_old, dtype=np.float64)
    n = len(x_list)
    if n == 0:
        raise ValueError("x_list must be non-empty")
    primal_sq = 0.0
    x_norm_sq = 0.0
    y_norm_sq = 0.0
    dz = z_new - z_old
    dual_sq = 0.0
    for x_i, y_i, rho_i in zip(x_list, y_list, rho_list):
        x_i = np.asarray(x_i, dtype=np.float64)
        y_i = np.asarray(y_i, dtype=np.float64)
        diff = x_i - z_new
        primal_sq += float(diff @ diff)
        x_norm_sq += float(x_i @ x_i)
        y_norm_sq += float(y_i @ y_i)
        dual_sq += float(rho_i**2) * float(dz @ dz)
    primal_norm = float(np.sqrt(primal_sq))
    dual_norm = float(np.sqrt(dual_sq))
    dim = z_new.shape[0]
    z_norm_sq = n * float(z_new @ z_new)
    primal_tol = np.sqrt(n * dim) * abs_tol + rel_tol * max(
        np.sqrt(x_norm_sq), np.sqrt(z_norm_sq)
    )
    dual_tol = np.sqrt(n * dim) * abs_tol + rel_tol * np.sqrt(y_norm_sq)
    return ADMMResiduals(
        primal_norm=primal_norm,
        dual_norm=dual_norm,
        primal_tol=float(primal_tol),
        dual_tol=float(dual_tol),
    )
