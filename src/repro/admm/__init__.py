"""Newton-ADMM — the paper's primary contribution.

:class:`NewtonADMM` implements Algorithm 2: a global consensus ADMM whose
local subproblems are solved with the inexact Newton-CG method of Algorithm 1,
with adaptive per-worker penalties (Spectral Penalty Selection by default) and
exactly one communication round per outer iteration.
"""

from repro.admm.penalty import (
    FixedPenalty,
    ResidualBalancing,
    SpectralPenalty,
    make_penalty_policy,
    PenaltyObservation,
)
from repro.admm.consensus import consensus_z_update, admm_residuals, ADMMResiduals
from repro.admm.newton_admm import NewtonADMM
from repro.admm.async_newton_admm import AsyncNewtonADMM

__all__ = [
    "FixedPenalty",
    "ResidualBalancing",
    "SpectralPenalty",
    "make_penalty_policy",
    "PenaltyObservation",
    "consensus_z_update",
    "admm_residuals",
    "ADMMResiduals",
    "NewtonADMM",
    "AsyncNewtonADMM",
]
